"""Simulator speed benchmark — the `BENCH_simspeed.json` perf trajectory.

Measures how fast `Simulator.run` replays the 100-job `bench_overheads`
trace (performance models pre-fitted, so the number isolates the simulation
loop from one-time scipy fitting):

* **headline** — rubick on the fast path vs the byte-identical reference
  mode (`fast_path=False`, the pre-PR loop semantics; note the reference
  shares the policy/cluster-layer optimizations, so the in-process ratio
  *understates* the PR's full speedup — the `pre_pr_anchor` block records
  the interleaved A/B against the actual pre-PR tree);
* **per_policy** — fast-path wall seconds and scheduler split for all seven
  registered policies, so future PRs are held to the whole table;
* **datacenter** — a 1024-node / 50k-job / flaky-dynamics leg through the
  ``scale_mode`` loop (antman rounds, Poisson arrivals), the fleet-scale
  throughput number this PR series optimizes for.

Runs two ways:

* ``pytest benchmarks/bench_sim_speed.py`` — pytest-benchmark wrapper
  (the datacenter leg is skipped unless ``BENCH_DATACENTER_JOBS`` is set,
  keeping tier-1 collection fast);
* ``PYTHONPATH=src python benchmarks/bench_sim_speed.py`` — script mode,
  used by the CI ``sim-speed`` smoke job: prints the table, writes
  ``BENCH_simspeed.json`` (env ``BENCH_SIMSPEED_OUT`` overrides the path),
  and exits non-zero if the headline run exceeds ``WALL_CEILING_SECONDS``
  or the datacenter leg exceeds its own ceiling (generous regression
  tripwires, not tight bounds).

Env knobs (all optional): ``BENCH_SIMSPEED_REPS`` (headline/dynamics rep
count), ``BENCH_DATACENTER_NODES`` / ``BENCH_DATACENTER_JOBS`` /
``BENCH_DATACENTER_REPS`` / ``BENCH_DATACENTER_CEILING`` (datacenter leg
shape; ``BENCH_DATACENTER_JOBS=0`` skips the leg — the CI ``sim-speed``
job does, and the ``datacenter-smoke`` job runs a 256-node / 5k-job
variant instead).
"""

from __future__ import annotations

import dataclasses
import json
import os
import resource
import sys
import time
from pathlib import Path

try:  # pytest collects with benchmarks/ on sys.path; script mode may not
    from conftest import BENCH_SEED
except ImportError:
    BENCH_SEED = 7

from repro.analysis import format_table
from repro.cluster import PAPER_CLUSTER, resolve_dynamics
from repro.models import all_models
from repro.oracle import SyntheticTestbed, build_perf_model
from repro.scheduler import PerfModelStore
from repro.scheduler.registry import POLICIES, make_policy
from repro.sim import Simulator, WorkloadConfig, generate_trace
from repro.units import HOUR, MINUTE
from repro.workloads.arrivals import PoissonArrivals

NUM_JOBS = 100
REPS = 3
#: Dynamics profile of the flaky A/B leg (the new hot path: evictions,
#: steady-state invalidation, post-failure rounds).
DYNAMICS_PROFILE = "flaky"
#: CI tripwire: the dev container finishes the headline run in ~0.25 s;
#: anything near this ceiling means the fast path regressed by an order of
#: magnitude (or the runner is pathologically overloaded).
WALL_CEILING_SECONDS = 30.0

# ----------------------------------------------------------------------
# Datacenter leg (scale_mode): 1024 nodes, 50k jobs, flaky dynamics.
# ----------------------------------------------------------------------
#: antman: gang-scheduled FIFO with fixed plans — the natural fleet-scale
#: baseline (no per-job plan search inflating the scheduler term).
DATACENTER_POLICY = "antman"
DATACENTER_NODES = 1024
DATACENTER_JOBS = 50_000
#: Each rep is ~7.5 s at full scale; 4 reps keeps the min() robust to
#: transient machine load without dominating script-mode runtime.
DATACENTER_REPS = 4
#: Gavel/Shockwave-style scheduling rounds: at fleet scale the policy runs
#: on a 10-minute cadence, batching all arrivals/completions in between.
DATACENTER_ROUND_INTERVAL = 600.0
#: Retention bound — aggregates stay exact over all 50k completions, but
#: only this many full JobRecord objects are kept.
DATACENTER_RECORD_LIMIT = 1000
#: Generous tripwire (the dev container finishes the leg in ~7.5 s).
DATACENTER_CEILING_SECONDS = 120.0


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def _peak_rss_mb() -> float:
    """Process peak-RSS high-water in MiB (``ru_maxrss`` is KiB on Linux).

    Monotone over the process lifetime, so per-leg readings record the
    high-water *after* that leg — the datacenter leg is what moves it.
    """
    return round(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0, 1
    )

#: Interleaved A/B against the true pre-PR tree (commit 3f795cd), measured
#: while this PR was developed.  Machine-bound numbers — kept as the
#: trajectory's origin, not recomputed by the emitter.
PRE_PR_ANCHOR = {
    "commit": "3f795cd",
    "min_wall_seconds": 0.793,
    "speedup_vs_pre_pr": 3.7,
    "note": (
        "100-job rubick trace, pre-fitted models, min of 5 reps, "
        "interleaved with the post-PR tree on the same machine"
    ),
}


def _fitted_store(testbed: SyntheticTestbed) -> PerfModelStore:
    store = PerfModelStore()
    for model in all_models():
        perf, _ = build_perf_model(
            testbed, model, model.global_batch_size, seed=BENCH_SEED
        )
        store.add(perf)
    return store


def _one_run(trace, store, policy_name: str, *, fast: bool, events=None):
    sim = Simulator(
        PAPER_CLUSTER,
        make_policy(policy_name),
        testbed=SyntheticTestbed(PAPER_CLUSTER, seed=BENCH_SEED),
        perf_store=store,
        seed=BENCH_SEED,
        fast_path=fast,
    )
    start = time.perf_counter()
    result = sim.run(trace, cluster_events=events)
    return time.perf_counter() - start, result


def _measure(trace, store, policy_name: str, *, fast: bool, reps: int):
    """Min wall over ``reps`` runs and the result of the fastest one."""
    best_wall, best_result = None, None
    for _ in range(reps):
        wall, result = _one_run(trace, store, policy_name, fast=fast)
        if best_wall is None or wall < best_wall:
            best_wall, best_result = wall, result
    return best_wall, best_result


def _measure_pair(trace, store, policy_name: str, *, reps: int, events=None):
    """Warmed, interleaved fast/reference A/B (min wall per mode).

    One discarded warm-up per mode fills the process-level caches (plan
    enumerations, `lru_cache`d memory estimates), then the modes alternate
    so machine load skews both equally instead of whichever ran first.
    """
    for fast in (True, False):
        _one_run(trace, store, policy_name, fast=fast, events=events)
    walls = {True: None, False: None}
    results = {True: None, False: None}
    for _ in range(reps):
        for fast in (True, False):
            wall, result = _one_run(
                trace, store, policy_name, fast=fast, events=events
            )
            if walls[fast] is None or wall < walls[fast]:
                walls[fast], results[fast] = wall, result
    return walls[True], results[True], walls[False], results[False]


def _collect_datacenter(*, nodes: int, jobs: int, reps: int) -> dict:
    """The fleet-scale leg: ``scale_mode`` antman rounds under dynamics.

    Unlike the headline pair there is no reference mode to interleave —
    the default loop at this scale is the thing scale_mode exists to
    avoid — so the leg reports min-of-``reps`` wall plus the invariants
    the scale-mode test suite pins (every job completes, aggregates exact
    under bounded record retention).
    """
    cluster = dataclasses.replace(PAPER_CLUSTER, num_nodes=nodes)
    testbed = SyntheticTestbed(cluster, seed=BENCH_SEED)
    store = _fitted_store(testbed)
    trace = generate_trace(
        WorkloadConfig(
            num_jobs=jobs,
            span=12 * HOUR,
            seed=BENCH_SEED,
            cluster=cluster,
            duration_median=5 * MINUTE,
            arrival=PoissonArrivals(),
            name="datacenter",
        ),
        testbed,
    )
    events = resolve_dynamics(DYNAMICS_PROFILE).events(
        seed=BENCH_SEED, span=12 * HOUR, cluster=cluster
    )
    best_wall, best = None, None
    for _ in range(reps):
        sim = Simulator(
            cluster,
            make_policy(DATACENTER_POLICY),
            testbed=testbed,
            perf_store=store,
            seed=BENCH_SEED,
            fast_path=True,
            scale_mode=True,
            tick_interval=DATACENTER_ROUND_INTERVAL,
            result_record_limit=DATACENTER_RECORD_LIMIT,
        )
        start = time.perf_counter()
        res = sim.run(trace, cluster_events=events)
        wall = time.perf_counter() - start
        if best_wall is None or wall < best_wall:
            best_wall, best = wall, res
    completed = len(best.records) + best.dropped_records
    assert completed == jobs, (
        f"datacenter leg lost jobs: {completed}/{jobs} completed"
    )
    ceiling = float(
        os.environ.get("BENCH_DATACENTER_CEILING", DATACENTER_CEILING_SECONDS)
    )
    return {
        "policy": DATACENTER_POLICY,
        "nodes": nodes,
        "cluster_gpus": cluster.total_gpus,
        "jobs": jobs,
        "reps": reps,
        "round_interval_seconds": DATACENTER_ROUND_INTERVAL,
        "arrival": "poisson",
        "duration_median_minutes": 5,
        "dynamics_profile": DYNAMICS_PROFILE,
        "record_limit": DATACENTER_RECORD_LIMIT,
        "wall_seconds": round(best_wall, 4),
        "events_per_second": round(best.sim_rounds / best_wall, 1),
        "jobs_per_second": round(jobs / best_wall, 1),
        "sim_rounds": best.sim_rounds,
        "policy_invocations": best.policy_invocations,
        "policy_wall_seconds": round(best.policy_wall_seconds, 4),
        "cluster_events": best.cluster_events,
        "evictions": best.evictions,
        "completed": completed,
        "dropped_records": best.dropped_records,
        "makespan_hours": round(best.makespan / HOUR, 3),
        "peak_rss_mb": _peak_rss_mb(),
        "wall_ceiling_seconds": ceiling,
        "ceiling_ok": best_wall <= ceiling,
    }


def collect(*, datacenter_jobs: int | None = None) -> dict:
    """Run every measurement and assemble the BENCH_simspeed payload.

    ``datacenter_jobs`` sizes the datacenter leg (0 skips it); ``None``
    defers to ``BENCH_DATACENTER_JOBS``, defaulting to the full 50k.
    """
    reps = _env_int("BENCH_SIMSPEED_REPS", REPS)
    testbed = SyntheticTestbed(PAPER_CLUSTER, seed=BENCH_SEED)
    trace = generate_trace(
        WorkloadConfig(num_jobs=NUM_JOBS, seed=BENCH_SEED, name="overheads"),
        testbed,
    )
    store = _fitted_store(testbed)

    fast_wall, fast_res, ref_wall, ref_res = _measure_pair(
        trace, store, "rubick", reps=reps
    )
    # The two paths must agree exactly; the golden suite pins this per
    # policy, the benchmark double-checks its own headline pair.
    assert fast_res.records == ref_res.records, "fast path diverged!"
    assert fast_res.makespan == ref_res.makespan

    # Dynamics leg: the same trace under a flaky cluster (evictions,
    # steady-state invalidation, post-failure rounds).  Byte-identity of
    # fast vs reference under dynamics is the cache-audit acceptance.
    events = resolve_dynamics(DYNAMICS_PROFILE).events(
        seed=BENCH_SEED, span=12 * HOUR, cluster=PAPER_CLUSTER
    )
    dyn_fast_wall, dyn_fast_res, dyn_ref_wall, dyn_ref_res = _measure_pair(
        trace, store, "rubick", reps=reps, events=events
    )
    assert dyn_fast_res.records == dyn_ref_res.records, (
        "fast path diverged under dynamics!"
    )
    assert dyn_fast_res.evictions == dyn_ref_res.evictions
    small_scale_rss = _peak_rss_mb()

    per_policy = {}
    for name in POLICIES:
        wall, res = _measure(trace, store, name, fast=True, reps=2)
        per_policy[name] = {
            "wall_seconds": round(wall, 4),
            "jobs_per_second": round(NUM_JOBS / wall, 1),
            "policy_wall_seconds": round(res.policy_wall_seconds, 4),
            "policy_invocations": res.policy_invocations,
            "policy_skips": res.policy_skips,
            "sim_rounds": res.sim_rounds,
        }

    if datacenter_jobs is None:
        datacenter_jobs = _env_int("BENCH_DATACENTER_JOBS", DATACENTER_JOBS)
    datacenter = None
    if datacenter_jobs > 0:
        datacenter = _collect_datacenter(
            nodes=_env_int("BENCH_DATACENTER_NODES", DATACENTER_NODES),
            jobs=datacenter_jobs,
            reps=_env_int("BENCH_DATACENTER_REPS", DATACENTER_REPS),
        )

    ceiling_ok = fast_wall <= WALL_CEILING_SECONDS and (
        datacenter is None or datacenter["ceiling_ok"]
    )
    return {
        "benchmark": "sim_speed",
        "format_version": 2,
        "config": {
            "cluster_gpus": PAPER_CLUSTER.total_gpus,
            "num_jobs": NUM_JOBS,
            "seed": BENCH_SEED,
            "trace": "overheads",
            "reps": reps,
            "prefitted_models": True,
            #: ru_maxrss high-water after the small-scale legs; monotone,
            #: so the datacenter block's reading is the process peak.
            "small_scale_peak_rss_mb": small_scale_rss,
        },
        "headline": {
            "policy": "rubick",
            "wall_seconds_fast": round(fast_wall, 4),
            "wall_seconds_reference": round(ref_wall, 4),
            "speedup_vs_reference": round(ref_wall / fast_wall, 2),
            "jobs_per_second": round(NUM_JOBS / fast_wall, 1),
            "events_per_second": round(fast_res.events_per_second, 1),
            "policy_wall_seconds": round(fast_res.policy_wall_seconds, 4),
            "policy_ms_per_invocation": round(
                fast_res.policy_ms_per_invocation, 3
            ),
            "policy_invocations": fast_res.policy_invocations,
            "policy_skips": fast_res.policy_skips,
            "sim_rounds": fast_res.sim_rounds,
            "calendar_fast_rounds": fast_res.calendar_fast_rounds,
            "calendar_exact_scans": fast_res.calendar_exact_scans,
        },
        "dynamics": {
            "policy": "rubick",
            "profile": DYNAMICS_PROFILE,
            "cluster_events": dyn_fast_res.cluster_events,
            "evictions": dyn_fast_res.evictions,
            "wall_seconds_fast": round(dyn_fast_wall, 4),
            "wall_seconds_reference": round(dyn_ref_wall, 4),
            "speedup_vs_reference": round(dyn_ref_wall / dyn_fast_wall, 2),
            "policy_skips": dyn_fast_res.policy_skips,
            "sim_rounds": dyn_fast_res.sim_rounds,
            "lost_gpu_hours": round(dyn_fast_res.lost_gpu_hours, 3),
        },
        "per_policy": per_policy,
        "datacenter": datacenter,
        "pre_pr_anchor": PRE_PR_ANCHOR,
        "wall_ceiling_seconds": WALL_CEILING_SECONDS,
        "ceiling_ok": ceiling_ok,
    }


def render(payload: dict) -> str:
    head = payload["headline"]
    rows = [
        (
            name,
            f"{row['wall_seconds']:.3f}",
            f"{row['jobs_per_second']:.0f}",
            f"{row['policy_wall_seconds']:.3f}",
            row["policy_invocations"],
            row["policy_skips"],
        )
        for name, row in payload["per_policy"].items()
    ]
    table = format_table(
        ["policy", "wall s", "jobs/s", "sched s", "invocations", "skips"],
        rows,
        title=f"simulator speed — {payload['config']['num_jobs']}-job trace, "
        f"seed {payload['config']['seed']}, models pre-fitted",
    )
    dyn = payload["dynamics"]
    out = (
        f"{table}\n"
        f"headline rubick: {head['wall_seconds_fast']:.3f}s fast vs "
        f"{head['wall_seconds_reference']:.3f}s reference "
        f"({head['speedup_vs_reference']:.2f}x in-process; "
        f"{payload['pre_pr_anchor']['speedup_vs_pre_pr']}x vs pre-PR tree "
        f"{payload['pre_pr_anchor']['commit']}), "
        f"{head['events_per_second']:.0f} events/s, "
        f"{head['policy_skips']} rounds short-circuited, "
        f"calendar early-out on "
        f"{head['calendar_fast_rounds']}/"
        f"{head['calendar_fast_rounds'] + head['calendar_exact_scans']} rounds\n"
        f"dynamics ({dyn['profile']}): {dyn['wall_seconds_fast']:.3f}s fast "
        f"vs {dyn['wall_seconds_reference']:.3f}s reference "
        f"({dyn['speedup_vs_reference']:.2f}x, byte-identical), "
        f"{dyn['cluster_events']} events, {dyn['evictions']} evictions, "
        f"{dyn['policy_skips']} rounds short-circuited"
    )
    dc = payload.get("datacenter")
    if dc is not None:
        out += (
            f"\ndatacenter ({dc['policy']}, {dc['nodes']} nodes / "
            f"{dc['jobs']} jobs / {dc['dynamics_profile']}): "
            f"{dc['wall_seconds']:.3f}s wall (min of {dc['reps']}), "
            f"{dc['events_per_second']:.0f} events/s, "
            f"{dc['policy_invocations']} scheduling rounds, "
            f"{dc['evictions']} evictions, "
            f"peak RSS {dc['peak_rss_mb']:.0f} MiB"
        )
    return out


def emit(payload: dict, path: str | os.PathLike | None = None) -> Path:
    """Write the machine-readable trajectory file."""
    if path is None:
        path = os.environ.get(
            "BENCH_SIMSPEED_OUT",
            Path(__file__).resolve().parent.parent / "BENCH_simspeed.json",
        )
    out = Path(path)
    out.write_text(json.dumps(payload, indent=1, allow_nan=False) + "\n")
    return out


def test_sim_speed(benchmark, tmp_path):
    # conftest.run_once inlined: `import conftest` is ambiguous when tests/
    # and benchmarks/ are collected together.
    # Pytest runs default the datacenter leg OFF (tier-1 stays fast);
    # exporting BENCH_DATACENTER_JOBS opts in — the CI datacenter-smoke
    # job instead runs script mode with a downsized leg.
    payload = benchmark.pedantic(
        collect,
        kwargs={"datacenter_jobs": _env_int("BENCH_DATACENTER_JOBS", 0)},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print()
    print(render(payload))
    # pytest runs write a throwaway copy: the committed repo-root snapshot
    # is only refreshed deliberately (script mode / CI artifact).
    out = emit(payload, tmp_path / "BENCH_simspeed.json")
    print(f"wrote {out}")
    assert payload["ceiling_ok"], (
        f"100-job rubick run took {payload['headline']['wall_seconds_fast']}s "
        f"(> {WALL_CEILING_SECONDS}s ceiling)"
    )


if __name__ == "__main__":
    bench_payload = collect()
    print(render(bench_payload))
    print(f"wrote {emit(bench_payload)}")
    if not bench_payload["ceiling_ok"]:
        dc_block = bench_payload.get("datacenter")
        parts = [
            f"headline wall {bench_payload['headline']['wall_seconds_fast']}s "
            f"(ceiling {WALL_CEILING_SECONDS}s)"
        ]
        if dc_block is not None:
            parts.append(
                f"datacenter wall {dc_block['wall_seconds']}s "
                f"(ceiling {dc_block['wall_ceiling_seconds']}s)"
            )
        sys.exit("sim-speed regression: " + ", ".join(parts))
