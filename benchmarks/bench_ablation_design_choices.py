"""Ablations of the reproduction's design choices (DESIGN.md items 14/16).

Not a paper artifact — this sweeps the policy knobs DESIGN.md documents so
their effect is measurable rather than asserted:

* ``growth_mode``: whether running jobs may grow into free resources;
* ``replan_improvement_threshold``: the anti-churn margin on voluntary
  reconfigurations;
* the checkpoint-resume cost ``δ`` (the paper measures 78 s).
"""

from __future__ import annotations

from conftest import BENCH_SEED, run_once

from repro.analysis import format_table
from repro.cluster import PAPER_CLUSTER
from repro.oracle import SyntheticTestbed
from repro.scheduler.rubick import RubickPolicy
from repro.sim import Simulator, WorkloadConfig, generate_trace

NUM_JOBS = 100


def _trace():
    testbed = SyntheticTestbed(PAPER_CLUSTER, seed=BENCH_SEED)
    return generate_trace(
        WorkloadConfig(num_jobs=NUM_JOBS, seed=BENCH_SEED, name="ablation"),
        testbed,
    )


def _run(policy, trace, delta=78.0):
    sim = Simulator(
        PAPER_CLUSTER,
        policy,
        testbed=SyntheticTestbed(PAPER_CLUSTER, seed=BENCH_SEED),
        seed=BENCH_SEED,
        reconfig_delta=delta,
    )
    return sim.run(trace)


def test_ablation_growth_and_margin(benchmark):
    trace = _trace()

    def experiment():
        out = []
        for growth in ("never", "always"):
            for margin in (0.0, 0.15, 0.5):
                policy = RubickPolicy(
                    growth_mode=growth, replan_improvement_threshold=margin
                )
                policy.name = f"growth={growth},margin={margin:g}"
                out.append((policy.name, _run(policy, trace)))
        return out

    out = run_once(benchmark, experiment)
    rows = [
        (name, f"{res.avg_jct_hours():.2f}", f"{res.makespan_hours:.1f}",
         f"{res.avg_reconfig_count:.2f}")
        for name, res in out
    ]
    print()
    print(
        format_table(
            ["config", "avg JCT h", "makespan h", "reconfigs/job"],
            rows,
            title="Ablation — growth mode × improvement margin",
        )
    )
    results = dict(out)
    # Growth into free resources must not hurt makespan: the tail jobs are
    # exactly the ones that benefit from absorbing drained capacity.
    assert (
        results["growth=always,margin=0.15"].makespan
        <= results["growth=never,margin=0.15"].makespan * 1.05
    )
    # All configurations complete the full trace.
    assert all(len(res.records) == NUM_JOBS for res in results.values())


def test_ablation_reconfig_delta(benchmark):
    trace = _trace()

    def experiment():
        out = []
        for delta in (0.0, 78.0, 300.0):
            policy = RubickPolicy()
            policy.name = f"delta={delta:g}s"
            out.append((delta, _run(policy, trace, delta=delta)))
        return out

    out = run_once(benchmark, experiment)
    rows = [
        (f"{delta:g} s", f"{res.avg_jct_hours():.2f}",
         f"{res.reconfig_gpu_hour_fraction:.2%}")
        for delta, res in out
    ]
    print()
    print(
        format_table(
            ["checkpoint-resume cost", "avg JCT h", "reconfig GPU-h share"],
            rows,
            title="Ablation — reconfiguration penalty δ",
        )
    )
    by_delta = {delta: res for delta, res in out}
    # Costlier restarts can only lengthen JCTs (modulo small scheduling
    # noise) and consume a larger share of GPU time.
    assert by_delta[300.0].avg_jct() >= by_delta[0.0].avg_jct() * 0.95
    assert (
        by_delta[300.0].reconfig_gpu_hour_fraction
        >= by_delta[0.0].reconfig_gpu_hour_fraction
    )
