"""Table 4 — end-to-end 64-GPU cluster experiments.

Three trace variants on the paper cluster:

* **Base** — random feasible initial plans; Rubick vs Sia, Synergy, and the
  Rubick-E/R/N ablations.  Paper: Rubick 1×, Sia 2.6×, Synergy 3.23×,
  Rubick-E 2.5×, Rubick-R 1.67×, Rubick-N 3.23× (avg JCT).
* **BP** — best initial plans; Rubick still wins (paper: 1.88×/2.37× over
  Sia/Synergy).
* **MT** — two tenants (guaranteed vs best-effort); Rubick vs AntMan
  (paper: 1.6× all-jobs JCT, 1.28× makespan).

The trace is down-scaled (120 jobs vs the paper's 406) to keep the benchmark
runnable in seconds; EXPERIMENTS.md records the shape comparison.

All runs execute through the experiments sweep subsystem
(`repro.experiments`): each cell is a declarative :class:`RunSpec`, the MT
tenant setup is the runner's variant default, and the per-process trace memo
replaces the old module-scoped trace fixture.
"""

from __future__ import annotations

from conftest import BENCH_SEED, run_once

from repro.analysis import format_table
from repro.experiments import RunSpec, run_sweep
from repro.scheduler import JobPriority

NUM_JOBS = 160


def _runs(policy_names, variant):
    return [
        RunSpec(
            policy=name, variant=variant, seed=BENCH_SEED, num_jobs=NUM_JOBS
        )
        for name in policy_names
    ]


def _print_rows(title, results):
    reference = results[0]
    rows = []
    for res in results:
        rows.append(
            (
                res.policy_name,
                f"{res.avg_jct_hours():.2f} ({res.avg_jct() / reference.avg_jct():.2f}x)",
                f"{res.p99_jct_hours():.2f} ({res.p99_jct() / reference.p99_jct():.2f}x)",
                f"{res.makespan_hours:.1f} ({res.makespan / reference.makespan:.2f}x)",
            )
        )
    print()
    print(format_table(["scheduler", "avg JCT h", "p99 JCT h", "makespan h"],
                       rows, title=title))


def test_table4_base_trace(benchmark):
    policies = ["rubick", "sia", "synergy", "rubick-e", "rubick-r", "rubick-n"]

    def experiment():
        outcome = run_sweep(_runs(policies, "base"))
        return [result for _, result in outcome.pairs()]

    results = run_once(benchmark, experiment)
    _print_rows("Table 4 (Base trace)", results)
    ref = results[0]
    by_name = {r.policy_name: r for r in results}
    # Rubick achieves the best average JCT and ties-or-beats on makespan.
    for name, res in by_name.items():
        assert ref.avg_jct() <= res.avg_jct() * 1.001, name
    # Reconfigurability-agnostic systems trail substantially.
    assert by_name["synergy"].avg_jct() > ref.avg_jct() * 1.3
    assert by_name["rubick-n"].avg_jct() > ref.avg_jct() * 1.2
    # SLA: full Rubick keeps performance guarantees for almost all jobs.
    assert len(ref.sla_violations()) <= 0.1 * len(ref.records)


def test_table4_best_plan_trace(benchmark):
    def experiment():
        bp = run_sweep(_runs(["rubick", "sia", "synergy"], "bp"))
        base = run_sweep(_runs(["sia", "synergy"], "base"))
        return (
            [result for _, result in bp.pairs()],
            [result for _, result in base.pairs()],
        )

    (results, base_results) = run_once(benchmark, experiment)
    _print_rows("Table 4 (BP trace — best initial plans)", results)
    ref, sia_bp, synergy_bp = results
    sia_base, synergy_base = base_results
    # The paper's core BP observation: the fixed-plan baselines improve
    # substantially when handed best initial plans (their Base-trace deficit
    # came from inheriting bad plans), while Rubick is insensitive to the
    # initial plan.  On our testbed Sia's elastic DP scaling can even edge
    # ahead on avg JCT in this regime (EXPERIMENTS.md).
    assert synergy_bp.avg_jct() < synergy_base.avg_jct()
    assert sia_bp.avg_jct() < sia_base.avg_jct()
    assert ref.avg_jct() <= synergy_bp.avg_jct() * 1.1


def test_table4_multi_tenant_trace(benchmark):
    # Tenant quotas (tenant-a guaranteed at full-cluster quota, tenant-b
    # best-effort at zero) are the runner's MT-variant default.
    def experiment():
        outcome = run_sweep(_runs(["rubick", "antman"], "mt"))
        return [result for _, result in outcome.pairs()]

    results = run_once(benchmark, experiment)
    ref, antman = results
    rows = []
    for res in results:
        guar = res.by_priority(JobPriority.GUARANTEED)
        be = res.by_priority(JobPriority.BEST_EFFORT)
        rows.append(
            (
                res.policy_name,
                f"{res.avg_jct_hours():.2f}",
                f"{res.avg_jct_hours(guar):.2f}",
                f"{res.avg_jct_hours(be):.2f}",
                f"{res.makespan_hours:.1f}",
            )
        )
    print()
    print(
        format_table(
            ["scheduler", "JCT all h", "JCT guaranteed h",
             "JCT best-effort h", "makespan h"],
            rows,
            title="Table 4 (MT trace — Rubick vs AntMan)",
        )
    )
    # Rubick beats AntMan overall and per category (paper: 1.6x/1.65x/1.56x).
    assert ref.avg_jct() < antman.avg_jct()
    ref_guar = ref.avg_jct(ref.by_priority(JobPriority.GUARANTEED))
    ant_guar = antman.avg_jct(antman.by_priority(JobPriority.GUARANTEED))
    assert ref_guar < ant_guar
