"""Fig. 9 / Table 3 — training accuracy is preserved across reconfiguration.

For GPT-2, BERT and LLaMA-2-7B, compare the loss deltas caused by
reconfiguring (switching plans mid-run, global batch fixed) against the
deltas caused by changing the random seed.  Expected shape (paper Table 3):
the maximum reconfiguration delta is no larger than the seed delta on train,
validation and test splits.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.analysis import format_table
from repro.models import BERT, GPT2, LLAMA2_7B
from repro.plans import ExecutionPlan, ZeroStage
from repro.training import (
    LossCurveConfig,
    max_loss_difference,
    simulate_loss,
    simulate_reconfigured_loss,
)

#: Reference plan and the reconfiguration schedule exercised per model
#: (mirrors the paper: GA on 8 GPUs reference; ZeRO/offload/GC/TP switches).
SCENARIOS = {
    GPT2.name: (
        GPT2,
        ExecutionPlan(dp=8, ga_steps=2),
        [
            (0, ExecutionPlan(dp=2, ga_steps=8)),
            (1000, ExecutionPlan(dp=4, zero=ZeroStage.ZERO_DP, ga_steps=4)),
            (2000, ExecutionPlan(dp=8, zero=ZeroStage.OFFLOAD, gc=True, ga_steps=2)),
        ],
    ),
    BERT.name: (
        BERT,
        ExecutionPlan(dp=8, ga_steps=2),
        [
            (0, ExecutionPlan(dp=4, gc=True, ga_steps=4)),
            (1500, ExecutionPlan(dp=8, zero=ZeroStage.ZERO_DP, ga_steps=2)),
        ],
    ),
    LLAMA2_7B.name: (
        LLAMA2_7B,
        ExecutionPlan(dp=1, tp=8, ga_steps=32),
        [
            (0, ExecutionPlan(dp=1, pp=8, micro_batches=32, gc=True)),
            (1000, ExecutionPlan(dp=1, tp=4, pp=2, micro_batches=16, gc=True)),
        ],
    ),
}

SPLITS = ("train", "validation", "test")


def test_table3_accuracy_preserved(benchmark):
    def experiment():
        out = {}
        for name, (model, ref_plan, schedule) in SCENARIOS.items():
            cfg = LossCurveConfig(
                model=model, global_batch=model.global_batch_size,
                seed=7, steps=3000,
            )
            seed_cfg = LossCurveConfig(
                model=model, global_batch=model.global_batch_size,
                seed=8, steps=3000,
            )
            deltas = {}
            for split in SPLITS:
                ref = simulate_loss(cfg, ref_plan, split=split)
                rcfg = simulate_reconfigured_loss(cfg, schedule, split=split)
                seed = simulate_loss(seed_cfg, ref_plan, split=split)
                deltas[split] = (
                    max_loss_difference(ref, rcfg),
                    max_loss_difference(ref, seed),
                )
            out[name] = deltas
        return out

    out = run_once(benchmark, experiment)
    rows = []
    for name, deltas in out.items():
        rows.append(
            (
                name,
                *(f"{deltas[s][0]:.3f}" for s in SPLITS),
                *(f"{deltas[s][1]:.3f}" for s in SPLITS),
            )
        )
    print()
    print(
        format_table(
            ["model", "rcfg train", "rcfg val", "rcfg test",
             "seed train", "seed val", "seed test"],
            rows,
            title="Table 3 — max loss deltas: reconfiguration vs seed change",
        )
    )
    for name, deltas in out.items():
        for split in SPLITS:
            rcfg_delta, seed_delta = deltas[split]
            assert rcfg_delta <= seed_delta * 1.05, (
                f"{name}/{split}: reconfiguration delta {rcfg_delta:.3f} "
                f"exceeds seed delta {seed_delta:.3f}"
            )
        # Sanity: curves are not identical (numerics noise is real).
        assert all(deltas[s][0] > 0 for s in SPLITS)


def test_fig09_relative_difference_curves(benchmark):
    """Fig. 9 — the reconfigured run's difference curve stays inside the
    seed-change envelope for most of the run."""
    model, ref_plan, schedule = SCENARIOS[GPT2.name]

    def experiment():
        cfg = LossCurveConfig(model=model, global_batch=16, seed=7, steps=3000)
        seed_cfg = LossCurveConfig(model=model, global_batch=16, seed=9, steps=3000)
        ref = simulate_loss(cfg, ref_plan)
        rcfg = simulate_reconfigured_loss(cfg, schedule)
        seed = simulate_loss(seed_cfg, ref_plan)
        return ref, rcfg, seed

    ref, rcfg, seed = run_once(benchmark, experiment)
    rcfg_diff = np.abs(rcfg - ref)
    seed_env = np.abs(seed - ref)
    inside = float(np.mean(rcfg_diff <= np.maximum(seed_env, 0.02)))
    print(f"\nFig. 9 — fraction of steps inside the seed envelope: {inside:.2f}")
    assert inside > 0.8
