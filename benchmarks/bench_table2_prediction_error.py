"""Table 2 — performance-model prediction errors.

For each of the seven models: fit on the standard profiled sample set, then
predict ~20 unseen configurations (4 plan families × 5 resource allocations)
and report average / max relative error per family.  The paper reports
averages up to 7.4% and maxima up to 10.4%.
"""

from __future__ import annotations

from conftest import BENCH_SEED, run_once

from repro.analysis import format_table
from repro.cluster import PAPER_CLUSTER
from repro.models import all_models
from repro.oracle import build_perf_model
from repro.perfmodel import ResourceShape
from repro.plans import ZeroStage, enumerate_plans
from repro.scheduler import default_plan_space

BUDGET = PAPER_CLUSTER.node.usable_gpu_mem

#: Holdout plan families per model scale, as in the paper's Table 2 columns.
SMALL_FAMILIES = [
    ("DP", lambda p: p.is_pure_dp_family and not p.uses_zero and not p.gc),
    ("GC", lambda p: p.is_pure_dp_family and not p.uses_zero and p.gc),
    ("ZeRO-DP+GA", lambda p: p.zero == ZeroStage.ZERO_DP and p.ga_steps > 1),
    ("ZeRO-Offload", lambda p: p.uses_offload),
]
LARGE_FAMILIES = [
    ("TP+PP", lambda p: p.tp > 1 and p.pp > 1 and p.dp == 1),
    ("DP+TP+PP", lambda p: p.dp > 1 and (p.tp > 1 or p.pp > 1)),
    ("ZeRO-DP+GA", lambda p: p.zero == ZeroStage.ZERO_DP and p.ga_steps > 1),
    ("ZeRO-Offload", lambda p: p.uses_offload),
]


def _holdout_errors(testbed, perf, model, families, gpu_counts):
    batch = model.global_batch_size
    space = default_plan_space(model)
    errors: dict[str, list[float]] = {name: [] for name, _ in families}
    for gpus in gpu_counts:
        shape = ResourceShape.packed(gpus, cpus=gpus * 4)
        plans = enumerate_plans(
            model, batch, gpus,
            min_gpus_per_node=shape.min_gpus_per_node,
            gpu_mem_budget=BUDGET, space=space,
        )
        for name, predicate in families:
            chosen = next(
                (
                    p
                    for p in plans
                    if predicate(p)
                    and testbed.is_feasible(model, p, shape, batch)
                ),
                None,
            )
            if chosen is None:
                continue
            true = testbed.true_throughput(model, chosen, shape, batch)
            pred = perf.throughput(chosen, shape, batch)
            errors[name].append(abs(pred - true) / true)
    return errors


def test_table2_prediction_errors(benchmark, testbed):
    def experiment():
        rows = {}
        for model in all_models():
            perf, _ = build_perf_model(
                testbed, model, model.global_batch_size, seed=BENCH_SEED
            )
            small = model.param_count < 1e9
            families = SMALL_FAMILIES if small else LARGE_FAMILIES
            counts = [1, 2, 4, 6, 8] if small else [2, 4, 8, 16, 32]
            rows[model.name] = _holdout_errors(
                testbed, perf, model, families, counts
            )
        return rows

    rows = run_once(benchmark, experiment)
    table = []
    overall = []
    for model in all_models():
        errs = rows[model.name]
        cells = [model.display_name]
        for name, _ in (
            SMALL_FAMILIES if model.param_count < 1e9 else LARGE_FAMILIES
        ):
            samples = errs[name]
            if not samples:
                cells.append("/")
                continue
            overall.extend(samples)
            cells.append(
                f"{100 * sum(samples) / len(samples):.1f}/{100 * max(samples):.1f}"
            )
        table.append(tuple(cells))
    print()
    print(
        format_table(
            ["model", "fam1 avg/max %", "fam2 avg/max %",
             "fam3 avg/max %", "fam4 avg/max %"],
            table,
            title="Table 2 — prediction error per plan family "
            "(small: DP/GC/ZeRO-DP+GA/Offload; large: TP+PP/DP+TP+PP/"
            "ZeRO-DP+GA/Offload)",
        )
    )
    assert overall, "no holdout configurations evaluated"
    avg = sum(overall) / len(overall)
    # Paper band: averages a few percent, maxima around 10%.
    assert avg < 0.12, f"average prediction error too high: {avg:.1%}"
    assert max(overall) < 0.35, f"worst prediction error: {max(overall):.1%}"
