"""Shared fixtures for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper's evaluation
(§7) and prints it; pytest-benchmark wraps the experiment so runtimes are
recorded.  Heavy fixtures (the testbed and fitted performance models) are
session-scoped and shared.
"""

from __future__ import annotations

import pytest

from repro.cluster import PAPER_CLUSTER
from repro.models import all_models
from repro.oracle import SyntheticTestbed, build_perf_model
from repro.planeval import PlanEvalEngine
from repro.scheduler import PerfModelStore

#: One seed for the whole benchmark suite — results are reproducible.  The
#: end-to-end traces need enough load for scheduling differences to show
#: (the paper samples the *busiest* 12 hours of the Microsoft trace); this
#: seed/size pair reproduces that pressure on the 64-GPU cluster.
BENCH_SEED = 7


@pytest.fixture(scope="session")
def testbed() -> SyntheticTestbed:
    return SyntheticTestbed(PAPER_CLUSTER, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def perf_store(testbed) -> PerfModelStore:
    """Fitted performance models for all seven catalog models."""
    store = PerfModelStore()
    for model in all_models():
        perf, _ = build_perf_model(
            testbed, model, model.global_batch_size, seed=BENCH_SEED
        )
        store.add(perf)
    return store


@pytest.fixture()
def plan_engine(perf_store) -> PlanEvalEngine:
    """A fresh plan-evaluation engine over the shared fitted models.

    Function-scoped on purpose: cache-behavior benchmarks need cold counters.
    """
    return PlanEvalEngine(PAPER_CLUSTER, perf_store=perf_store)


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
