"""Workload scenario matrix — trace shape and generation cost per scenario.

Not a paper figure: the scenario registry generalizes the paper's single
§7.3 trace shape, and this benchmark documents what each registered
scenario actually produces (arrival spread, GPU-hour load, large-model
share) plus what generating it costs.  Regenerating a scenario must be
deterministic — the table is built from two generations per scenario and
asserts they are identical.
"""

from __future__ import annotations

import time

from conftest import BENCH_SEED, run_once

from repro.analysis import format_table
from repro.cluster import PAPER_CLUSTER
from repro.models import LARGE_MODEL_NAMES
from repro.oracle import SyntheticTestbed
from repro.sim.serialization import trace_to_dict
from repro.units import HOUR
from repro.workloads import list_scenarios, scenario_trace

NUM_JOBS = 40


def test_scenario_matrix_generation(benchmark, testbed):
    scenarios = [s for s in list_scenarios() if not s.is_replay]

    def experiment():
        out = []
        for scenario in scenarios:
            start = time.perf_counter()
            trace = scenario_trace(
                scenario,
                seed=BENCH_SEED,
                cluster=PAPER_CLUSTER,
                num_jobs=NUM_JOBS,
                testbed=testbed,
            )
            elapsed = time.perf_counter() - start
            again = scenario_trace(
                scenario,
                seed=BENCH_SEED,
                cluster=PAPER_CLUSTER,
                num_jobs=NUM_JOBS,
                testbed=SyntheticTestbed(PAPER_CLUSTER, seed=BENCH_SEED),
            )
            out.append((scenario, trace, again, elapsed))
        return out

    results = run_once(benchmark, experiment)
    rows = []
    for scenario, trace, again, elapsed in results:
        # Regeneration from a fresh testbed is bit-identical: the trace is
        # a pure function of (scenario, seed, cluster, num_jobs).
        assert trace_to_dict(trace) == trace_to_dict(again), scenario.name
        large = sum(1 for j in trace if j.model_name in LARGE_MODEL_NAMES)
        tenants = len({j.tenant for j in trace})
        rows.append(
            (
                scenario.name,
                len(trace),
                f"{trace.span / HOUR:.1f}",
                f"{trace.total_gpu_hours:.0f}",
                f"{large}/{len(trace)}",
                tenants,
                f"{1000 * elapsed:.0f}",
            )
        )
    print()
    print(
        format_table(
            ["scenario", "jobs", "span h", "GPU-h", "large jobs", "tenants",
             "gen ms"],
            rows,
            title=f"workload scenario matrix ({NUM_JOBS} jobs, 64 GPUs)",
        )
    )
    by_name = {s.name: (t, a, e) for s, t, a, e in results}
    # The scenario axes actually move the workload: diurnal-3d stretches
    # the window, largemodel-heavy shifts the mix.
    assert by_name["diurnal-3d"][0].span > 2 * by_name["paper-12h"][0].span
    heavy = sum(
        1 for j in by_name["largemodel-heavy"][0]
        if j.model_name in LARGE_MODEL_NAMES
    )
    base = sum(
        1 for j in by_name["paper-12h"][0]
        if j.model_name in LARGE_MODEL_NAMES
    )
    assert heavy > base
