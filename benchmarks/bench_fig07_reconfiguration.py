"""Fig. 7 — Rubick reconfigures a LLaMA-2-7B job through shrinking limits.

Stages: 4×8 GPUs → 4×4 → 4 → 1 → 1 GPU with doubled CPUs.  Expected shape:
3D-parallel configurations win while multi-GPU; at 1 GPU ZeRO-Offload is the
only feasible plan; doubling the CPUs speeds the offloaded optimizer up
substantially (the paper measures 1.7×).
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import format_table
from repro.cluster import PAPER_CLUSTER
from repro.models import LLAMA2_7B
from repro.perfmodel import ResourceShape
from repro.scheduler import SensitivityAnalyzer

#: (label, gpus, num_nodes, cpus)
STAGES = [
    ("4 x 8-GPUs", 32, 4, 128),
    ("4 x 4-GPUs", 16, 4, 64),
    ("4 GPUs", 4, 1, 16),
    ("1 GPU", 1, 1, 8),
    ("1 GPU, 2x CPUs", 1, 1, 16),
]


def test_fig07_reconfiguration_walk(benchmark, testbed, perf_store):
    analyzer = SensitivityAnalyzer(perf_store, PAPER_CLUSTER)
    batch = LLAMA2_7B.global_batch_size

    def experiment():
        results = []
        for label, gpus, nodes, cpus in STAGES:
            shape = ResourceShape(
                gpus=gpus,
                num_nodes=nodes,
                min_gpus_per_node=gpus // nodes,
                cpus=cpus,
            )
            best = analyzer.best_for_shape(LLAMA2_7B, batch, shape)
            assert best is not None, f"no feasible plan at stage {label}"
            true_thr = testbed.true_throughput(
                LLAMA2_7B, best.plan, shape, batch
            )
            results.append((label, best.plan, best.throughput, true_thr))
        return results

    results = run_once(benchmark, experiment)
    rows = [
        (label, plan.describe(), f"{pred:.2f}", f"{true:.2f}")
        for label, plan, pred, true in results
    ]
    print()
    print(
        format_table(
            ["stage", "Rubick's chosen plan", "predicted ex/s", "true ex/s"],
            rows,
            title="Fig. 7 — LLaMA-2-7B reconfiguration under shrinking limits",
        )
    )

    by_label = {label: (plan, true) for label, plan, _, true in results}
    # Multi-node stages use a scalable multi-GPU strategy (3D parallelism or
    # ZeRO-DP — which of the two wins depends on the testbed's hidden
    # bandwidth constants; the paper's cluster favored 3D).
    plan32, _ = by_label["4 x 8-GPUs"]
    assert plan32.num_gpus == 32
    assert plan32.tp > 1 or plan32.pp > 1 or plan32.uses_zero
    # 1 GPU: ZeRO-Offload is the only feasible option for a 7B model.
    plan1, thr1 = by_label["1 GPU"]
    assert plan1.uses_offload
    # Doubling CPUs accelerates the offloaded optimizer.  The paper measures
    # 1.7x; our testbed's 7B compute share is larger, so the speedup is
    # smaller but clearly present (EXPERIMENTS.md records the value).
    _, thr2 = by_label["1 GPU, 2x CPUs"]
    assert thr2 > thr1 * 1.08, f"CPU doubling speedup only {thr2 / thr1:.2f}x"
    # Throughput decreases monotonically as the limits shrink.
    trues = [true for _, _, _, true in results[:4]]
    assert all(a >= b for a, b in zip(trues, trues[1:]))
