"""Fig. 2 — multi-resource consumption of GPT-2 execution plans.

The paper trains GPT-2 (global batch 16) on the minimum number of A800 GPUs
per plan and reports the consumption of each resource type (GPU, CPU, host
memory, network bandwidth) normalized to the highest value.  Expected shape:
ZeRO-Offload uses the most CPUs and host memory; TP uses the most bandwidth
with roughly the same GPUs; DP-family plans are balanced.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import format_table
from repro.cluster import PAPER_CLUSTER
from repro.models import GPT2
from repro.perfmodel import ResourceShape
from repro.perfmodel.components import (
    comm_volume_dp,
    comm_volume_pp,
    comm_volume_tp,
    offload_volume,
)
from repro.plans import ZeroStage, enumerate_plans, estimate_memory
from repro.units import GB

BUDGET = PAPER_CLUSTER.node.usable_gpu_mem


def _min_gpu_config(testbed, predicate, offload_cpus: int = 10):
    """Smallest GPU count at which a plan matching ``predicate`` launches.

    ZeRO-Offload runs with its natural CPU allotment (the paper's Fig. 2
    normalizes against 10 CPUs); other plans take 1 dataloader CPU per GPU.
    """
    for gpus in range(1, 9):
        for plan in enumerate_plans(
            GPT2, 16, gpus, min_gpus_per_node=gpus, gpu_mem_budget=BUDGET
        ):
            if not predicate(plan):
                continue
            cpus = offload_cpus if plan.uses_offload else gpus
            shape = ResourceShape.packed(gpus, cpus=cpus)
            if testbed.is_feasible(GPT2, plan, shape, 16):
                return plan, shape
    return None, None


def _profile(testbed, plan, shape):
    """(gpus, cpus, host GB, bandwidth GB/s) consumed by a plan."""
    est = estimate_memory(GPT2, plan, 16)
    iter_time = testbed.true_iter_time(GPT2, plan, shape, 16)
    volume = (
        comm_volume_dp(GPT2, plan)
        + comm_volume_tp(GPT2, plan, 16)
        + comm_volume_pp(GPT2, plan, 16)
        + offload_volume(GPT2, plan)
    )
    bandwidth = volume / iter_time
    # CPU demand: dataloader core per GPU; the offloaded optimizer wants the
    # cores it was given (the shape's allocation).
    cpus = shape.cpus if plan.uses_offload else plan.num_gpus
    return plan.num_gpus, cpus, est.host_total / GB, bandwidth / GB


PLAN_PREDICATES = [
    ("DP", lambda p: p.family == "DP"),
    ("TP", lambda p: p.family == "TP"),
    ("PP", lambda p: p.family == "PP"),
    ("DP+GA", lambda p: p.family == "DP+GA"),
    ("DP+GC", lambda p: p.family == "DP+GC"),
    ("ZeRO-DP", lambda p: p.zero == ZeroStage.ZERO_DP and not p.gc),
    ("ZeRO-Offload", lambda p: p.uses_offload and not p.gc),
    ("ZeRO-Offload+GA", lambda p: p.uses_offload and p.ga_steps > 1),
]


def test_fig02_resource_profiles(benchmark, testbed):
    def experiment():
        rows = []
        for name, predicate in PLAN_PREDICATES:
            plan, shape = _min_gpu_config(testbed, predicate)
            if plan is None:
                rows.append((name, None))
                continue
            rows.append((name, _profile(testbed, plan, shape)))
        return rows

    rows = run_once(benchmark, experiment)
    present = [(n, p) for n, p in rows if p is not None]
    assert present, "no feasible GPT-2 plans found"
    max_vals = [max(p[i] for _, p in present) for i in range(4)]
    table = []
    profiles = {}
    for name, profile in present:
        norm = [v / m if m else 0.0 for v, m in zip(profile, max_vals)]
        profiles[name] = norm
        table.append(
            (name, profile[0], profile[1], f"{profile[2]:.1f}", f"{profile[3]:.1f}",
             f"{norm[0]:.2f}", f"{norm[1]:.2f}", f"{norm[2]:.2f}", f"{norm[3]:.2f}")
        )
    print()
    print(
        format_table(
            ["plan", "GPUs", "CPUs", "mem GB", "BW GB/s",
             "nGPU", "nCPU", "nMem", "nBW"],
            table,
            title="Fig. 2 — GPT-2 resource consumption per plan "
            "(normalized to column max)",
        )
    )

    # Paper shape assertions: offload dominates CPU and host memory; TP
    # dominates bandwidth among the non-offload plans.
    assert profiles["ZeRO-Offload"][1] == 1.0 or profiles["ZeRO-Offload+GA"][1] == 1.0
    assert profiles["ZeRO-Offload"][2] == 1.0 or profiles["ZeRO-Offload+GA"][2] == 1.0
    non_offload = {n: p for n, p in profiles.items() if "Offload" not in n}
    assert max(non_offload, key=lambda n: non_offload[n][3]) in ("TP", "PP")
