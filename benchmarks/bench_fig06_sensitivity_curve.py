"""Fig. 6 — resource (GPU) sensitivity curve of GPT-2.

The curve is the upper envelope over all plans of predicted throughput vs.
GPU count (1–8), flat across invalid counts.  Expected shape: monotone
non-decreasing, the best plan changes along the x-axis, and some GPU counts
are invalid (no plan uses exactly that many GPUs better than fewer).
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import format_series
from repro.models import GPT2
from repro.cluster import PAPER_CLUSTER
from repro.scheduler import SensitivityAnalyzer


def test_fig06_gpu_sensitivity_curve(benchmark, perf_store):
    analyzer = SensitivityAnalyzer(perf_store, PAPER_CLUSTER)

    def experiment():
        return analyzer.gpu_curve(GPT2, GPT2.global_batch_size, max_gpus=8)

    curve = run_once(benchmark, experiment)
    xs, ys, plans = [], [], []
    for g in range(1, 9):
        cfg = curve.config_at(g)
        xs.append(g)
        ys.append(curve.throughput_at(g))
        plans.append(cfg.plan.describe() if cfg else "-")
    print()
    print(format_series(xs, ys, label="Fig. 6 — GPT-2 best-plan throughput vs GPUs"))
    for g, plan in zip(xs, plans):
        print(f"    {g} GPUs -> {plan}")

    # Envelope is monotone non-decreasing and strictly grows overall.
    assert all(b >= a for a, b in zip(ys, ys[1:]))
    assert ys[-1] > ys[0]
    # The best plan changes along the curve (reconfiguration matters).
    assert len(set(plans)) >= 2
    # Some GPU counts are invalid: the envelope has at least one flat step.
    assert any(b == a for a, b in zip(ys, ys[1:]))
