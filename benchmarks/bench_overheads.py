"""§7.3 "System overheads" — reconfiguration and profiling cost accounting.

The paper reports: average reconfiguration time per job 78 s, total
reconfiguration ≈ 1% of GPU-hours, and ~210 s of profiling per model type
(7 sampled runs on an 8-GPU server).
"""

from __future__ import annotations

from conftest import BENCH_SEED, run_once

from repro.analysis import format_table
from repro.cluster import PAPER_CLUSTER
from repro.models import GPT2
from repro.oracle import (
    SyntheticTestbed,
    default_profile_configs,
    profiling_cost_seconds,
)
from repro.scheduler import rubick
from repro.sim import Simulator, WorkloadConfig, generate_trace


def test_overheads(benchmark):
    testbed = SyntheticTestbed(PAPER_CLUSTER, seed=BENCH_SEED)
    trace = generate_trace(
        WorkloadConfig(num_jobs=100, seed=BENCH_SEED, name="overheads"), testbed
    )

    def experiment():
        sim = Simulator(
            PAPER_CLUSTER,
            rubick(),
            testbed=SyntheticTestbed(PAPER_CLUSTER, seed=BENCH_SEED),
            seed=BENCH_SEED,
        )
        return sim.run(trace)

    res = run_once(benchmark, experiment)
    configs = default_profile_configs(testbed, GPT2, 16)
    rows = [
        ("avg reconfiguration seconds / job", f"{res.avg_reconfig_seconds_per_job:.0f}"),
        ("avg reconfigurations / job", f"{res.avg_reconfig_count:.2f}"),
        ("reconfiguration share of GPU-hours", f"{res.reconfig_gpu_hour_fraction:.2%}"),
        ("profiling runs per model type", f"{len(configs)}"),
        ("profiling seconds per model type", f"{profiling_cost_seconds(len(configs)):.0f}"),
        ("scheduler wall-clock per invocation (ms)",
         f"{1000 * res.policy_wall_seconds / max(res.policy_invocations, 1):.0f}"),
    ]
    print()
    print(format_table(["overhead", "value"], rows, title="§7.3 system overheads"))

    # Paper band: reconfiguration stays a small fraction of GPU time, and
    # profiling stays within a few minutes per model type.
    assert res.reconfig_gpu_hour_fraction < 0.05
    assert profiling_cost_seconds(len(configs)) <= 330
