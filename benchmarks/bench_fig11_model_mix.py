"""Fig. 11 — Rubick's gain grows with the share of large models.

The sampling weight of LLaMA-2-7B / LLaMA-30B is scaled 0.5×/1×/1.5×/2×.
Expected shape: Rubick beats Synergy at every mix, with larger gains at
larger shares (paper: 2.6×→3.4× JCT) — large models benefit most from being
able to *start* on fewer GPUs with a reconfigured plan.
"""

from __future__ import annotations

from conftest import BENCH_SEED, run_once

from repro.analysis import format_table
from repro.cluster import PAPER_CLUSTER
from repro.oracle import SyntheticTestbed
from repro.scheduler import rubick
from repro.scheduler.baselines import SynergyPolicy
from repro.sim import (
    Simulator,
    WorkloadConfig,
    generate_trace,
    with_large_model_share,
)

FACTORS = (0.5, 1.0, 1.5, 2.0)
NUM_JOBS = 90


def test_fig11_model_mix_sweep(benchmark):
    testbed = SyntheticTestbed(PAPER_CLUSTER, seed=BENCH_SEED)

    def experiment():
        out = []
        for factor in FACTORS:
            config = with_large_model_share(
                WorkloadConfig(num_jobs=NUM_JOBS, seed=BENCH_SEED, name="mix"),
                factor,
            )
            trace = generate_trace(config, testbed)
            results = {}
            for make in (rubick, SynergyPolicy):
                policy = make()
                sim = Simulator(
                    PAPER_CLUSTER,
                    policy,
                    testbed=SyntheticTestbed(PAPER_CLUSTER, seed=BENCH_SEED),
                    seed=BENCH_SEED,
                )
                results[policy.name] = sim.run(trace)
            out.append((factor, trace, results))
        return out

    out = run_once(benchmark, experiment)
    rows = []
    gains = []
    for factor, trace, results in out:
        large = sum(
            1 for j in trace if j.model_name in ("llama2-7b", "llama-30b")
        )
        ru, sy = results["rubick"], results["synergy"]
        gain = sy.avg_jct() / ru.avg_jct()
        gains.append(gain)
        rows.append(
            (
                f"{factor:g}x",
                f"{large}/{len(trace)}",
                f"{ru.avg_jct_hours():.2f}",
                f"{sy.avg_jct_hours():.2f}",
                f"{gain:.2f}x",
                f"{sy.makespan / ru.makespan:.2f}x",
            )
        )
    print()
    print(
        format_table(
            ["large-model weight", "large jobs", "Rubick JCT h",
             "Synergy JCT h", "JCT gain", "makespan gain"],
            rows,
            title="Fig. 11 — performance vs proportion of large models",
        )
    )
    # Rubick wins at the base mix and at most mixes; extreme mixes can favor
    # gang FIFO on our testbed (recorded in EXPERIMENTS.md).
    assert gains[1] > 1.0
    assert sum(1 for g in gains if g > 1.0) >= len(gains) // 2 + 1
