"""Fig. 3 — best-plan rankings flip as resource limits shrink.

The paper trains RoBERTa (3a) and T5 (3b) while stepping the resource limit
down: 4×8 GPUs → 4×4 → 4 → 1 (→ 10 GB host memory for T5).  Expected shape:

* RoBERTa: ZeRO-DP(-family) wins while GPUs are plentiful; with 1 GPU a
  plain DP+GA variant takes over (ZeRO partitioning degenerates at d=1).
* T5: 3D-parallel/TP plans win while distributed; at 1 GPU ZeRO-Offload is
  competitive; capping host memory at 10 GB kills ZeRO-Offload entirely.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import format_table
from repro.cluster import PAPER_CLUSTER
from repro.models import ROBERTA, T5
from repro.perfmodel import ResourceShape
from repro.plans import enumerate_plans
from repro.scheduler import default_plan_space
from repro.units import GB

BUDGET = PAPER_CLUSTER.node.usable_gpu_mem

#: (label, gpus, num_nodes, host-memory override)
STAGES = [
    ("4 x 8-GPUs", 32, 4, None),
    ("4 x 4-GPUs", 16, 4, None),
    ("4 GPUs", 4, 1, None),
    ("1 GPU", 1, 1, None),
    ("1 GPU, 10 GB host", 1, 1, 10 * GB),
]


def _stage_ranking(testbed, model, gpus, num_nodes, host_override):
    per_node = gpus // num_nodes
    shape = ResourceShape(
        gpus=gpus,
        num_nodes=num_nodes,
        min_gpus_per_node=per_node,
        cpus=gpus * 4,
    )
    batch = model.global_batch_size
    results = []
    for plan in enumerate_plans(
        model, batch, gpus, min_gpus_per_node=per_node,
        gpu_mem_budget=BUDGET, space=default_plan_space(model),
    ):
        if not testbed.is_feasible(
            model, plan, shape, batch, host_mem_override=host_override
        ):
            continue
        thr = testbed.true_throughput(
            model, plan, shape, batch, check_memory=False
        )
        results.append((thr, plan))
    results.sort(key=lambda item: item[0], reverse=True)
    return results


def test_fig03_plan_rankings(benchmark, testbed):
    def experiment():
        out = {}
        for model in (ROBERTA, T5):
            out[model.name] = [
                (label, _stage_ranking(testbed, model, g, n, host))
                for label, g, n, host in STAGES
            ]
        return out

    out = run_once(benchmark, experiment)
    for model_name, stages in out.items():
        rows = []
        for label, ranking in stages:
            if not ranking:
                rows.append((label, "(no feasible plan)", "-", "-"))
                continue
            best_thr, best_plan = ranking[0]
            worst_thr = ranking[-1][0]
            rows.append(
                (
                    label,
                    best_plan.describe(),
                    f"{best_thr:.1f}",
                    f"{best_thr / worst_thr:.1f}x" if worst_thr > 0 else "-",
                )
            )
        print()
        print(
            format_table(
                ["stage", "best plan", "thr ex/s", "best/worst gap"],
                rows,
                title=f"Fig. 3 — {model_name}: best plan per resource stage",
            )
        )

    roberta = dict((label, r) for label, r in out["roberta"])
    # Plentiful GPUs: a ZeRO-DP-family plan is at the top (winner or
    # runner-up); 1 GPU: never ZeRO-Offload (its CPU optimizer is the worst
    # choice for small models, as the paper observes).
    top2_32 = [plan for _, plan in roberta["4 x 8-GPUs"][:2]]
    assert any(p.uses_zero and not p.uses_offload for p in top2_32)
    top1 = roberta["1 GPU"][0][1]
    assert not top1.uses_offload
    # The ranking flips between abundant and scarce GPUs.
    assert roberta["4 x 8-GPUs"][0][1] != roberta["1 GPU"][0][1]

    t5 = dict((label, r) for label, r in out["t5-1.2b"])
    top_t5_32 = t5["4 x 8-GPUs"][0][1]
    assert top_t5_32.tp > 1 or top_t5_32.pp > 1 or top_t5_32.uses_zero
    # The 10 GB host cap eliminates every ZeRO-Offload plan.
    assert all(not p.uses_offload for _, p in t5["1 GPU, 10 GB host"])
    # Rankings flip across stages: the 32-GPU winner is not the 1-GPU winner.
    assert t5["4 x 8-GPUs"][0][1] != t5["1 GPU"][0][1]
