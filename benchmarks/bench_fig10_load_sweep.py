"""Fig. 10 — Rubick's gain over Synergy grows with cluster load.

The same jobs arrive 0.5×/1×/1.5×/2× as fast; avg JCT and makespan are
compared.  Expected shape: Rubick wins at every load, with the JCT gain
generally increasing with load (paper: up to 3.5× JCT, 1.4× makespan).
"""

from __future__ import annotations

from conftest import BENCH_SEED, run_once

from repro.analysis import format_table
from repro.cluster import PAPER_CLUSTER
from repro.oracle import SyntheticTestbed
from repro.scheduler import rubick
from repro.scheduler.baselines import SynergyPolicy
from repro.sim import Simulator, WorkloadConfig, generate_trace

LOADS = (0.5, 0.75, 1.0, 1.5)
NUM_JOBS = 90


def test_fig10_load_sweep(benchmark):
    testbed = SyntheticTestbed(PAPER_CLUSTER, seed=BENCH_SEED)
    base = generate_trace(
        WorkloadConfig(num_jobs=NUM_JOBS, seed=BENCH_SEED, name="load"), testbed
    )

    def experiment():
        out = []
        for load in LOADS:
            trace = base.scaled_load(load)
            results = {}
            for make in (rubick, SynergyPolicy):
                policy = make()
                sim = Simulator(
                    PAPER_CLUSTER,
                    policy,
                    testbed=SyntheticTestbed(PAPER_CLUSTER, seed=BENCH_SEED),
                    seed=BENCH_SEED,
                )
                results[policy.name] = sim.run(trace)
            out.append((load, results))
        return out

    out = run_once(benchmark, experiment)
    rows = []
    gains = []
    for load, results in out:
        ru, sy = results["rubick"], results["synergy"]
        gain = sy.avg_jct() / ru.avg_jct()
        gains.append(gain)
        rows.append(
            (
                f"{load:g}x",
                f"{ru.avg_jct_hours():.2f}",
                f"{sy.avg_jct_hours():.2f}",
                f"{gain:.2f}x",
                f"{sy.makespan / ru.makespan:.2f}x",
            )
        )
    print()
    print(
        format_table(
            ["load", "Rubick avg JCT h", "Synergy avg JCT h",
             "JCT gain", "makespan gain"],
            rows,
            title="Fig. 10 — performance vs cluster load",
        )
    )
    # Rubick wins at every load in this range.  Divergence from the paper:
    # our synthetic base trace is already near saturation at 1x, so the gain
    # peaks at moderate load instead of rising monotonically (see
    # EXPERIMENTS.md).
    assert all(g > 1.0 for g in gains)
