"""Fig. 10 — Rubick's gain over Synergy grows with cluster load.

The same jobs arrive 0.5×/1×/1.5×/2× as fast; avg JCT and makespan are
compared.  Expected shape: Rubick wins at every load, with the JCT gain
generally increasing with load (paper: up to 3.5× JCT, 1.4× makespan).

The load dimension is a first-class sweep axis (`SweepSpec.load_factors`);
this benchmark is a 2-policy × 4-load grid on the experiments subsystem.
"""

from __future__ import annotations

from conftest import BENCH_SEED, run_once

from repro.analysis import format_table
from repro.experiments import SweepSpec, run_sweep

LOADS = (0.5, 0.75, 1.0, 1.5)
NUM_JOBS = 90


def test_fig10_load_sweep(benchmark):
    spec = SweepSpec(
        policies=("rubick", "synergy"),
        seeds=(BENCH_SEED,),
        num_jobs=NUM_JOBS,
        load_factors=LOADS,
        trace_name="load",
    )

    def experiment():
        return run_sweep(spec)

    outcome = run_once(benchmark, experiment)
    rows = []
    gains = []
    for load in LOADS:
        ru = outcome.one(policy="rubick", load_factor=load)
        sy = outcome.one(policy="synergy", load_factor=load)
        gain = sy.avg_jct() / ru.avg_jct()
        gains.append(gain)
        rows.append(
            (
                f"{load:g}x",
                f"{ru.avg_jct_hours():.2f}",
                f"{sy.avg_jct_hours():.2f}",
                f"{gain:.2f}x",
                f"{sy.makespan / ru.makespan:.2f}x",
            )
        )
    print()
    print(
        format_table(
            ["load", "Rubick avg JCT h", "Synergy avg JCT h",
             "JCT gain", "makespan gain"],
            rows,
            title="Fig. 10 — performance vs cluster load",
        )
    )
    # Rubick wins at every load in this range.  Divergence from the paper:
    # our synthetic base trace is already near saturation at 1x, so the gain
    # peaks at moderate load instead of rising monotonically (see
    # EXPERIMENTS.md).
    assert all(g > 1.0 for g in gains)
