"""Fig. 8 — maximizing aggregate throughput across two jobs on 4 GPUs.

A RoBERTa job and a T5 job share 4 GPUs.  The "simple" scheduler splits them
2/2 (with plan reconfiguration allowed); Rubick recognizes T5 gains more from
GPUs and splits 3/1 (paper) — aggregate speedup 1.44 vs 0.78 (85% better).
Speedups are normalized to each job's rigid plan on the full 4 GPUs.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import format_table
from repro.cluster import single_node_cluster
from repro.models import ROBERTA, T5
from repro.oracle import SyntheticTestbed, build_perf_model
from repro.perfmodel import ResourceShape
from repro.scheduler import PerfModelStore, SensitivityAnalyzer


def _baseline(testbed, analyzer, model):
    """Rigid reference: the model's best plan on all 4 GPUs."""
    shape = ResourceShape.packed(4, node_size=4, cpus=16)
    best = analyzer.best_for_shape(model, model.global_batch_size, shape)
    assert best is not None
    return testbed.true_throughput(model, best.plan, shape, model.global_batch_size)


def _speedup_for_split(testbed, analyzer, split):
    """Aggregate normalized speedup for a (roberta_gpus, t5_gpus) split."""
    total = 0.0
    parts = {}
    for model, gpus in ((ROBERTA, split[0]), (T5, split[1])):
        if gpus == 0:
            parts[model.name] = 0.0
            continue
        shape = ResourceShape.packed(gpus, node_size=4, cpus=gpus * 4)
        best = analyzer.best_for_shape(model, model.global_batch_size, shape)
        if best is None:
            parts[model.name] = 0.0
            continue
        thr = testbed.true_throughput(
            model, best.plan, shape, model.global_batch_size
        )
        speedup = thr / _baseline(testbed, analyzer, model)
        parts[model.name] = speedup
        total += speedup
    return total, parts


def test_fig08_two_job_throughput(benchmark):
    from conftest import BENCH_SEED

    cluster = single_node_cluster(4)
    testbed = SyntheticTestbed(cluster, seed=BENCH_SEED)
    store = PerfModelStore()
    for model in (ROBERTA, T5):
        perf, _ = build_perf_model(
            testbed, model, model.global_batch_size, max_gpus=4, seed=BENCH_SEED
        )
        store.add(perf)
    analyzer = SensitivityAnalyzer(store, cluster)

    def experiment():
        simple_total, simple_parts = _speedup_for_split(testbed, analyzer, (2, 2))
        # Rubick's policy: pick the split with the best predicted aggregate
        # normalized speedup (the sensitivity-curve comparison of §5.2).
        best_split, best_total, best_parts = None, -1.0, None
        for roberta_gpus in range(0, 5):
            split = (roberta_gpus, 4 - roberta_gpus)
            total, parts = _speedup_for_split(testbed, analyzer, split)
            if total > best_total:
                best_split, best_total, best_parts = split, total, parts
        return simple_total, simple_parts, best_split, best_total, best_parts

    simple_total, simple_parts, split, total, parts = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            ["scheduler", "RoBERTa", "T5", "overall"],
            [
                ("Rubick", f"{parts['roberta']:.2f}", f"{parts['t5-1.2b']:.2f}",
                 f"{total:.2f}"),
                ("Simple", f"{simple_parts['roberta']:.2f}",
                 f"{simple_parts['t5-1.2b']:.2f}", f"{simple_total:.2f}"),
            ],
            title=f"Fig. 8 — two-job speedups on 4 GPUs (Rubick split "
            f"RoBERTa={split[0]}, T5={split[1]})",
        )
    )
    # Shape: Rubick's sensitivity-aware split is never worse than the even
    # split, and the winning split never starves T5 (the more GPU-hungry
    # model).  The paper's testbed showed a strictly uneven 3/1 optimum; on
    # our synthetic testbed the two jobs scale near-linearly at this size so
    # the even split can tie (recorded in EXPERIMENTS.md).
    assert total >= simple_total - 1e-9, (
        f"Rubick {total:.2f} vs simple {simple_total:.2f}"
    )
    assert split[1] >= split[0], "T5 should receive at least as many GPUs"
