"""Plan-evaluation engine: cold vs. warm latency and multi-round hit rate.

Not a paper artifact — this measures the memoization the unified engine adds
over re-enumerating and re-scoring the plan space on every query:

* **cold vs. warm** — the first ``best()``/``curve()`` for a (model, batch,
  shape) pays enumeration + a fused scoring pass; repeats are dictionary
  lookups;
* **multi-round schedule** — a synthetic sequence of scheduling rounds
  (slope probes at shifting GPU counts, CPU probes, curve reads — the access
  pattern Rubick's Alg. 1 generates) against the engine's hit/miss counters,
  including a mid-run online refit of one model to show per-model
  invalidation only re-evaluates that model.
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.analysis import format_table
from repro.cluster import PAPER_CLUSTER
from repro.models import GPT2, LLAMA2_7B, T5
from repro.perfmodel import ResourceShape
from repro.planeval import PlanEvalEngine
from repro.scheduler import PerfModelStore

MODELS = (GPT2, T5, LLAMA2_7B)
ROUNDS = 12


def _timed(fn) -> tuple[float, object]:
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


def _run_rounds(engine, rounds: int) -> None:
    """One Rubick-like access pattern: curve reads + GPU/CPU slope probes."""
    for rnd in range(rounds):
        for model in MODELS:
            batch = model.global_batch_size
            curve = engine.curve(model, batch)
            for gpus in range(1 + rnd % 4, 17, 4):
                curve.slope_up(gpus)
                shape = ResourceShape.packed(gpus, cpus=gpus * 4)
                engine.best(model, batch, shape)
                # CPU-slope probe: same shape-class, different CPU count.
                engine.best(model, batch, shape.with_cpus(shape.cpus + 1))


def _phase_stats(engine, before) -> dict[str, float]:
    after = engine.stats()
    hits = after.hits - before.hits
    misses = after.misses - before.misses
    return {
        "hits": hits,
        "misses": misses,
        "hit_rate": hits / max(hits + misses, 1),
        "evals": after.evals - before.evals,
        "invalidations": after.invalidations - before.invalidations,
    }


def _simulated_rounds(perf_store) -> dict[str, dict[str, float]]:
    """Warm-up, steady-state rounds, then rounds after one online refit.

    Runs against a private store copy — the refit below must not leak a
    version bump into the session-shared ``perf_store`` fixture.
    """
    store = PerfModelStore()
    for model in MODELS:
        store.add(perf_store.get(model))
    engine = PlanEvalEngine(PAPER_CLUSTER, perf_store=store)
    _run_rounds(engine, 4)  # cover all four probe patterns

    before = engine.stats()
    _run_rounds(engine, ROUNDS)
    steady = _phase_stats(engine, before)

    # Online refit of one model type: bump its store generation.
    store.add(store.get(T5))
    before = engine.stats()
    _run_rounds(engine, ROUNDS)
    refit = _phase_stats(engine, before)
    return {"steady": steady, "refit": refit}


def test_planeval_cache(benchmark, plan_engine, perf_store):
    engine = plan_engine
    shape = ResourceShape.packed(16, cpus=64)

    def experiment():
        out = {}
        cold_best, _ = _timed(
            lambda: engine.best(GPT2, GPT2.global_batch_size, shape)
        )
        warm_best, _ = _timed(
            lambda: engine.best(GPT2, GPT2.global_batch_size, shape)
        )
        cold_curve, _ = _timed(
            lambda: engine.curve(T5, T5.global_batch_size, max_gpus=32)
        )
        warm_curve, _ = _timed(
            lambda: engine.curve(T5, T5.global_batch_size, max_gpus=32)
        )
        out["cold_best_ms"] = cold_best * 1e3
        out["warm_best_ms"] = warm_best * 1e3
        out["cold_curve_ms"] = cold_curve * 1e3
        out["warm_curve_ms"] = warm_curve * 1e3
        out["rounds"] = _simulated_rounds(perf_store)
        return out

    out = run_once(benchmark, experiment)
    steady = out["rounds"]["steady"]
    refit = out["rounds"]["refit"]
    rows = [
        ("best(): cold (ms)", f"{out['cold_best_ms']:.3f}"),
        ("best(): warm (ms)", f"{out['warm_best_ms']:.3f}"),
        ("best(): speedup", f"{out['cold_best_ms'] / max(out['warm_best_ms'], 1e-9):.0f}x"),
        ("curve(): cold (ms)", f"{out['cold_curve_ms']:.3f}"),
        ("curve(): warm (ms)", f"{out['warm_curve_ms']:.3f}"),
        (f"steady state ({ROUNDS} rounds): lookups",
         f"{steady['hits'] + steady['misses']:.0f}"),
        ("steady state: hit rate", f"{steady['hit_rate']:.1%}"),
        ("steady state: plan evaluations", f"{steady['evals']:.0f}"),
        (f"after 1-model refit ({ROUNDS} rounds): hit rate",
         f"{refit['hit_rate']:.1%}"),
        ("after refit: plan evaluations", f"{refit['evals']:.0f}"),
        ("after refit: models invalidated", f"{refit['invalidations']:.0f}"),
    ]
    print()
    print(
        format_table(
            ["metric", "value"],
            rows,
            title="plan-evaluation engine cache behavior",
        )
    )

    # Warm lookups must be far cheaper than cold evaluation; a warmed-up
    # schedule must be fully cache-served; and an online refit of one model
    # must invalidate exactly that model — the other models' entries stay
    # warm, so the hit rate stays high instead of collapsing to cold.
    assert out["warm_best_ms"] < out["cold_best_ms"] / 10
    assert out["warm_curve_ms"] < out["cold_curve_ms"] / 10
    assert steady["hit_rate"] > 0.999
    assert steady["evals"] == 0
    assert refit["invalidations"] == 1
    assert refit["hit_rate"] > 0.6
