"""JSON (de)serialization of traces and simulation results.

Traces are the unit of experiment exchange (the paper ships trace variants,
not raw cluster logs); results are what EXPERIMENTS.md-style records are
built from.  The format is a stable, versioned, plain-JSON document.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any

from repro.plans.plan import ExecutionPlan, ZeroStage
from repro.scheduler.job import JobPriority
from repro.sim.metrics import Incident, JobRecord, SimulationResult
from repro.sim.trace import Trace, TraceJob

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------
def plan_to_dict(plan: ExecutionPlan) -> dict[str, Any]:
    return {
        "dp": plan.dp,
        "tp": plan.tp,
        "pp": plan.pp,
        "zero": plan.zero.name,
        "ga_steps": plan.ga_steps,
        "micro_batches": plan.micro_batches,
        "gc": plan.gc,
    }


def plan_from_dict(data: dict[str, Any]) -> ExecutionPlan:
    return ExecutionPlan(
        dp=int(data["dp"]),
        tp=int(data["tp"]),
        pp=int(data["pp"]),
        zero=ZeroStage[data["zero"]],
        ga_steps=int(data["ga_steps"]),
        micro_batches=int(data["micro_batches"]),
        gc=bool(data["gc"]),
    )


# ----------------------------------------------------------------------
# Traces
# ----------------------------------------------------------------------
def trace_job_to_dict(j: TraceJob) -> dict[str, Any]:
    """One trace job as a plain dict — the payload of both trace documents
    and the scheduling service's SUBMIT frames."""
    return {
        "job_id": j.job_id,
        "model_name": j.model_name,
        "submit_time": j.submit_time,
        "requested_gpus": j.requested_gpus,
        "requested_cpus": j.requested_cpus,
        "duration": j.duration,
        "global_batch": j.global_batch,
        "priority": j.priority.value,
        "tenant": j.tenant,
        "initial_plan": plan_to_dict(j.initial_plan),
    }


def trace_job_from_dict(j: dict[str, Any]) -> TraceJob:
    return TraceJob(
        job_id=j["job_id"],
        model_name=j["model_name"],
        submit_time=float(j["submit_time"]),
        requested_gpus=int(j["requested_gpus"]),
        requested_cpus=int(j.get("requested_cpus", 0)),
        duration=float(j["duration"]),
        global_batch=int(j["global_batch"]),
        priority=JobPriority(j["priority"]),
        tenant=j["tenant"],
        initial_plan=plan_from_dict(j["initial_plan"]),
    )


def trace_to_dict(trace: Trace) -> dict[str, Any]:
    return {
        "format_version": FORMAT_VERSION,
        "name": trace.name,
        "jobs": [trace_job_to_dict(j) for j in trace],
    }


def trace_from_dict(data: dict[str, Any]) -> Trace:
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported trace format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    jobs = tuple(trace_job_from_dict(j) for j in data["jobs"])
    return Trace(jobs=jobs, name=data.get("name", "trace"))


def save_trace(trace: Trace, path: str | Path) -> None:
    Path(path).write_text(
        json.dumps(trace_to_dict(trace), indent=1, allow_nan=False)
    )


def load_trace(path: str | Path) -> Trace:
    return trace_from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
def result_to_dict(result: SimulationResult) -> dict[str, Any]:
    if result.dropped_records:
        raise ValueError(
            f"cannot serialize a streaming result: {result.dropped_records} "
            f"records were dropped by the max_records="
            f"{result.max_records} retention bound, and a persisted "
            "document must carry every record (re-run without a record "
            "limit to serialize)"
        )
    doc = {
        "format_version": FORMAT_VERSION,
        "policy_name": result.policy_name,
        "trace_name": result.trace_name,
        "makespan": result.makespan,
        "profiling_seconds": result.profiling_seconds,
        "policy_invocations": result.policy_invocations,
        "policy_skips": result.policy_skips,
        "sim_rounds": result.sim_rounds,
        # Wall-clock fields (`policy_wall_seconds`, `sim_wall_seconds`) are
        # deliberately NOT serialized: persisted result documents must be a
        # deterministic function of the run spec (sweep workers are byte-
        # identical to serial execution).  Timing travels through the sweep
        # runner's in-memory perf channel and `sweep-meta.jsonl` instead.
        # NaN statistics (empty record sets) travel as null, like records'
        # sla_ratio: JSON has no NaN token.
        "summary": {
            k: None if isinstance(v, float) and math.isnan(v) else v
            for k, v in result.summary().items()
        },
        "records": [_record_to_dict(r) for r in result.records],
    }
    # Cluster-dynamics counters only appear on dynamic runs: static
    # documents stay byte-identical to pre-subsystem output.
    if result.cluster_events:
        doc["cluster_events"] = result.cluster_events
        doc["evictions"] = result.evictions
    # Incident stream: only degraded runs carry it (same sparse contract —
    # zero-fault documents are byte-identical to pre-harness output).
    if result.incidents:
        doc["incidents"] = [incident_to_dict(i) for i in result.incidents]
    return doc


def incident_to_dict(incident: Incident) -> dict[str, Any]:
    data: dict[str, Any] = {
        "kind": incident.kind,
        "round": incident.round,
        "time": incident.time,
    }
    if incident.job_ids:
        data["job_ids"] = list(incident.job_ids)
    if incident.error:
        data["error"] = incident.error
    if incident.message:
        data["message"] = incident.message
    if incident.traceback_digest:
        data["traceback_digest"] = incident.traceback_digest
    return data


def incident_from_dict(data: dict[str, Any]) -> Incident:
    return Incident(
        kind=str(data["kind"]),
        round=int(data["round"]),
        time=float(data["time"]),
        job_ids=tuple(data.get("job_ids", ())),
        error=str(data.get("error", "")),
        message=str(data.get("message", "")),
        traceback_digest=str(data.get("traceback_digest", "")),
    )


def _record_to_dict(r: JobRecord) -> dict[str, Any]:
    rec = {
        "job_id": r.job_id,
        "model_name": r.model_name,
        "priority": r.priority.value,
        "tenant": r.tenant,
        "submit_time": r.submit_time,
        "first_start": r.first_start,
        "finish_time": r.finish_time,
        "jct": r.jct,
        "queue_seconds": r.queue_seconds,
        "run_seconds": r.run_seconds,
        "reconfig_count": r.reconfig_count,
        "reconfig_seconds": r.reconfig_seconds,
        "reconfig_gpu_seconds": r.reconfig_gpu_seconds,
        "gpu_seconds": r.gpu_seconds,
        "requested_gpus": r.requested_gpus,
        # NaN marks "guarantee never evaluated" (never-ran jobs under
        # dynamics); JSON has no NaN, so it travels as null.
        "sla_ratio": None if math.isnan(r.sla_ratio) else r.sla_ratio,
    }
    # Sparse dynamics keys: only evicted jobs carry them (0 everywhere on
    # static runs, so those record documents are unchanged byte for byte).
    if r.restart_count:
        rec["restart_count"] = r.restart_count
    if r.lost_gpu_seconds:
        rec["lost_gpu_seconds"] = r.lost_gpu_seconds
    return rec


def result_from_dict(data: dict[str, Any]) -> SimulationResult:
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported result format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    records = [
        JobRecord(
            job_id=r["job_id"],
            model_name=r["model_name"],
            priority=JobPriority(r["priority"]),
            tenant=r["tenant"],
            submit_time=float(r["submit_time"]),
            first_start=r["first_start"],
            finish_time=float(r["finish_time"]),
            jct=float(r["jct"]),
            queue_seconds=float(r["queue_seconds"]),
            run_seconds=float(r["run_seconds"]),
            reconfig_count=int(r["reconfig_count"]),
            reconfig_seconds=float(r["reconfig_seconds"]),
            reconfig_gpu_seconds=float(r.get("reconfig_gpu_seconds", 0.0)),
            gpu_seconds=float(r["gpu_seconds"]),
            requested_gpus=int(r["requested_gpus"]),
            sla_ratio=(
                float("nan") if r["sla_ratio"] is None
                else float(r["sla_ratio"])
            ),
            # Cluster-dynamics fields (absent in legacy/static documents).
            restart_count=int(r.get("restart_count", 0)),
            lost_gpu_seconds=float(r.get("lost_gpu_seconds", 0.0)),
        )
        for r in data["records"]
    ]
    return SimulationResult(
        policy_name=data["policy_name"],
        trace_name=data["trace_name"],
        records=records,
        makespan=float(data["makespan"]),
        profiling_seconds=float(data["profiling_seconds"]),
        policy_invocations=int(data["policy_invocations"]),
        # Perf-trajectory counters (absent in pre-fast-path documents).
        policy_skips=int(data.get("policy_skips", 0)),
        sim_rounds=int(data.get("sim_rounds", 0)),
        # Cluster-dynamics counters (absent in legacy/static documents).
        cluster_events=int(data.get("cluster_events", 0)),
        evictions=int(data.get("evictions", 0)),
        # Incident stream (absent on healthy/legacy documents).
        incidents=[
            incident_from_dict(i) for i in data.get("incidents", ())
        ],
    )


def save_result(result: SimulationResult, path: str | Path) -> None:
    Path(path).write_text(
        json.dumps(result_to_dict(result), indent=1, allow_nan=False)
    )


def load_result(path: str | Path) -> SimulationResult:
    return result_from_dict(json.loads(Path(path).read_text()))
