"""Discrete-time cluster simulation: engine, traces, workloads, metrics."""

from repro.sim.engine import EngineConfig, Simulator, StepReport
from repro.sim.events import EventCalendar
from repro.sim.metrics import JobRecord, SimulationResult
from repro.sim.trace import Trace, TraceJob
from repro.sim.workload import (
    DEFAULT_GPU_MIX,
    MODEL_MIN_GPUS,
    WorkloadConfig,
    generate_trace,
    to_best_plan_trace,
    to_multi_tenant_trace,
    with_large_model_share,
)

__all__ = [
    "DEFAULT_GPU_MIX",
    "MODEL_MIN_GPUS",
    "EngineConfig",
    "EventCalendar",
    "JobRecord",
    "SimulationResult",
    "Simulator",
    "StepReport",
    "Trace",
    "TraceJob",
    "WorkloadConfig",
    "generate_trace",
    "to_best_plan_trace",
    "to_multi_tenant_trace",
    "with_large_model_share",
]
