"""Trace records: the jobs a simulation replays.

A trace job carries what the paper's sampled Microsoft trace carries — a
submission time, a GPU request and a duration — plus the model assignment and
initial execution plan the paper adds when constructing its Base/BP/MT trace
variants (§7.3).  The duration is *reference duration*: how long the job
would run on its requested resources with its initial plan; the simulator
converts it into a sample target using the testbed's measured throughput of
that configuration, mirroring the paper's duration→mini-batches translation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.models.catalog import get_model
from repro.models.specs import ModelSpec
from repro.plans.plan import ExecutionPlan
from repro.scheduler.job import JobPriority


@dataclass(frozen=True)
class TraceJob:
    """One job submission in a trace."""

    job_id: str
    model_name: str
    submit_time: float
    requested_gpus: int
    duration: float  # reference runtime on (requested GPUs, initial plan)
    initial_plan: ExecutionPlan
    global_batch: int
    requested_cpus: int = 0  # 0 -> derived from GPUs at simulation time
    priority: JobPriority = JobPriority.GUARANTEED
    tenant: str = "default"

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"{self.job_id}: duration must be positive")
        if self.requested_gpus < self.initial_plan.num_gpus:
            raise ValueError(
                f"{self.job_id}: plan needs {self.initial_plan.num_gpus} GPUs, "
                f"requested {self.requested_gpus}"
            )

    @property
    def model(self) -> ModelSpec:
        return get_model(self.model_name)

    @property
    def gpu_hours(self) -> float:
        return self.requested_gpus * self.duration / 3600.0


@dataclass(frozen=True)
class Trace:
    """An ordered collection of trace jobs."""

    jobs: tuple[TraceJob, ...] = field(default_factory=tuple)
    name: str = "trace"

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.jobs, key=lambda j: j.submit_time))
        object.__setattr__(self, "jobs", ordered)

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self):
        return iter(self.jobs)

    @property
    def span(self) -> float:
        """Time between the first and last submissions."""
        if not self.jobs:
            return 0.0
        return self.jobs[-1].submit_time - self.jobs[0].submit_time

    @property
    def total_gpu_hours(self) -> float:
        return sum(j.gpu_hours for j in self.jobs)

    def with_priorities(
        self, assign, name: str | None = None
    ) -> "Trace":
        """A copy with priorities/tenants reassigned by ``assign(job) -> (priority, tenant)``."""
        jobs = []
        for job in self.jobs:
            priority, tenant = assign(job)
            jobs.append(replace(job, priority=priority, tenant=tenant))
        return Trace(jobs=tuple(jobs), name=name or self.name)

    def scaled_load(self, factor: float, name: str | None = None) -> "Trace":
        """Compress (factor > 1) or stretch inter-arrival times to vary load.

        Used by the Fig. 10 load sweep: the same jobs arrive ``factor`` times
        as fast.
        """
        if factor <= 0:
            raise ValueError("load factor must be positive")
        jobs = [
            replace(job, submit_time=job.submit_time / factor)
            for job in self.jobs
        ]
        return Trace(jobs=tuple(jobs), name=name or f"{self.name}-x{factor:g}")
