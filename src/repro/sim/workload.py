"""Synthetic Philly-like workload generation (paper §7.3 trace construction).

The paper down-samples the busiest 12 hours of Microsoft's published GPU
cluster trace to 406 jobs and assigns each a random catalog model and
execution plan.  The original trace is not redistributable here, so this
module generates a statistically similar synthetic trace:

* arrivals from a pluggable process (``repro.workloads.arrivals``; default:
  the paper's uniform background + two submission peaks over 12 hours),
* the trace's characteristic small-job-dominated GPU-size mix,
* log-normal durations,
* random model assignment with the paper's feasibility fix-up ("in case the
  original GPU number is infeasible for the model, we use a feasible one and
  change the duration accordingly to keep the same GPU hours"),
* Base (random feasible plan), BP (best plan for the initial resources) and
  MT (two-tenant guaranteed/best-effort) variants.

Workload *composition* — which arrival process with which job mix under
which name — lives one layer up in ``repro.workloads.registry``; this
module is the generator those scenarios expand through.  The default
config's draw sequence is unchanged, so default-scenario traces are
byte-identical to the pre-subsystem generator (golden-tested in
``tests/test_workloads.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cluster.dynamics import NO_DYNAMICS_NAME, resolve_dynamics
from repro.cluster.topology import ClusterSpec, PAPER_CLUSTER
from repro.models.catalog import (
    LARGE_MODEL_NAMES,
    all_models,
    get_model,
    scaled_large_model_weights,
)
from repro.models.specs import ModelSpec
from repro.oracle.testbed import SyntheticTestbed
from repro.perfmodel.shape import ResourceShape
from repro.plans.enumerate import enumerate_plans
from repro.plans.plan import ExecutionPlan
from repro.rng import rng_for
from repro.scheduler.job import JobPriority
from repro.scheduler.sensitivity import default_plan_space
from repro.sim.trace import Trace, TraceJob
from repro.units import HOUR, MINUTE
from repro.workloads.arrivals import UNIFORM_PEAKS, ArrivalProcess
from repro.workloads.mix import DEFAULT_GPU_MIX, validate_gpu_mix

__all__ = [
    "DEFAULT_GPU_MIX",
    "MODEL_MIN_GPUS",
    "WorkloadConfig",
    "generate_trace",
    "to_best_plan_trace",
    "to_multi_tenant_trace",
    "with_large_model_share",
]

#: Floors keeping requested sizes sane for the largest models (the paper
#: adjusts infeasible GPU numbers per model; see module docstring).
MODEL_MIN_GPUS = {"llama2-7b": 2, "llama-30b": 8}


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the synthetic trace generator."""

    num_jobs: int = 160
    span: float = 12 * HOUR
    seed: int = 0
    cluster: ClusterSpec = PAPER_CLUSTER
    gpu_mix: tuple[tuple[int, float], ...] = DEFAULT_GPU_MIX
    duration_median: float = 35 * MINUTE
    duration_sigma: float = 1.2
    min_duration: float = 3 * MINUTE
    max_duration: float = 8 * HOUR
    #: Relative sampling weight per model name (uniform when empty).
    model_weights: dict[str, float] = field(default_factory=dict)
    #: "random" (Base trace) or "best" (BP trace) initial plans.
    plan_assignment: str = "random"
    name: str = "base"
    #: When jobs arrive (pluggable; the default reproduces the paper's
    #: uniform-background + two-peaks shape draw for draw).
    arrival: ArrivalProcess = UNIFORM_PEAKS
    #: Named cluster-dynamics profile the workload is meant to run under
    #: (``repro.cluster.dynamics``).  Carried metadata: trace generation
    #: never reads it — the simulator/runner expands it into events — so a
    #: config differing only here produces byte-identical traces.
    dynamics: str = NO_DYNAMICS_NAME

    def __post_init__(self) -> None:
        validate_gpu_mix(self.gpu_mix, self.cluster)
        if self.num_jobs < 0:
            raise ValueError(f"num_jobs must be >= 0, got {self.num_jobs}")
        if self.span <= 0:
            raise ValueError(f"span must be positive, got {self.span}")
        resolve_dynamics(self.dynamics)  # raises on unknown profiles


def _model_names(config: WorkloadConfig) -> tuple[list[str], list[float]]:
    names = [m.name for m in all_models()]
    weights = [config.model_weights.get(n, 1.0) for n in names]
    total = sum(weights)
    return names, [w / total for w in weights]


def _feasible_plans(
    model: ModelSpec,
    gpus: int,
    testbed: SyntheticTestbed,
) -> list[ExecutionPlan]:
    node_size = testbed.cluster.node.num_gpus
    shape = ResourceShape.packed(gpus, node_size=node_size, cpus=gpus * 4)
    plans = enumerate_plans(
        model,
        model.global_batch_size,
        gpus,
        min_gpus_per_node=shape.min_gpus_per_node,
        gpu_mem_budget=testbed.cluster.node.usable_gpu_mem,
        space=default_plan_space(model),
    )
    return [
        p
        for p in plans
        if testbed.is_feasible(model, p, shape, model.global_batch_size)
    ]


def _fix_gpu_request(
    model: ModelSpec, gpus: int, testbed: SyntheticTestbed
) -> tuple[int, list[ExecutionPlan]]:
    """Adjust an infeasible GPU request to the nearest feasible count.

    Memoized per testbed: the fix-up is a pure function of the testbed and
    the (model, requested-size) pair, and a datacenter trace draws the same
    few dozen pairs tens of thousands of times — without the memo each draw
    rebuilds an O(total_gpus) candidate list and enumerates plans for it,
    which dominates large-trace generation.  The memo lives on the testbed
    (dying with it) and the lookup consumes no RNG draws, so memoized
    generation is byte-identical to the direct path.
    """
    cache = getattr(testbed, "_fix_gpu_cache", None)
    if cache is None:
        cache = {}
        testbed._fix_gpu_cache = cache
    key = (model.name, gpus)
    hit = cache.get(key)
    if hit is None:
        hit = _fix_gpu_request_uncached(model, gpus, testbed)
        cache[key] = hit
    # Fresh list per call: `_pick_plan` callers own and may mutate it.
    return hit[0], list(hit[1])


def _fix_gpu_request_uncached(
    model: ModelSpec, gpus: int, testbed: SyntheticTestbed
) -> tuple[int, list[ExecutionPlan]]:
    max_gpus = testbed.cluster.total_gpus
    gpus = max(gpus, MODEL_MIN_GPUS.get(model.name, 1))
    gpus = min(gpus, max_gpus)  # a request can never exceed the cluster
    # Candidates by distance from the request: g, g+1, g-1, g+2, g-2, ...
    candidates = [gpus]
    for step in range(1, max_gpus):
        if gpus + step <= max_gpus:
            candidates.append(gpus + step)
        if gpus - step >= 1:
            candidates.append(gpus - step)
    for g in candidates:
        plans = _feasible_plans(model, g, testbed)
        if plans:
            return g, plans
    raise ValueError(f"no feasible GPU count for {model.name}")


def _pick_plan(
    plans: list[ExecutionPlan],
    model: ModelSpec,
    gpus: int,
    testbed: SyntheticTestbed,
    rng,
    assignment: str,
) -> ExecutionPlan:
    if assignment == "random":
        return plans[int(rng.integers(len(plans)))]
    if assignment == "best":
        node_size = testbed.cluster.node.num_gpus
        shape = ResourceShape.packed(gpus, node_size=node_size, cpus=gpus * 4)
        return max(
            plans,
            key=lambda p: testbed.true_throughput(
                model, p, shape, model.global_batch_size
            ),
        )
    raise ValueError(f"unknown plan assignment {assignment!r}")


def generate_trace(
    config: WorkloadConfig, testbed: SyntheticTestbed | None = None
) -> Trace:
    """Generate a synthetic trace per ``config`` (deterministic in the seed)."""
    testbed = testbed or SyntheticTestbed(config.cluster, seed=config.seed)
    rng = rng_for(config.seed, "workload", config.name, config.num_jobs)
    names, weights = _model_names(config)
    # Drop models the target cluster cannot even profile (e.g. LLaMA-30B on
    # a couple of nodes): a real operator would not submit them there.
    profilable = [_can_profile(testbed, name) for name in names]
    names = [n for n, ok in zip(names, profilable) if ok]
    weights = [w for w, ok in zip(weights, profilable) if ok]
    total = sum(weights)
    if total <= 0:
        raise ValueError("no profilable model has positive sampling weight")
    weights = [w / total for w in weights]
    arrivals = config.arrival.sample(rng, config.num_jobs, config.span)
    gpu_sizes = [g for g, _ in config.gpu_mix]
    gpu_weights = [w for _, w in config.gpu_mix]
    total_w = sum(gpu_weights)
    gpu_weights = [w / total_w for w in gpu_weights]

    jobs: list[TraceJob] = []
    for i, submit in enumerate(arrivals):
        model = get_model(names[int(rng.choice(len(names), p=weights))])
        raw_gpus = int(rng.choice(gpu_sizes, p=gpu_weights))
        gpus, plans = _fix_gpu_request(model, raw_gpus, testbed)
        duration = float(
            rng.lognormal(
                mean=_ln(config.duration_median), sigma=config.duration_sigma
            )
        )
        duration = min(max(duration, config.min_duration), config.max_duration)
        # Keep GPU-hours constant across the feasibility fix-up.
        if gpus != raw_gpus and gpus > 0:
            duration *= raw_gpus / gpus
            duration = min(max(duration, config.min_duration), config.max_duration)
        plan = _pick_plan(plans, model, gpus, testbed, rng, config.plan_assignment)
        jobs.append(
            TraceJob(
                job_id=f"job-{i:04d}",
                model_name=model.name,
                submit_time=submit,
                requested_gpus=gpus,
                duration=duration,
                initial_plan=plan,
                global_batch=model.global_batch_size,
            )
        )
    return Trace(jobs=tuple(jobs), name=config.name)


def _ln(x: float) -> float:
    import math

    return math.log(x)


def _can_profile(testbed: SyntheticTestbed, model_name: str) -> bool:
    """Whether the paper's 7-sample profiling set exists on this cluster."""
    from repro.errors import FittingError
    from repro.oracle.profiler import default_profile_configs

    model = get_model(model_name)
    try:
        default_profile_configs(testbed, model, model.global_batch_size)
        return True
    except FittingError:
        return False


# ----------------------------------------------------------------------
# Trace variants (paper §7.3)
# ----------------------------------------------------------------------
def to_best_plan_trace(
    trace: Trace, testbed: SyntheticTestbed, name: str = "bp"
) -> Trace:
    """BP variant: replace each job's plan with the best for its resources."""
    jobs = []
    for job in trace:
        model = job.model
        plans = _feasible_plans(model, job.requested_gpus, testbed)
        node_size = testbed.cluster.node.num_gpus
        shape = ResourceShape.packed(
            job.requested_gpus, node_size=node_size, cpus=job.requested_gpus * 4
        )
        best = max(
            plans,
            key=lambda p: testbed.true_throughput(
                model, p, shape, job.global_batch
            ),
        )
        jobs.append(replace(job, initial_plan=best))
    return Trace(jobs=tuple(jobs), name=name)


def to_multi_tenant_trace(
    trace: Trace,
    *,
    seed: int = 0,
    guaranteed_fraction: float = 0.5,
    name: str = "mt",
) -> Trace:
    """MT variant: Tenant-A (guaranteed, quota) vs Tenant-B (best-effort)."""
    rng = rng_for(seed, "mt-split", trace.name)

    def assign(job: TraceJob):
        if rng.random() < guaranteed_fraction:
            return JobPriority.GUARANTEED, "tenant-a"
        return JobPriority.BEST_EFFORT, "tenant-b"

    return trace.with_priorities(assign, name=name)


def with_large_model_share(
    config: WorkloadConfig, factor: float
) -> WorkloadConfig:
    """Scale the sampling weight of the large models (Fig. 11 sweep).

    Scales *on top of* any weights the config already carries (a scenario
    mix, say); with default uniform weights this reduces to the classic
    "everything 1.0, large models ``factor``" assignment.
    """
    weights = scaled_large_model_weights(1.0)
    weights.update(config.model_weights)
    for name in LARGE_MODEL_NAMES:
        weights[name] = weights[name] * factor
    return replace(
        config,
        model_weights=weights,
        name=f"{config.name}-large-x{factor:g}",
    )
