"""Event calendar for the simulator's hot loop.

The simulator's clock jumps to the next of {job arrival, earliest predicted
completion, periodic tick}.  The pre-PR loop re-derived that minimum from
scratch every round: an O(n²) ``pending.pop(0)`` arrival drain plus a full
scan over active jobs to recompute every predicted completion.  This module
replaces both with incremental state:

* **Arrivals** — the trace is already sorted by submit time, so a cursor
  into it replaces the list-head pops (satellite fix: the drain is now O(n)
  total instead of O(n²)).

* **Cluster events** — cluster-dynamics streams (node failures/recoveries,
  capacity scaling; see ``repro.cluster.dynamics``) drain through a second
  sorted cursor.  They are *hard* events like arrivals: the clock stops
  exactly at each one, and a round that applied an event never takes the
  steady-state policy short-circuit (the simulator treats it like an
  arrival when deciding whether the policy must run).

* **Streamed submissions** — a live session (``Simulator.step`` driven by
  the scheduling service) pushes arrivals and cluster events *after*
  construction via :meth:`push_arrival` / :meth:`push_cluster_event`.
  Pushed entries live in side min-heaps merged with the batch cursors on
  every query; when nothing was pushed the heaps stay empty and every code
  path is byte-identical to the batch-only calendar.  Ties between a batch
  entry and a pushed entry go to the batch entry, and pushed entries at the
  same time drain in push order, so a trace streamed one job at a time
  admits in exactly the order the batch replay would.

* **Predicted completions** — a lazily-invalidated min-heap of *anchored*
  completion events.  An event is pushed whenever a job starts, resumes from
  a reconfiguration pause, or changes throughput (allocation/plan changes),
  anchored at that moment: ``anchor + remaining/throughput``.  Allocation
  changes, preemptions, and finishes bump the job's epoch, which lazily
  voids any events still in the heap (classic calendar-queue invalidation —
  stale entries are discarded when they surface at the heap top).

The subtlety is floating point.  The pre-PR loop recomputes every running
job's completion at the *current* clock (``now + remaining/throughput``)
each round; in exact arithmetic that equals the anchored prediction, but
each round's ``samples_done`` accumulation rounds, so the two drift apart by
ulps.  Byte-identical replay therefore cannot use heap entries as event
times directly.  Instead the heap is used as a sound *early-out*: the
anchored prediction is within :data:`COMPLETION_SLACK` of the exact value
(drift is bounded by rounds × ulp(sim time) ≲ 1e-6 s, four orders below the
slack), so when the earliest live heap entry lies beyond the next tick or
arrival by more than the slack, no completion can win this round and the
O(active) recomputation is skipped.  Only rounds where a completion is
within 10 ms of the tick — i.e. rounds that actually end in or near a
completion — fall back to the exact pre-PR scan, keeping event times
bit-for-bit identical to the reference loop.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

from repro.scheduler.job import Job, JobStatus

_EPS = 1e-6

#: Safety margin (seconds) between an anchored completion hint and the exact
#: recomputed value.  Must exceed the worst-case accumulated float drift
#: (≈ rounds × ulp(sim time) ≈ 1e-6 s for 120 h sims) by a wide margin while
#: staying far below the tick interval so the early-out still fires.
COMPLETION_SLACK = 1e-2


class EventCalendar:
    """Incremental next-event state: arrival cursor + completion heap + tick.

    ``arrivals`` must be sorted by submit time (traces are).  Completion
    tracking follows the protocol: the simulator calls :meth:`track` whenever
    a job's progress anchor changes (start, restart, new allocation/plan/
    throughput) and :meth:`invalidate` when the job stops running (finish,
    preemption, failed launch).
    """

    def __init__(
        self,
        arrivals: Sequence,
        tick_interval: float,
        cluster_events: Sequence = (),
    ):
        self._arrivals = arrivals
        self._cursor = 0
        self.tick_interval = tick_interval
        #: Cluster-dynamics events (failures/recoveries/scaling), drained by
        #: a second sorted cursor.  They are hard events like arrivals: the
        #: clock must stop exactly at each one so the simulator applies it
        #: (and re-invokes the policy) at the right instant.
        self._cluster_events = sorted(cluster_events, key=lambda e: e.time)
        self._cluster_cursor = 0
        #: Live-session side channels: arrivals/cluster events pushed after
        #: construction (streaming submissions).  ``(time, push_seq, item)``
        #: heaps — the seq breaks time ties in push order and keeps the
        #: payloads out of tuple comparison.  Empty for batch runs.
        self._pushed_arrivals: list[tuple[float, int, object]] = []
        self._pushed_events: list[tuple[float, int, object]] = []
        self._push_seq = 0
        self._heap: list[tuple[float, int, str]] = []  # (time, epoch, job_id)
        self._epochs: dict[str, int] = {}
        #: Diagnostic counters, copied onto ``SimulationResult.calendar_*``
        #: at the end of a run and reported by the sim-speed benchmark.
        self.exact_scans = 0
        self.fast_rounds = 0

    # ------------------------------------------------------------------
    # Arrivals (sorted-cursor drain)
    # ------------------------------------------------------------------
    @property
    def has_arrivals(self) -> bool:
        return bool(self._pushed_arrivals) or self._cursor < len(self._arrivals)

    def push_arrival(self, tj) -> None:
        """Enqueue a streamed job submission (live sessions only)."""
        self._push_seq += 1
        heapq.heappush(
            self._pushed_arrivals, (tj.submit_time, self._push_seq, tj)
        )

    def _next_arrival_time(self) -> float | None:
        time: float | None = None
        if self._cursor < len(self._arrivals):
            time = self._arrivals[self._cursor].submit_time
        if self._pushed_arrivals:
            pushed = self._pushed_arrivals[0][0]
            if time is None or pushed < time:
                time = pushed
        return time

    def first_arrival_time(self, default: float = 0.0) -> float:
        time = self._next_arrival_time()
        return default if time is None else time

    def pop_arrivals(self, cutoff: float) -> Iterable:
        """Consume and yield every arrival with ``submit_time <= cutoff``.

        Merges the sorted batch cursor with pushed (streamed) arrivals in
        time order; the batch entry wins ties so a partially-streamed trace
        admits in batch order.
        """
        arrivals = self._arrivals
        pushed = self._pushed_arrivals
        while True:
            batch_t = (
                arrivals[self._cursor].submit_time
                if self._cursor < len(arrivals)
                else None
            )
            push_t = pushed[0][0] if pushed else None
            if (
                batch_t is not None
                and batch_t <= cutoff
                and (push_t is None or batch_t <= push_t)
            ):
                tj = arrivals[self._cursor]
                self._cursor += 1
                yield tj
            elif push_t is not None and push_t <= cutoff:
                yield heapq.heappop(pushed)[2]
            else:
                return

    # ------------------------------------------------------------------
    # Cluster-dynamics events (sorted-cursor drain, like arrivals)
    # ------------------------------------------------------------------
    @property
    def has_cluster_events(self) -> bool:
        return bool(self._pushed_events) or (
            self._cluster_cursor < len(self._cluster_events)
        )

    def push_cluster_event(self, event) -> None:
        """Enqueue a streamed cluster-dynamics event (live sessions only)."""
        self._push_seq += 1
        heapq.heappush(self._pushed_events, (event.time, self._push_seq, event))

    def _next_cluster_event_time(self) -> float | None:
        time: float | None = None
        if self._cluster_cursor < len(self._cluster_events):
            time = self._cluster_events[self._cluster_cursor].time
        if self._pushed_events:
            pushed = self._pushed_events[0][0]
            if time is None or pushed < time:
                time = pushed
        return time

    def pop_cluster_events(self, cutoff: float) -> Iterable:
        """Consume and yield every cluster event with ``time <= cutoff``."""
        events = self._cluster_events
        pushed = self._pushed_events
        while True:
            batch_t = (
                events[self._cluster_cursor].time
                if self._cluster_cursor < len(events)
                else None
            )
            push_t = pushed[0][0] if pushed else None
            if (
                batch_t is not None
                and batch_t <= cutoff
                and (push_t is None or batch_t <= push_t)
            ):
                event = events[self._cluster_cursor]
                self._cluster_cursor += 1
                yield event
            elif push_t is not None and push_t <= cutoff:
                yield heapq.heappop(pushed)[2]
            else:
                return

    # ------------------------------------------------------------------
    # Completion events (anchored hints, epoch-invalidated)
    # ------------------------------------------------------------------
    def track(self, job: Job, now: float) -> None:
        """(Re)anchor a job's predicted-completion event at time ``now``.

        Voids any previous event for the job; pushes a new one only if the
        job is actually progressing toward completion.
        """
        epoch = self._epochs.get(job.job_id, 0) + 1
        self._epochs[job.job_id] = epoch
        if not job.is_running:
            return
        start = now
        if job.status == JobStatus.PAUSED and job.pause_until > start:
            start = job.pause_until
        if job.throughput <= 0:
            # Degenerate but detectable: a job granted with its work already
            # (numerically) complete finishes regardless of throughput — the
            # completion scan checks `remaining <= eps`, not progress rate.
            # Without a hint the scale-mode loop (which is driven purely by
            # this heap) would hold its resources forever.
            if job.remaining_samples <= _EPS:
                heapq.heappush(self._heap, (start, epoch, job.job_id))
            return
        heapq.heappush(
            self._heap,
            (start + job.remaining_samples / job.throughput, epoch, job.job_id),
        )

    def invalidate(self, job_id: str) -> None:
        """Void the job's completion event (lazily removed from the heap)."""
        if job_id in self._epochs:
            self._epochs[job_id] += 1

    def pop_due_completions(self, cutoff: float) -> list[str]:
        """Consume and return the job ids of every live hint ``<= cutoff``.

        Scale-mode completion drain: under lazy advancement the anchored
        prediction *is* the completion event (no per-round accumulation
        drifts away from it), so due hints are popped and acted on directly
        instead of gating an exact rescan.  Each popped job's epoch advances
        (the hint is consumed); a caller that finds a popped job not quite
        finished — ulp-level residue after many re-anchorings — re-``track``s
        it, which pushes a fresh, later hint.
        """
        due: list[str] = []
        heap = self._heap
        while heap:
            time, epoch, job_id = heap[0]
            if self._epochs.get(job_id) != epoch:
                heapq.heappop(heap)
                continue
            if time > cutoff:
                break
            heapq.heappop(heap)
            self._epochs[job_id] = epoch + 1
            due.append(job_id)
        return due

    def _earliest_hint(self) -> float | None:
        heap = self._heap
        while heap:
            time, epoch, job_id = heap[0]
            if self._epochs.get(job_id) == epoch:
                return time
            heapq.heappop(heap)
        return None

    # ------------------------------------------------------------------
    # Next event
    # ------------------------------------------------------------------
    def next_event_time(self, now: float, active: Sequence[Job]) -> float:
        """Earliest of tick / next arrival / predicted completions.

        Bit-for-bit identical to the pre-PR full scan: the heap only decides
        *whether* completions can matter this round; whenever they can, the
        candidates are recomputed exactly as the reference loop did.
        """
        next_time = now + self.tick_interval
        arrival = self._next_arrival_time()
        if arrival is not None and arrival < next_time:
            next_time = arrival
        event_time = self._next_cluster_event_time()
        if event_time is not None and event_time < next_time:
            next_time = event_time
        hint = self._earliest_hint()
        if hint is None or hint > next_time + COMPLETION_SLACK:
            # No live completion event can precede the tick/arrival: anchored
            # hints sit within COMPLETION_SLACK of the exact values.
            self.fast_rounds += 1
            return max(next_time, now + _EPS)
        self.exact_scans += 1
        for job in active:
            if not job.is_running or job.throughput <= 0:
                continue
            start = max(
                now, job.pause_until if job.status == JobStatus.PAUSED else now
            )
            candidate = start + job.remaining_samples / job.throughput
            if candidate < next_time:
                next_time = candidate
        return max(next_time, now + _EPS)

    def next_event_time_lazy(
        self, now: float, policy_at: float | None = None
    ) -> float:
        """Scale-mode next event: hints are authoritative, no exact rescan.

        Under lazy advancement a running job's progress is a closed-form
        function of its anchor, so the anchored completion prediction *is*
        the event time — there is no per-round float accumulation to stay
        byte-identical with, and no O(active) scan.  ``policy_at`` is the
        engine's next scheduled policy round (a clock stop only while
        decisions are pending).
        """
        next_time = now + self.tick_interval
        arrival = self._next_arrival_time()
        if arrival is not None and arrival < next_time:
            next_time = arrival
        event_time = self._next_cluster_event_time()
        if event_time is not None and event_time < next_time:
            next_time = event_time
        if policy_at is not None and policy_at < next_time:
            next_time = policy_at
        hint = self._earliest_hint()
        if hint is not None and hint < next_time:
            next_time = hint
        self.fast_rounds += 1
        return max(next_time, now + _EPS)
