"""Simulation results and scheduling metrics (JCT, makespan, overheads)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.scheduler.job import Job, JobPriority
from repro.units import HOUR


@dataclass(frozen=True)
class JobRecord:
    """Final accounting of one completed job."""

    job_id: str
    model_name: str
    priority: JobPriority
    tenant: str
    submit_time: float
    first_start: float | None
    finish_time: float
    jct: float
    queue_seconds: float
    run_seconds: float
    reconfig_count: int
    reconfig_seconds: float
    gpu_seconds: float
    requested_gpus: int
    #: Achieved execution throughput / SLA-baseline throughput (>= 1 means
    #: the performance guarantee held; only meaningful for guaranteed jobs).
    sla_ratio: float
    #: Held GPU-seconds spent in reconfiguration pauses (accumulated by the
    #: simulator from the placement actually held during each pause).
    reconfig_gpu_seconds: float = 0.0
    #: Cluster-dynamics accounting (0 on legacy documents and static runs):
    #: evictions this job suffered, and the held GPU-seconds whose progress
    #: a failure destroyed (rolled back to the last checkpoint).
    restart_count: int = 0
    lost_gpu_seconds: float = 0.0

    @staticmethod
    def from_job(job: Job, gpu_seconds: float) -> "JobRecord":
        assert job.finish_time is not None
        # A job that never ran (or whose baseline configuration has no
        # measurable throughput) never exercised its guarantee: its SLA
        # ratio is NaN — "not evaluated" — not 0.0, which would read as an
        # infinitely-slow *violation* in `sla_violations`.
        if job.run_seconds > 0 and job.baseline_throughput > 0:
            exec_thr = job.spec.total_samples / job.run_seconds
            sla = exec_thr / job.baseline_throughput
        else:
            sla = float("nan")
        return JobRecord(
            job_id=job.job_id,
            model_name=job.model.name,
            priority=job.spec.priority,
            tenant=job.spec.tenant,
            submit_time=job.spec.submit_time,
            first_start=job.start_time,
            finish_time=job.finish_time,
            jct=job.finish_time - job.spec.submit_time,
            queue_seconds=job.queue_seconds,
            run_seconds=job.run_seconds,
            reconfig_count=job.reconfig_count,
            reconfig_seconds=job.reconfig_seconds,
            gpu_seconds=gpu_seconds,
            requested_gpus=job.spec.requested.gpus,
            sla_ratio=sla,
            reconfig_gpu_seconds=job.reconfig_gpu_seconds,
            restart_count=job.restart_count,
            lost_gpu_seconds=job.lost_gpu_seconds,
        )


@dataclass(frozen=True)
class Incident:
    """One contained fault the simulator absorbed instead of crashing.

    Every field is deterministic — kind, scheduling round, simulation
    time, the (bounded) job ids in flight, and a stable traceback digest
    (see :func:`repro.faults.traceback_digest`) — so incident streams are
    byte-identical across repeated runs of the same plan + seed.
    """

    kind: str
    round: int
    time: float
    job_ids: tuple[str, ...] = ()
    error: str = ""
    message: str = ""
    traceback_digest: str = ""


#: Numeric ``JobRecord`` fields mirrored into compact per-field columns when
#: record retention is bounded, so scalar aggregates (JCT stats, GPU-hours,
#: overhead fractions, makespan) still cover every completed job after the
#: full record objects are dropped.
_STREAMED_FIELDS = (
    "jct",
    "submit_time",
    "finish_time",
    "gpu_seconds",
    "reconfig_count",
    "reconfig_seconds",
    "reconfig_gpu_seconds",
    "restart_count",
    "lost_gpu_seconds",
)


@dataclass
class SimulationResult:
    """Everything a benchmark needs to print a paper-style results row."""

    policy_name: str
    trace_name: str
    records: list[JobRecord] = field(default_factory=list)
    #: Bound on retained :class:`JobRecord` objects (None = keep all, the
    #: default).  When set, :meth:`add_record` keeps only the first
    #: ``max_records`` full records and streams every record's numeric
    #: fields into compact columns instead, so week-long 100k-job runs
    #: don't hold 100k record objects; aggregate statistics remain exact
    #: over *all* completions.  Per-record slices (``by_tenant``,
    #: ``sla_violations``) and serialization raise once anything was
    #: dropped — they cannot be answered faithfully from a bounded sample.
    max_records: int | None = None
    #: Completed jobs whose record object was dropped by ``max_records``
    #: (their numeric fields still feed the aggregates).
    dropped_records: int = 0
    makespan: float = 0.0
    profiling_seconds: float = 0.0
    policy_invocations: int = 0
    policy_wall_seconds: float = 0.0
    #: Scheduling rounds the steady-state short-circuit resolved without
    #: invoking the policy (always 0 on the reference path).
    policy_skips: int = 0
    #: Event-loop rounds processed (arrivals/completions/ticks) and the
    #: wall-clock cost of the whole `Simulator.run` call — the simulator
    #: speed metrics behind ``BENCH_simspeed.json`` and the sweep footer.
    sim_rounds: int = 0
    sim_wall_seconds: float = 0.0
    #: Event-calendar diagnostics: rounds resolved from the completion-hint
    #: heap alone vs. rounds that fell back to the exact completion scan
    #: (how well `COMPLETION_SLACK` is tuned).  In-memory only.
    calendar_fast_rounds: int = 0
    calendar_exact_scans: int = 0
    #: Cluster-dynamics counters: events applied (failures, recoveries,
    #: scaling steps) and evictions they caused.  Both 0 on static runs —
    #: the serializer omits them then, keeping legacy documents byte-stable.
    cluster_events: int = 0
    evictions: int = 0
    #: Contained faults, in occurrence order (policy exceptions held for a
    #: round, perf-model fit retries, deadlock escalations, …).  Empty on
    #: healthy runs — the serializer omits the field then, keeping
    #: zero-fault result documents byte-stable.
    incidents: list[Incident] = field(default_factory=list)
    #: Streaming columns (see ``max_records``); populated lazily by
    #: :meth:`add_record` only on bounded results, so unbounded runs keep
    #: every aggregate reading ``records`` directly — byte-identical to the
    #: pre-streaming implementation.
    _columns: dict[str, list] | None = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # Record ingestion (streaming-aware)
    # ------------------------------------------------------------------
    def add_record(self, record: JobRecord) -> None:
        """Account one completed job, honoring the retention bound."""
        if self.max_records is not None:
            cols = self._columns
            if cols is None:
                cols = self._columns = {name: [] for name in _STREAMED_FIELDS}
            for name in _STREAMED_FIELDS:
                cols[name].append(getattr(record, name))
            if len(self.records) >= self.max_records:
                self.dropped_records += 1
                return
        self.records.append(record)

    def _values(self, name: str) -> list:
        """One numeric field across *all* completed jobs (incl. dropped)."""
        if self._columns is not None:
            return self._columns[name]
        return [getattr(r, name) for r in self.records]

    def _full_records(self) -> list[JobRecord]:
        """The record list, guarded against silently-partial slices."""
        if self.dropped_records:
            raise ValueError(
                f"{self.dropped_records} records were dropped by the "
                f"max_records={self.max_records} retention bound; "
                "per-record slices are unavailable on streaming results"
            )
        return self.records

    def span_bounds(self) -> tuple[float, float] | None:
        """(earliest submit, latest finish) over all completed jobs."""
        submits = self._values("submit_time")
        if not submits:
            return None
        return min(submits), max(self._values("finish_time"))

    # ------------------------------------------------------------------
    # JCT statistics
    # ------------------------------------------------------------------
    def _jcts(self, subset: list[JobRecord] | None = None) -> np.ndarray:
        """JCTs of a record subset; NaN-valued when the subset is empty.

        An empty subset (e.g. ``by_tenant`` of a tenant with no completions)
        must *not* read as an instant 0.0 JCT in scenario tables — NaN
        propagates through mean/percentile and renders as ``—``.
        """
        if subset is None:
            values = self._values("jct")
            if not values:
                return np.array([float("nan")])
            return np.array(values)
        if not subset:
            return np.array([float("nan")])
        return np.array([r.jct for r in subset])

    def avg_jct(self, subset: list[JobRecord] | None = None) -> float:
        return float(np.mean(self._jcts(subset)))

    def p99_jct(self, subset: list[JobRecord] | None = None) -> float:
        return float(np.percentile(self._jcts(subset), 99))

    def avg_jct_hours(self, subset: list[JobRecord] | None = None) -> float:
        return self.avg_jct(subset) / HOUR

    def p99_jct_hours(self, subset: list[JobRecord] | None = None) -> float:
        return self.p99_jct(subset) / HOUR

    @property
    def makespan_hours(self) -> float:
        return self.makespan / HOUR

    # ------------------------------------------------------------------
    # Slices
    # ------------------------------------------------------------------
    def by_priority(self, priority: JobPriority) -> list[JobRecord]:
        return [r for r in self._full_records() if r.priority == priority]

    def by_tenant(self, tenant: str) -> list[JobRecord]:
        return [r for r in self._full_records() if r.tenant == tenant]

    def by_model(self, model_name: str) -> list[JobRecord]:
        return [r for r in self._full_records() if r.model_name == model_name]

    # ------------------------------------------------------------------
    # Overheads (paper §7.3 "System overheads")
    # ------------------------------------------------------------------
    @property
    def avg_reconfig_seconds_per_job(self) -> float:
        values = self._values("reconfig_seconds")
        if not values:
            return 0.0
        return float(np.mean(values))

    @property
    def avg_reconfig_count(self) -> float:
        values = self._values("reconfig_count")
        if not values:
            return 0.0
        return float(np.mean(values))

    @property
    def total_gpu_hours(self) -> float:
        return sum(self._values("gpu_seconds")) / HOUR

    # ------------------------------------------------------------------
    # Cluster-dynamics accounting
    # ------------------------------------------------------------------
    @property
    def lost_gpu_hours(self) -> float:
        """GPU-hours cluster dynamics wasted.  0 on static runs.

        Held GPU-seconds whose progress an eviction rolled back to the
        last checkpoint, plus held GPU-seconds spent in restart-penalty
        pause tails (the penalty is dynamics waste, not reconfiguration
        overhead — it never pollutes ``reconfig_gpu_hour_fraction``).
        """
        return sum(self._values("lost_gpu_seconds")) / HOUR

    @property
    def goodput_gpu_hours(self) -> float:
        """GPU-hours whose outcome survived: ``total − lost``.

        The complement of :attr:`lost_gpu_hours`, so the two always sum to
        :attr:`total_gpu_hours`.  Reconfiguration-pause overhead is *not*
        subtracted here — it is tracked separately by
        :attr:`reconfig_gpu_hour_fraction` (held-GPU pause accounting).
        """
        return self.total_gpu_hours - self.lost_gpu_hours

    @property
    def total_restarts(self) -> int:
        """Evictions across completed jobs (== ``evictions`` once all finish)."""
        return sum(self._values("restart_count"))

    @property
    def reconfig_gpu_hour_fraction(self) -> float:
        """Fraction of GPU-hours spent in reconfiguration pauses.

        Weighted by the GPUs each job actually *held* during its pauses —
        under Rubick held ≠ requested, so weighing by the request would
        misstate the overhead of exactly the policy being measured.
        """
        recon = sum(self._values("reconfig_gpu_seconds")) / HOUR
        total = self.total_gpu_hours
        return recon / total if total > 0 else 0.0

    # ------------------------------------------------------------------
    # Simulator speed (perf trajectory, BENCH_simspeed.json)
    # ------------------------------------------------------------------
    @property
    def events_per_second(self) -> float:
        """Simulated event-loop rounds per wall-clock second."""
        if self.sim_wall_seconds <= 0:
            return 0.0
        return self.sim_rounds / self.sim_wall_seconds

    @property
    def policy_ms_per_invocation(self) -> float:
        """Average scheduler wall time per actual policy invocation (ms)."""
        if self.policy_invocations <= 0:
            return 0.0
        return 1000.0 * self.policy_wall_seconds / self.policy_invocations

    # ------------------------------------------------------------------
    # SLA
    # ------------------------------------------------------------------
    def sla_violations(self, threshold: float = 0.95) -> list[JobRecord]:
        """Guaranteed jobs whose achieved performance fell below threshold×baseline.

        Jobs whose guarantee was never exercised (``sla_ratio`` is NaN —
        they never ran before the cutoff, or their baseline had no
        measurable throughput) are not violations: ``NaN < threshold`` is
        False, so the comparison excludes them by construction.
        """
        return [
            r
            for r in self.by_priority(JobPriority.GUARANTEED)
            if r.sla_ratio < threshold
        ]

    def summary(self) -> dict[str, float]:
        out = {
            "jobs": float(len(self.records) + self.dropped_records),
            "avg_jct_h": self.avg_jct_hours(),
            "p99_jct_h": self.p99_jct_hours(),
            "makespan_h": self.makespan_hours,
            "avg_reconfigs": self.avg_reconfig_count,
            "reconfig_gpu_frac": self.reconfig_gpu_hour_fraction,
        }
        # Dynamics keys appear only on dynamic runs so static result
        # documents stay byte-identical to pre-subsystem ones.
        if self.cluster_events:
            out["cluster_events"] = float(self.cluster_events)
            out["evictions"] = float(self.evictions)
            out["goodput_gpu_h"] = self.goodput_gpu_hours
            out["lost_gpu_h"] = self.lost_gpu_hours
        # Likewise the incident count: only degraded runs grow the key.
        if self.incidents:
            out["incidents"] = float(len(self.incidents))
        return out
