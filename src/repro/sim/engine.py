"""Discrete-time cluster simulator (paper §7.4).

The simulator replays a trace against a scheduling policy.  Ground-truth job
progress comes from the synthetic testbed; the policy sees only fitted
performance models — the same information asymmetry the real system has.

Mechanics:

* **Event-driven core** — the clock jumps to the next of {job arrival,
  earliest predicted completion, periodic tick}; between events every running
  job advances by ``throughput × dt``.  The next event comes from an
  incremental :class:`~repro.sim.events.EventCalendar`; steady-state
  tick-only rounds skip the policy invocation entirely when the previous
  decision is provably still the fixed point (see ``fast_path`` and
  :meth:`~repro.scheduler.interfaces.SchedulerPolicy.steady_state` —
  DESIGN.md items 26–28).
* **Reconfiguration cost** — whenever a running job's GPU placement or plan
  changes (including preemption + later restart), the job pauses for the
  checkpoint-resume delta (default 78 s, the paper's measured mean).
  CPU/host-memory-only changes are free (cgroup updates, no restart).
* **SLA accounting** — each guaranteed job's achieved execution throughput is
  compared against the ground-truth throughput of its requested resources +
  initial plan.
* **Cluster dynamics** — an optional :class:`~repro.cluster.dynamics`
  event stream (node failures/recoveries, capacity scaling) drains through
  the same calendar.  A failure evicts every job on the node: progress
  since the last checkpoint is destroyed (charged to ``lost_gpu_seconds``),
  the victim re-queues through ``_requeue`` and pays the reconfiguration
  delta plus a one-shot ``restart_penalty`` when it restarts.  A dynamics
  round never takes the steady-state short-circuit.
"""

from __future__ import annotations

import time as _time
from typing import Sequence

from repro.cluster.dynamics import (
    NODE_FAIL,
    NODE_RECOVER,
    SCALE_UP,
    SCALE_DOWN,
    ClusterEvent,
)
from repro.cluster.placement import Placement
from repro.cluster.resources import ResourceVector
from repro.cluster.state import Cluster
from repro.cluster.topology import ClusterSpec
from repro.errors import OutOfMemoryError, SimulationError
from repro.oracle.profiler import build_perf_model, profiling_cost_seconds
from repro.oracle.testbed import SyntheticTestbed
from repro.perfmodel.shape import ResourceShape
from repro.planeval import PlanEvalEngine, TestbedScorer
from repro.plans.memory import estimate_memory
from repro.scheduler.interfaces import (
    Allocation,
    PerfModelStore,
    SchedulerPolicy,
    SchedulingContext,
    Tenant,
)
from repro.scheduler.job import Job, JobSpec, JobStatus
from repro.sim.events import EventCalendar
from repro.sim.metrics import JobRecord, SimulationResult
from repro.sim.trace import Trace

_EPS = 1e-6


class Simulator:
    """Replays a trace under one scheduling policy."""

    def __init__(
        self,
        cluster_spec: ClusterSpec,
        policy: SchedulerPolicy,
        *,
        testbed: SyntheticTestbed | None = None,
        perf_store: PerfModelStore | None = None,
        seed: int = 0,
        reconfig_delta: float = 78.0,
        tick_interval: float = 300.0,
        default_cpus_per_gpu: int = 4,
        max_sim_time: float = 120 * 3600.0,
        online_refitter=None,
        fast_path: bool = True,
        restart_penalty: float = 300.0,
        checkpoint_interval: float = 1800.0,
    ):
        self.cluster_spec = cluster_spec
        self.policy = policy
        self.testbed = testbed or SyntheticTestbed(cluster_spec, seed=seed)
        self.perf_store = perf_store or PerfModelStore()
        self.seed = seed
        self.reconfig_delta = reconfig_delta
        self.tick_interval = tick_interval
        self.default_cpus_per_gpu = default_cpus_per_gpu
        self.max_sim_time = max_sim_time
        #: Optional :class:`repro.perfmodel.online.OnlineRefitter` — when
        #: set, every realized-throughput observation can trigger a refit
        #: (paper §4.3 continuous model fitting).
        self.online_refitter = online_refitter
        #: When True (default), the run loop uses diff-based allocation
        #: apply and the steady-state policy short-circuit.  ``False`` keeps
        #: the pre-PR reference behavior — same results (the golden suite in
        #: ``tests/test_sim_fastpath.py`` asserts byte-identity), used as
        #: the baseline by ``benchmarks/bench_sim_speed.py``.
        self.fast_path = fast_path
        #: Extra pause an *evicted* job pays on top of the reconfiguration
        #: delta when it restarts (checkpoint refetch + re-scheduling a
        #: failure costs more than a planned checkpoint-resume).  Only
        #: cluster-dynamics evictions charge it; preemptions do not.
        self.restart_penalty = restart_penalty
        #: Periodic checkpoint cadence (run-seconds).  Checkpoints bound
        #: the progress a node failure can destroy: an eviction rolls the
        #: job back to its last checkpoint, and the GPU-seconds that
        #: produced the destroyed progress are accounted as lost.
        self.checkpoint_interval = checkpoint_interval
        #: Memoized ground-truth scorer shared between the plan engine and
        #: the per-round configuration re-scoring in :meth:`_apply`.
        self.scorer = TestbedScorer(self.testbed)
        #: Ground-truth plan evaluation (intrinsic-work accounting): the
        #: same memoized engine the policies use, but scored against the
        #: testbed instead of fitted models.  Ground truth never refits, so
        #: its memo entries live for the whole simulation.
        self.plan_engine = PlanEvalEngine(
            cluster_spec,
            scorer=self.scorer,
            cpus_per_gpu=default_cpus_per_gpu,
        )

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _profile_models(self, trace: Trace) -> float:
        """Fit a performance model per model type (paper phase ①)."""
        count = 0
        for tj in trace:
            if not self.perf_store.has(tj.model):
                perf, _ = build_perf_model(
                    self.testbed, tj.model, tj.model.global_batch_size,
                    seed=self.seed,
                )
                self.perf_store.add(perf)
                if self.online_refitter is not None:
                    from repro.oracle.profiler import (
                        collect_samples,
                        default_profile_configs,
                    )

                    configs = default_profile_configs(
                        self.testbed, tj.model, tj.model.global_batch_size
                    )
                    self.online_refitter.register_profiling_samples(
                        tj.model,
                        collect_samples(
                            self.testbed, tj.model,
                            tj.model.global_batch_size, configs,
                        ),
                    )
                count += 1
        return count * profiling_cost_seconds()

    def _best_throughput(self, model, gpus: int, global_batch: int) -> float:
        """Ground-truth best-plan throughput at a packed allocation (memoized).

        The duration→samples translation uses the *model's* throughput at
        the requested GPU count (paper §7.3) — i.e. the best feasible plan —
        so a job's work is intrinsic, independent of how (un)lucky its
        randomly assigned initial plan is.  The testbed-backed plan engine
        owns enumeration, feasibility filtering, and memoization; its
        scorer's is_feasible check covers GPU *and* host memory, so the
        engine-level host filter is off.
        """
        shape = ResourceShape.packed(
            gpus,
            node_size=self.cluster_spec.node.num_gpus,
            cpus=gpus * self.default_cpus_per_gpu,
        )
        best = self.plan_engine.best(
            model, global_batch, shape, check_host_mem=False
        )
        return best.throughput if best is not None else 0.0

    def _make_job(self, tj) -> Job:
        model = tj.model
        cpus = tj.requested_cpus or tj.requested_gpus * self.default_cpus_per_gpu
        shape = ResourceShape.packed(
            tj.requested_gpus,
            node_size=self.cluster_spec.node.num_gpus,
            cpus=cpus,
        )
        # SLA baseline: what the user's own configuration would achieve.
        baseline = self.scorer.true_throughput(
            model, tj.initial_plan, shape, tj.global_batch
        )
        best_thr = self._best_throughput(model, tj.requested_gpus, tj.global_batch)
        host_mem = estimate_memory(
            model, tj.initial_plan, tj.global_batch
        ).host_total
        spec = JobSpec(
            job_id=tj.job_id,
            model=model,
            global_batch=tj.global_batch,
            requested=ResourceVector(
                gpus=tj.requested_gpus, cpus=cpus, host_mem=host_mem
            ),
            initial_plan=tj.initial_plan,
            total_samples=tj.duration * max(best_thr, baseline),
            submit_time=tj.submit_time,
            priority=tj.priority,
            tenant=tj.tenant,
        )
        job = Job(spec=spec)
        job.baseline_throughput = baseline
        job.last_queue_enter = tj.submit_time
        return job

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(
        self,
        trace: Trace,
        *,
        tenants: dict[str, Tenant] | None = None,
        cluster_events: Sequence[ClusterEvent] | None = None,
    ) -> SimulationResult:
        wall_start = _time.perf_counter()
        profiling_seconds = self._profile_models(trace)
        cluster = Cluster(self.cluster_spec)
        calendar = EventCalendar(
            trace.jobs, self.tick_interval,
            cluster_events=tuple(cluster_events or ()),
        )
        #: Insertion order is arrival order — the iteration order the
        #: pre-PR `[j for j in jobs.values() if j.is_active]` rebuild had.
        active: dict[str, Job] = {}
        gpu_seconds: dict[str, float] = {}
        result = SimulationResult(
            policy_name=self.policy.name,
            trace_name=trace.name,
            profiling_seconds=profiling_seconds,
        )
        ctx = SchedulingContext(
            cluster_spec=self.cluster_spec,
            perf_store=self.perf_store,
            tenants=tenants or {},
            reconfig_delta=self.reconfig_delta,
        )

        fast = self.fast_path
        #: True while the last policy decision is provably still the fixed
        #: point — set only on rounds the policy actually ran (see below).
        steady = False
        now = calendar.first_arrival_time(default=0.0)
        idle_rounds = 0
        while True:
            # --- admit arrivals at `now` -------------------------------
            arrived = False
            for tj in calendar.pop_arrivals(now + _EPS):
                job = self._make_job(tj)
                active[job.job_id] = job
                gpu_seconds[job.job_id] = 0.0
                arrived = True

            # --- detect completions ------------------------------------
            finished = False
            finished_now = [
                j
                for j in active.values()
                if j.is_running and j.remaining_samples <= _EPS
            ]
            for job in finished_now:
                job.status = JobStatus.FINISHED
                job.finish_time = now
                job.throughput = 0.0
                cluster.release(job.job_id)
                calendar.invalidate(job.job_id)
                del active[job.job_id]
                result.records.append(
                    JobRecord.from_job(job, gpu_seconds[job.job_id])
                )
                finished = True

            # --- apply cluster dynamics at `now` ------------------------
            # After completions (a job finishing exactly at a failure
            # instant keeps its completion), before the policy: victims
            # are already re-queued with cleared placements when the
            # scheduler next runs — which it must, so a dynamics round is
            # treated like an arrival by the steady-state gating below.
            cluster_changed = False
            for event in calendar.pop_cluster_events(now + _EPS):
                self._apply_cluster_event(
                    event, cluster, active, now, calendar, result
                )
                result.cluster_events += 1
                cluster_changed = True

            # --- termination --------------------------------------------
            if not active and not calendar.has_arrivals:
                break
            if now > self.max_sim_time:
                raise SimulationError(
                    f"simulation exceeded max_sim_time={self.max_sim_time}; "
                    f"{len(active)} jobs still active"
                )

            # --- run the policy -----------------------------------------
            result.sim_rounds += 1
            active_list = list(active.values())
            if steady and not arrived and not finished and not cluster_changed:
                # Steady-state short-circuit: nothing the policy's decision
                # depends on has changed since it last ran, so invoking it
                # would reproduce the current allocation verbatim.
                result.policy_skips += 1
                idle_rounds = 0  # steady state implies running jobs
            else:
                ctx.now = now
                wall = _time.perf_counter()
                allocations = self.policy.schedule(active_list, cluster, ctx)
                result.policy_wall_seconds += _time.perf_counter() - wall
                result.policy_invocations += 1
                changed = self._apply(
                    allocations, active_list, cluster, now, calendar,
                    diff=fast,
                )
                # The next rounds may skip the policy only if: the fast path
                # is on; models cannot refit (refit observations happen in
                # `_apply`, so skipping would starve the refitter); this
                # round was a no-op fixed point; no job is mid-pause (the
                # resume is a time-driven status flip the policy observes);
                # and the policy declares itself time-insensitive in this
                # state (`steady_state` — e.g. Rubick keeps running while a
                # queued best-effort job could cross the starvation
                # threshold or a reconfiguration gate is still closed).
                steady = (
                    fast
                    and self.online_refitter is None
                    and not changed
                    and any(j.is_running for j in active_list)
                    and all(
                        j.status != JobStatus.PAUSED for j in active_list
                    )
                    and self.policy.steady_state(active_list, ctx)
                )

                # Deadlock guard: nothing running, nothing arriving, queue
                # stuck.  Pending cluster events disarm it: a recovery or
                # scale-up may be exactly what unblocks the queue.
                if (
                    not any(j.is_running for j in active_list)
                    and not calendar.has_arrivals
                    and not calendar.has_cluster_events
                ):
                    idle_rounds += 1
                    if idle_rounds > 3:
                        stuck = ", ".join(j.job_id for j in active_list[:5])
                        raise SimulationError(
                            f"policy {self.policy.name!r} cannot place "
                            f"remaining jobs ({stuck} ...) on an empty "
                            f"cluster"
                        )
                else:
                    idle_rounds = 0

            # --- choose the next event time ------------------------------
            next_time = calendar.next_event_time(now, active_list)
            self._advance(now, next_time, active_list, gpu_seconds)
            now = next_time

        result.makespan = (
            max((r.finish_time for r in result.records), default=0.0)
            - min((r.submit_time for r in result.records), default=0.0)
        )
        result.calendar_fast_rounds = calendar.fast_rounds
        result.calendar_exact_scans = calendar.exact_scans
        result.sim_wall_seconds = _time.perf_counter() - wall_start
        return result

    # ------------------------------------------------------------------
    # Applying policy decisions
    # ------------------------------------------------------------------
    def _apply(
        self,
        allocations: dict[str, Allocation],
        active: list[Job],
        cluster: Cluster,
        now: float,
        calendar: EventCalendar | None = None,
        *,
        diff: bool = True,
    ) -> bool:
        """Reconcile the policy's allocation map with the cluster.

        In ``diff`` mode (the fast path) jobs whose placement *and* plan are
        unchanged are skipped entirely: no cluster release/re-apply churn, no
        ground-truth re-query (their throughput is a pure function of the
        unchanged configuration), no feasibility re-check.  Only the changed
        subset is released (all of it first, then applied in order, so moves
        between jobs never transiently over-commit a node).  The reference
        mode (``diff=False``) keeps the pre-PR release-everything/re-apply-
        everything behavior.  Both modes are byte-identical for maps that fit
        cluster capacity — which every in-tree policy guarantees — and the
        golden suite pins that equivalence.

        Returns True if any job's state changed (placement, plan, status or
        throughput) — the fixed-point signal the steady-state short-circuit
        keys on.
        """
        job_changed: dict[str, bool] = {}
        previous: dict[str, tuple] = {}
        for job in active:
            alloc = allocations.get(job.job_id)
            if diff:
                unchanged = (
                    alloc is not None
                    and job.is_running
                    and alloc.plan == job.plan
                    and alloc.placement.shares == job.placement.shares
                )
                if unchanged:
                    job_changed[job.job_id] = False
                    continue
                previous[job.job_id] = (job.placement, job.plan)
            else:
                previous[job.job_id] = (
                    cluster.placement_of(job.job_id), job.plan
                )
            cluster.release(job.job_id)
            job_changed[job.job_id] = True

        changed_any = False
        for job in active:
            if not job_changed[job.job_id]:
                # Unchanged running job: the refitter still observes its
                # realized throughput each round, exactly as the pre-PR loop
                # did (the value comes from the memo, not a re-derivation).
                if self.online_refitter is not None:
                    self._observe(
                        job,
                        job.plan,
                        ResourceShape.from_placement(job.placement),
                        job.throughput,
                    )
                continue
            alloc = allocations.get(job.job_id)
            prev_placement, prev_plan = previous[job.job_id]
            if alloc is None or alloc.placement.is_empty:
                if job.is_running:  # preemption
                    self._requeue(job, now)
                    if calendar is not None:
                        calendar.invalidate(job.job_id)
                    changed_any = True
                continue
            changed_any = True
            try:
                cluster.apply(job.job_id, alloc.placement)
            except Exception:
                # Policy produced an over-committed placement; treat as a
                # failed launch and leave the job queued.
                cluster.release(job.job_id)
                if job.is_running:
                    self._requeue(job, now)
                    if calendar is not None:
                        calendar.invalidate(job.job_id)
                continue
            shape = ResourceShape.from_placement(alloc.placement)
            try:
                thr = self.scorer.true_throughput(
                    job.model, alloc.plan, shape, job.spec.global_batch
                )
            except OutOfMemoryError:
                cluster.release(job.job_id)
                if job.is_running:
                    self._requeue(job, now)
                    if calendar is not None:
                        calendar.invalidate(job.job_id)
                continue

            if self.online_refitter is not None:
                self._observe(job, alloc.plan, shape, thr)

            gpus_changed = self._gpu_shares(alloc.placement) != self._gpu_shares(
                prev_placement
            )
            plan_changed = alloc.plan != prev_plan
            was_queued = job.status == JobStatus.QUEUED
            job.placement = alloc.placement
            job.plan = alloc.plan
            job.throughput = thr
            if was_queued:
                job.queue_seconds += now - job.last_queue_enter
                if job.start_time is None:
                    job.start_time = now
                    job.status = JobStatus.RUNNING
                else:
                    # Restart from checkpoint after preemption/eviction; an
                    # evicted job additionally pays the one-shot restart
                    # penalty (zero outside cluster dynamics).  The penalty
                    # tail of the pause is charged to lost GPU-seconds, not
                    # the reconfiguration metrics — a policy that merely
                    # suffered more evictions must not read as
                    # reconfiguring more aggressively.
                    job.status = JobStatus.PAUSED
                    job.pause_until = (
                        now + self.reconfig_delta + job.pending_restart_penalty
                    )
                    job.penalty_pause_from = (
                        now + self.reconfig_delta
                        if job.pending_restart_penalty > 0
                        else float("inf")
                    )
                    job.pending_restart_penalty = 0.0
                    job.reconfig_count += 1
            elif gpus_changed or plan_changed:
                job.status = JobStatus.PAUSED
                job.pause_until = now + self.reconfig_delta
                job.penalty_pause_from = float("inf")
                job.reconfig_count += 1
            # CPU/host-only changes keep the job running untouched.
            if was_queued or gpus_changed or plan_changed:
                # Configuration changes go through checkpoint-resume: the
                # progress saved here is what a later eviction falls back to.
                job.samples_at_checkpoint = job.samples_done
                job.run_seconds_at_checkpoint = job.run_seconds
            if calendar is not None:
                calendar.track(job, now)
        return changed_any

    # ------------------------------------------------------------------
    # Cluster dynamics
    # ------------------------------------------------------------------
    def _apply_cluster_event(
        self,
        event: ClusterEvent,
        cluster: Cluster,
        active: dict[str, Job],
        now: float,
        calendar: EventCalendar,
        result: SimulationResult,
    ) -> None:
        """Apply one failure/recovery/scaling event and evict its victims."""
        victims: list[str] = []
        if event.kind == NODE_FAIL:
            victims = cluster.remove_node(event.node_id)
        elif event.kind == NODE_RECOVER:
            cluster.add_node(event.node_id)
        elif event.kind == SCALE_UP:
            for _ in range(event.count):
                cluster.add_node()
        elif event.kind == SCALE_DOWN:
            # Decommission the highest-id up nodes (deterministic choice);
            # removing more nodes than are up drains what exists.
            up_ids = sorted(
                (n.node_id for n in cluster.nodes if n.up), reverse=True
            )
            for node_id in up_ids[: event.count]:
                victims.extend(cluster.remove_node(node_id))
        for job_id in victims:
            job = active.get(job_id)
            if job is not None:
                self._evict(job, now, calendar, result)

    def _evict(
        self,
        job: Job,
        now: float,
        calendar: EventCalendar,
        result: SimulationResult,
    ) -> None:
        """Eviction: roll back to the last checkpoint and re-queue.

        The cluster side has already been released by ``remove_node``.
        Progress since the last checkpoint is destroyed — there was no
        chance to checkpoint before the node vanished — and the held
        GPU-seconds that produced it are charged to ``lost_gpu_seconds``
        (progress and configuration are constant since the checkpoint, so
        ``destroyed / throughput × held`` is exact).  The job restarts
        later through the normal ``_apply`` path, paying the
        reconfiguration delta plus the one-shot restart penalty.
        """
        held = job.placement.total.gpus
        if job.throughput > 0:
            destroyed = job.samples_done - job.samples_at_checkpoint
            if destroyed > 0:
                job.lost_gpu_seconds += held * destroyed / job.throughput
                job.samples_done = job.samples_at_checkpoint
        job.restart_count += 1
        job.pending_restart_penalty = self.restart_penalty
        result.evictions += 1
        self._requeue(job, now)
        calendar.invalidate(job.job_id)

    def _observe(self, job: Job, plan, shape, thr: float) -> None:
        """Feed one realized-throughput observation to the online refitter."""
        perf = self.perf_store.get(job.model)
        updated = self.online_refitter.observe(
            perf, job.model, plan, shape, job.spec.global_batch, thr
        )
        if updated is not perf:
            self.perf_store.add(updated)

    @staticmethod
    def _requeue(job: Job, now: float) -> None:
        """Send a running job back to the queue with no residual allocation.

        Used for both preemption and failed launches; the cluster side has
        already been released, so the job must not keep a stale placement.
        """
        job.status = JobStatus.QUEUED
        job.placement = Placement.empty()
        job.plan = None
        job.throughput = 0.0
        job.last_queue_enter = now

    @staticmethod
    def _gpu_shares(placement) -> dict[int, int]:
        return {
            node_id: share.gpus
            for node_id, share in placement.shares.items()
            if share.gpus > 0
        }

    # ------------------------------------------------------------------
    # Time stepping
    # ------------------------------------------------------------------
    def _advance(
        self,
        t_from: float,
        t_to: float,
        active: list[Job],
        gpu_seconds: dict[str, float],
    ) -> None:
        dt = t_to - t_from
        if dt <= 0:
            return
        for job in active:
            if job.status == JobStatus.QUEUED:
                continue
            held_gpus = job.placement.total.gpus
            gpu_seconds[job.job_id] += held_gpus * dt
            if job.status == JobStatus.PAUSED:
                pause_end = min(job.pause_until, t_to)
                paused_dt = max(pause_end - t_from, 0.0)
                # The checkpoint-resume part of the pause is reconfiguration
                # overhead; the restart-penalty tail (evictions only —
                # `penalty_pause_from` is +inf otherwise) is dynamics waste
                # and accrues to lost GPU-seconds instead.
                reconfig_dt = max(
                    min(pause_end, job.penalty_pause_from) - t_from, 0.0
                )
                job.reconfig_seconds += reconfig_dt
                # Overhead accounting is in *held* GPU-seconds: Rubick's whole
                # point is that held != requested (§7.3).
                job.reconfig_gpu_seconds += held_gpus * reconfig_dt
                penalty_dt = paused_dt - reconfig_dt
                if penalty_dt > 0.0:
                    job.lost_gpu_seconds += held_gpus * penalty_dt
                if t_to + _EPS >= job.pause_until:
                    job.status = JobStatus.RUNNING
                active_dt = max(t_to - max(t_from, job.pause_until), 0.0)
            else:
                active_dt = dt
            if active_dt > 0 and job.throughput > 0:
                job.samples_done += job.throughput * active_dt
                job.run_seconds += active_dt
                if (
                    job.run_seconds - job.run_seconds_at_checkpoint
                    >= self.checkpoint_interval
                ):
                    job.samples_at_checkpoint = job.samples_done
                    job.run_seconds_at_checkpoint = job.run_seconds
