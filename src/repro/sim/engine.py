"""Discrete-time cluster simulator (paper §7.4).

The simulator replays a trace against a scheduling policy.  Ground-truth job
progress comes from the synthetic testbed; the policy sees only fitted
performance models — the same information asymmetry the real system has.

Mechanics:

* **Event-driven core** — the clock jumps to the next of {job arrival,
  earliest predicted completion, periodic tick}; between events every running
  job advances by ``throughput × dt``.  The next event comes from an
  incremental :class:`~repro.sim.events.EventCalendar`; steady-state
  tick-only rounds skip the policy invocation entirely when the previous
  decision is provably still the fixed point (see ``fast_path`` and
  :meth:`~repro.scheduler.interfaces.SchedulerPolicy.steady_state` —
  DESIGN.md items 26–28).
* **Reconfiguration cost** — whenever a running job's GPU placement or plan
  changes (including preemption + later restart), the job pauses for the
  checkpoint-resume delta (default 78 s, the paper's measured mean).
  CPU/host-memory-only changes are free (cgroup updates, no restart).
* **SLA accounting** — each guaranteed job's achieved execution throughput is
  compared against the ground-truth throughput of its requested resources +
  initial plan.
* **Cluster dynamics** — an optional :class:`~repro.cluster.dynamics`
  event stream (node failures/recoveries, capacity scaling) drains through
  the same calendar.  A failure evicts every job on the node: progress
  since the last checkpoint is destroyed (charged to ``lost_gpu_seconds``),
  the victim re-queues through ``_requeue`` and pays the reconfiguration
  delta plus a one-shot ``restart_penalty`` when it restarts.  A dynamics
  round never takes the steady-state short-circuit.
"""

from __future__ import annotations

import time as _time
import warnings
from dataclasses import dataclass, field, fields, replace
from typing import Sequence

from repro.cluster.dynamics import (
    NODE_FAIL,
    NODE_RECOVER,
    SCALE_UP,
    SCALE_DOWN,
    ClusterEvent,
)
from repro.cluster.placement import Placement
from repro.cluster.resources import ResourceVector
from repro.cluster.state import Cluster
from repro.cluster.topology import ClusterSpec
from repro.errors import (
    FittingError,
    InjectedFault,
    OutOfMemoryError,
    SimulationError,
)
from repro.faults.injector import incident_payload
from repro.oracle.profiler import build_perf_model, profiling_cost_seconds
from repro.oracle.testbed import SyntheticTestbed
from repro.perfmodel.shape import ResourceShape
from repro.planeval import PlanEvalEngine, TestbedScorer
from repro.plans.memory import estimate_memory
from repro.scheduler.interfaces import (
    Allocation,
    PerfModelStore,
    SchedulerPolicy,
    SchedulingContext,
    Tenant,
)
from repro.scheduler.job import Job, JobSpec, JobStatus
from repro.sim.events import EventCalendar
from repro.sim.metrics import Incident, JobRecord, SimulationResult
from repro.sim.trace import Trace

_EPS = 1e-6

#: Internal `_step_*` outcomes.  ``_CONTINUE`` — the step budget (`until` /
#: one round) ran out with events still pending; ``_IDLE`` — a live session
#: drained every queued event and is waiting for submissions; ``_DONE`` —
#: the run terminated (stream closed, nothing active, nothing pending).
_CONTINUE = "continue"
_IDLE = "idle"
_DONE = "done"


@dataclass(frozen=True)
class EngineConfig:
    """Frozen simulator knobs (everything that is plain data, not a live
    collaborator — testbeds, perf stores, refitters and injectors stay
    constructor arguments).  Field semantics are documented on the matching
    :class:`Simulator` attributes."""

    seed: int = 0
    reconfig_delta: float = 78.0
    tick_interval: float = 300.0
    default_cpus_per_gpu: int = 4
    max_sim_time: float = 120 * 3600.0
    fast_path: bool = True
    restart_penalty: float = 300.0
    checkpoint_interval: float = 1800.0
    scale_mode: bool = False
    result_record_limit: int | None = None
    max_policy_incidents: int = 3


_CONFIG_FIELDS = frozenset(f.name for f in fields(EngineConfig))


@dataclass
class StepReport:
    """What one :meth:`Simulator.step` slice did.

    ``wall_seconds`` / ``events_per_second`` are wall-clock perf channels
    for live observability (the service's stdout log); like the result's
    run-level twins they are never persisted and never enter METRICS
    payloads (DESIGN.md item 28).
    """

    now: float
    rounds: int
    admitted: int
    completed: int
    incidents: int
    done: bool
    idle: bool
    wall_seconds: float

    @property
    def events_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.rounds / self.wall_seconds


@dataclass
class _LiveRun:
    """Mutable state of one simulation session (between ``step()`` calls).

    The step functions load these into locals on entry and store them back
    on exit (``run()`` makes exactly one ``step`` call, so the hot loop
    keeps its local-variable speed).
    """

    result: SimulationResult
    cluster: Cluster
    calendar: EventCalendar
    active: dict[str, Job]
    gpu_seconds: dict[str, float]
    ctx: SchedulingContext
    #: True while the session accepts live submissions: the run pauses
    #: (status "idle") instead of terminating when the queue drains.
    stream_open: bool = False
    now: float = 0.0
    seq: int = 0
    started: bool = False
    finished: bool = False
    #: Job ids pushed but not yet admitted (duplicate-submission guard —
    #: admitted ids are tracked by ``gpu_seconds``).
    pending_ids: set[str] = field(default_factory=set)
    # Default-loop state.
    steady: bool = False
    idle_rounds: int = 0
    policy_failures: int = 0
    # Scale-loop state.
    next_policy_at: float = 0.0
    dirty: bool = False


class Simulator:
    """Replays a trace under one scheduling policy."""

    def __init__(
        self,
        cluster_spec: ClusterSpec,
        policy: SchedulerPolicy,
        *,
        config: EngineConfig | None = None,
        testbed: SyntheticTestbed | None = None,
        perf_store: PerfModelStore | None = None,
        online_refitter=None,
        injector=None,
        **legacy,
    ):
        if legacy:
            unknown = sorted(set(legacy) - _CONFIG_FIELDS)
            if unknown:
                raise TypeError(
                    "Simulator() got unexpected keyword arguments: "
                    + ", ".join(unknown)
                )
            warnings.warn(
                "passing engine knobs as Simulator keyword arguments "
                f"({', '.join(sorted(legacy))}) is deprecated and will be "
                "removed next release; pass config=EngineConfig(...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            config = replace(config or EngineConfig(), **legacy)
        config = config or EngineConfig()
        #: The frozen knob set this simulator was built with.  The mirrored
        #: scalar attributes below stay the supported read surface inside
        #: the engine (and remain writable for tests that poke them).
        self.config = config
        self.cluster_spec = cluster_spec
        self.policy = policy
        self.testbed = testbed or SyntheticTestbed(cluster_spec, seed=config.seed)
        self.perf_store = perf_store or PerfModelStore()
        self.seed = config.seed
        self.reconfig_delta = config.reconfig_delta
        self.tick_interval = config.tick_interval
        self.default_cpus_per_gpu = config.default_cpus_per_gpu
        self.max_sim_time = config.max_sim_time
        #: Optional :class:`repro.perfmodel.online.OnlineRefitter` — when
        #: set, every realized-throughput observation can trigger a refit
        #: (paper §4.3 continuous model fitting).
        self.online_refitter = online_refitter
        #: When True (default), the run loop uses diff-based allocation
        #: apply and the steady-state policy short-circuit.  ``False`` keeps
        #: the pre-PR reference behavior — same results (the golden suite in
        #: ``tests/test_sim_fastpath.py`` asserts byte-identity), used as
        #: the baseline by ``benchmarks/bench_sim_speed.py``.
        self.fast_path = config.fast_path
        #: Extra pause an *evicted* job pays on top of the reconfiguration
        #: delta when it restarts (checkpoint refetch + re-scheduling a
        #: failure costs more than a planned checkpoint-resume).  Only
        #: cluster-dynamics evictions charge it; preemptions do not.
        self.restart_penalty = config.restart_penalty
        #: Periodic checkpoint cadence (run-seconds).  Checkpoints bound
        #: the progress a node failure can destroy: an eviction rolls the
        #: job back to its last checkpoint, and the GPU-seconds that
        #: produced the destroyed progress are accounted as lost.
        self.checkpoint_interval = config.checkpoint_interval
        #: Datacenter-scale loop (opt-in).  Trades the default loop's exact
        #: semantics for per-round costs independent of the active-job
        #: count: job progress is *lazily materialized* from per-job anchors
        #: (no per-round advancement sweep), completions are driven directly
        #: off the calendar's hint heap (anchored predictions are exact
        #: under lazy advancement), and the policy runs in Gavel/Shockwave-
        #: style *rounds* — at most once per ``tick_interval``, batching all
        #: arrivals/completions/evictions since the last round — instead of
        #: at every event.  Results are therefore NOT byte-identical to the
        #: default path (jobs can queue up to a round longer); correctness
        #: is asserted via invariants and uncontended-trace equivalence
        #: (``tests/test_scale_mode.py``), per the large-scale testing
        #: policy in DESIGN.md.
        self.scale_mode = config.scale_mode
        #: Retention bound forwarded to ``SimulationResult.max_records``
        #: (None keeps every record — the default).  Large runs set it so a
        #: 100k-job result is a bounded sample plus exact streamed
        #: aggregates rather than 100k live record objects.
        self.result_record_limit = config.result_record_limit
        #: Optional :class:`repro.faults.FaultInjector` arming the
        #: simulator-level seams (``policy-round``, ``perfmodel-fit``).
        #: ``None`` — the default — is the zero-fault path, byte-identical
        #: to the pre-harness simulator.
        self.injector = injector
        #: A policy exception mid-round is *contained*: placements hold for
        #: the round and a structured :class:`Incident` lands on the
        #: result.  After this many CONSECUTIVE policy failures the run
        #: escalates to a hard :class:`SimulationError` (carrying the
        #: incident stream) — a policy that never recovers must not spin
        #: forever.
        self.max_policy_incidents = config.max_policy_incidents
        #: Memoized ground-truth scorer shared between the plan engine and
        #: the per-round configuration re-scoring in :meth:`_apply`.
        self.scorer = TestbedScorer(self.testbed)
        #: Ground-truth plan evaluation (intrinsic-work accounting): the
        #: same memoized engine the policies use, but scored against the
        #: testbed instead of fitted models.  Ground truth never refits, so
        #: its memo entries live for the whole simulation.
        self.plan_engine = PlanEvalEngine(
            cluster_spec,
            scorer=self.scorer,
            cpus_per_gpu=config.default_cpus_per_gpu,
        )
        #: ``(model, batch, gpus, cpus, plan) -> (baseline, best, host_mem)``
        #: memo for :meth:`_make_job` — all ground-truth-derived, so entries
        #: never go stale (ground truth never refits).
        self._intrinsics_cache: dict[tuple, tuple[float, float, float]] = {}  # repro-lint: disable=RPL005 -- ground-truth intrinsics: TestbedScorer never refits (DESIGN.md 32-34)
        #: Current session (:meth:`start` / :meth:`step`); ``run`` is a
        #: start + one full step, so batch and live share one state machine.
        self._live: _LiveRun | None = None

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _record_incident(
        self,
        result: SimulationResult,
        kind: str,
        now: float,
        *,
        job_ids: tuple[str, ...] = (),
        exc: BaseException | None = None,
        message: str = "",
    ) -> None:
        """Append one structured, deterministic incident to the result."""
        payload = incident_payload(exc) if exc is not None else {}
        result.incidents.append(
            Incident(
                kind=kind,
                round=result.sim_rounds,
                time=now,
                job_ids=job_ids,
                error=payload.get("error", ""),
                message=message or payload.get("message", ""),
                traceback_digest=payload.get("traceback_digest", ""),
            )
        )

    def _fit_model(self, tj):
        """One model fit, with the ``perfmodel-fit`` seam armed."""
        if self.injector is not None:
            self.injector.check("perfmodel-fit")
        perf, _ = build_perf_model(
            self.testbed, tj.model, tj.model.global_batch_size,
            seed=self.seed,
        )
        return perf

    def _profile_models(
        self, trace: Trace, result: SimulationResult | None = None
    ) -> float:
        """Fit a performance model per model type (paper phase ①).

        A fit failure (a real :class:`FittingError` or the injected
        ``perfmodel-fit`` seam) is retried once with an incident recorded;
        a second failure for the same model escalates to a hard
        :class:`SimulationError` carrying the incident stream.
        """
        count = 0
        for tj in trace:
            count += self._ensure_model(tj, result)
        return count * profiling_cost_seconds()

    def _ensure_model(
        self, tj, result: SimulationResult | None = None
    ) -> int:
        """Fit the job's model unless already fitted; returns fits done (0/1).

        Shared by batch profiling (phase ①, every model up front) and live
        submission (:meth:`submit` fits on first sight of a model).  The
        testbed derives a fresh RNG stream per measurement from the seed, so
        *when* a model is fitted cannot change the fit — only first-sight
        order matters, and a streamed trace preserves it.
        """
        if self.perf_store.has(tj.model):
            return 0
        try:
            perf = self._fit_model(tj)
        except (FittingError, InjectedFault) as exc:
            if result is not None:
                self._record_incident(
                    result, "perfmodel-fit-error", 0.0, exc=exc
                )
            try:
                perf = self._fit_model(tj)
            except (FittingError, InjectedFault) as exc2:
                incidents = (
                    tuple(result.incidents) if result is not None else ()
                )
                raise SimulationError(
                    f"performance-model fitting failed twice for "
                    f"model {tj.model.name!r}: {exc2}",
                    incidents=incidents,
                ) from exc2
        self.perf_store.add(perf)
        if self.online_refitter is not None:
            from repro.oracle.profiler import (
                collect_samples,
                default_profile_configs,
            )

            configs = default_profile_configs(
                self.testbed, tj.model, tj.model.global_batch_size
            )
            self.online_refitter.register_profiling_samples(
                tj.model,
                collect_samples(
                    self.testbed, tj.model,
                    tj.model.global_batch_size, configs,
                ),
            )
        return 1

    def _best_throughput(self, model, gpus: int, global_batch: int) -> float:
        """Ground-truth best-plan throughput at a packed allocation (memoized).

        The duration→samples translation uses the *model's* throughput at
        the requested GPU count (paper §7.3) — i.e. the best feasible plan —
        so a job's work is intrinsic, independent of how (un)lucky its
        randomly assigned initial plan is.  The testbed-backed plan engine
        owns enumeration, feasibility filtering, and memoization; its
        scorer's is_feasible check covers GPU *and* host memory, so the
        engine-level host filter is off.
        """
        shape = ResourceShape.packed(
            gpus,
            node_size=self.cluster_spec.node.num_gpus,
            cpus=gpus * self.default_cpus_per_gpu,
        )
        best = self.plan_engine.best(
            model, global_batch, shape, check_host_mem=False
        )
        return best.throughput if best is not None else 0.0

    def _make_job(self, tj) -> Job:
        model = tj.model
        cpus = tj.requested_cpus or tj.requested_gpus * self.default_cpus_per_gpu
        # The derived intrinsics (SLA baseline, best-plan throughput, host
        # memory demand) are pure functions of the request key: they are
        # scored against ground truth, which never refits.  Traces draw
        # from a small set of model/batch/plan/gpu combinations, so at
        # datacenter scale (50k arrivals) almost every job is a memo hit.
        key = (model.name, tj.global_batch, tj.requested_gpus, cpus, tj.initial_plan)
        hit = self._intrinsics_cache.get(key)
        if hit is not None:
            baseline, best_thr, host_mem = hit
        else:
            shape = ResourceShape.packed(
                tj.requested_gpus,
                node_size=self.cluster_spec.node.num_gpus,
                cpus=cpus,
            )
            # SLA baseline: what the user's own configuration would achieve.
            baseline = self.scorer.true_throughput(
                model, tj.initial_plan, shape, tj.global_batch
            )
            best_thr = self._best_throughput(
                model, tj.requested_gpus, tj.global_batch
            )
            host_mem = estimate_memory(
                model, tj.initial_plan, tj.global_batch
            ).host_total
            self._intrinsics_cache[key] = (baseline, best_thr, host_mem)
        spec = JobSpec(
            job_id=tj.job_id,
            model=model,
            global_batch=tj.global_batch,
            requested=ResourceVector(
                gpus=tj.requested_gpus, cpus=cpus, host_mem=host_mem
            ),
            initial_plan=tj.initial_plan,
            total_samples=tj.duration * max(best_thr, baseline),
            submit_time=tj.submit_time,
            priority=tj.priority,
            tenant=tj.tenant,
        )
        job = Job(spec=spec)
        job.baseline_throughput = baseline
        job.last_queue_enter = tj.submit_time
        return job

    # ------------------------------------------------------------------
    # Session lifecycle: start / step / submit / drain — run() is the
    # batch wrapper (start + one unbounded step)
    # ------------------------------------------------------------------
    def start(
        self,
        trace: Trace | None = None,
        *,
        tenants: dict[str, Tenant] | None = None,
        cluster_events: Sequence[ClusterEvent] | None = None,
        stream: bool = False,
    ) -> None:
        """Open a simulation session.

        ``stream=True`` keeps the submission stream open: the session
        pauses (``StepReport.idle``) instead of terminating when the queue
        drains, and accepts :meth:`submit` / :meth:`post_cluster_event`
        between :meth:`step` slices until :meth:`drain` closes the stream.
        ``run()`` is exactly ``start(trace)`` + ``step(until=inf)``.
        """
        wall_start = _time.perf_counter()  # repro-lint: disable=RPL001 -- wall-clock perf channel, never persisted (DESIGN.md 28)
        if trace is None:
            trace = Trace(jobs=(), name="live")
        # The result exists before profiling so fit failures can land
        # incidents on it (and escalation can carry them).
        result = SimulationResult(
            policy_name=self.policy.name,
            trace_name=trace.name,
            max_records=self.result_record_limit,
        )
        result.profiling_seconds = self._profile_models(trace, result)
        self._live = _LiveRun(
            result=result,
            cluster=Cluster(self.cluster_spec),
            calendar=EventCalendar(
                trace.jobs, self.tick_interval,
                cluster_events=tuple(cluster_events or ()),
            ),
            # Insertion order is arrival order — the iteration order the
            # pre-PR `[j for j in jobs.values() if j.is_active]` rebuild had.
            active={},
            gpu_seconds={},
            ctx=SchedulingContext(
                cluster_spec=self.cluster_spec,
                perf_store=self.perf_store,
                tenants=tenants or {},
                reconfig_delta=self.reconfig_delta,
            ),
            stream_open=stream,
        )
        result.sim_wall_seconds += _time.perf_counter() - wall_start  # repro-lint: disable=RPL001 -- wall-clock perf channel, never persisted (DESIGN.md 28)

    def _require_live(self) -> _LiveRun:
        if self._live is None:
            raise SimulationError("no open session: call start() or run() first")
        return self._live

    def result(self) -> SimulationResult:
        """The open session's (possibly still-accumulating) result."""
        return self._require_live().result

    def submit(self, tj, *, clamp: bool = False):
        """Stream one :class:`~repro.sim.trace.TraceJob` into the session.

        Deterministic contract (virtual-clock service mode): submissions
        must not be behind the session clock — a frame that arrives late is
        an error, because admitting it would depend on delivery timing.
        Real-time mode passes ``clamp=True`` instead, re-stamping the job
        to "now" (wall-clock arrival order *is* the semantics there).
        Returns the (possibly re-stamped) trace job.
        """
        st = self._require_live()
        if not st.stream_open:
            raise SimulationError(
                "submission stream is closed; open the session with "
                "start(stream=True)"
            )
        if tj.job_id in st.pending_ids or tj.job_id in st.gpu_seconds:
            raise ValueError(f"duplicate job id {tj.job_id!r}")
        if st.started and tj.submit_time < st.now - _EPS:
            if not clamp:
                raise ValueError(
                    f"job {tj.job_id!r} submit_time {tj.submit_time:.3f} is "
                    f"behind the session clock {st.now:.3f} "
                    "(pass clamp=True to admit it now)"
                )
            tj = replace(tj, submit_time=st.now)
        st.result.profiling_seconds += (
            self._ensure_model(tj, st.result) * profiling_cost_seconds()
        )
        st.pending_ids.add(tj.job_id)
        st.calendar.push_arrival(tj)
        return tj

    def post_cluster_event(
        self, event: ClusterEvent, *, clamp: bool = False
    ) -> ClusterEvent:
        """Stream one cluster-dynamics event into the session."""
        st = self._require_live()
        if not st.stream_open:
            raise SimulationError(
                "submission stream is closed; open the session with "
                "start(stream=True)"
            )
        if st.started and event.time < st.now - _EPS:
            if not clamp:
                raise ValueError(
                    f"cluster event time {event.time:.3f} is behind the "
                    f"session clock {st.now:.3f} (pass clamp=True)"
                )
            event = replace(event, time=st.now)
        st.calendar.push_cluster_event(event)
        return event

    def drain(self, trace_name: str | None = None) -> None:
        """Close the submission stream: the next unbounded step terminates.

        ``trace_name`` lets a service client stamp the result with the name
        of the trace it replayed (matching what a batch run would record).
        """
        st = self._require_live()
        st.stream_open = False
        if trace_name is not None:
            st.result.trace_name = trace_name

    def status(self) -> dict:
        """Cheap structured snapshot of the session (service STATUS frame)."""
        st = self._live
        if st is None:
            return {"state": "no-session"}
        result = st.result
        running = sum(1 for j in st.active.values() if j.is_running)
        if st.finished:
            state = "finished"
        elif st.stream_open:
            state = "streaming"
        else:
            state = "draining"
        return {
            "state": state,
            "now": st.now,
            "active": len(st.active),
            "running": running,
            "queued": len(st.active) - running,
            "admitted": st.seq,
            "completed": len(result.records) + result.dropped_records,
            "rounds": result.sim_rounds,
            "policy": result.policy_name,
        }

    def step(self, until: float | None = None) -> StepReport:
        """Advance the session and report what the slice did.

        ``until=None`` executes exactly one event round; a finite ``until``
        keeps processing rounds while ``now < until`` (the clock only stops
        on event boundaries, and an event pushed at exactly ``until`` is
        processed by the *next* slice — which is what makes
        push-then-``step(until=t)`` replay byte-identical to a batch run);
        ``float("inf")`` runs to completion (or to idle, while the stream
        is open).
        """
        st = self._require_live()
        wall_start = _time.perf_counter()  # repro-lint: disable=RPL001 -- wall-clock perf channel, never persisted (DESIGN.md 28)
        result = st.result
        if st.finished:
            return StepReport(
                now=st.now, rounds=0, admitted=0, completed=0, incidents=0,
                done=True, idle=False, wall_seconds=0.0,
            )
        rounds0 = result.sim_rounds
        admitted0 = st.seq
        completed0 = len(result.records) + result.dropped_records
        incidents0 = len(result.incidents)
        if not st.started:
            if (
                st.stream_open
                and not st.active
                and not st.calendar.has_arrivals
            ):
                # Nothing submitted yet: keep the clock unstarted so the
                # first real submission fast-forwards to its arrival time
                # exactly like a batch run fast-forwards to the trace head.
                return StepReport(
                    now=st.now, rounds=0, admitted=0, completed=0,
                    incidents=0, done=False, idle=True,
                    wall_seconds=_time.perf_counter() - wall_start,  # repro-lint: disable=RPL001 -- wall-clock perf channel, never persisted (DESIGN.md 28)
                )
            st.now = st.calendar.first_arrival_time(default=st.now)
            st.next_policy_at = st.now
            st.started = True
        if self.scale_mode:
            outcome = self._step_scale(st, until)
        else:
            outcome = self._step_default(st, until)
        if outcome is _DONE:
            self._finalize(st)
        wall = _time.perf_counter() - wall_start  # repro-lint: disable=RPL001 -- wall-clock perf channel, never persisted (DESIGN.md 28)
        result.sim_wall_seconds += wall
        return StepReport(
            now=st.now,
            rounds=result.sim_rounds - rounds0,
            admitted=st.seq - admitted0,
            completed=len(result.records) + result.dropped_records - completed0,
            incidents=len(result.incidents) - incidents0,
            done=st.finished,
            idle=outcome is _IDLE,
            wall_seconds=wall,
        )

    def _finalize(self, st: _LiveRun) -> None:
        result = st.result
        bounds = result.span_bounds()
        result.makespan = bounds[1] - bounds[0] if bounds else 0.0
        result.calendar_fast_rounds = st.calendar.fast_rounds
        result.calendar_exact_scans = st.calendar.exact_scans
        st.finished = True

    def run(
        self,
        trace: Trace,
        *,
        tenants: dict[str, Tenant] | None = None,
        cluster_events: Sequence[ClusterEvent] | None = None,
    ) -> SimulationResult:
        """Replay a whole trace to completion.

        A thin wrapper over the incremental core: opens a session with the
        stream already closed and takes one unbounded step.  Byte-identical
        to the pre-step() monolithic loop (golden-tested across all
        policies, both loop modes, dynamics on/off).
        """
        self.start(trace, tenants=tenants, cluster_events=cluster_events)
        self.step(until=float("inf"))
        return self._live.result

    # ------------------------------------------------------------------
    # Default loop (one until-bounded slice per call)
    # ------------------------------------------------------------------
    def _step_default(self, st: _LiveRun, until: float | None) -> str:
        """Default event loop, sliced.

        The body is the pre-step() ``run`` loop; session state is loaded
        into locals on entry and stored back in the ``finally`` so the hot
        loop keeps its local-variable speed (``run()`` makes exactly one
        call here, paying the load/store once per run).
        """
        result = st.result
        cluster = st.cluster
        calendar = st.calendar
        active = st.active
        gpu_seconds = st.gpu_seconds
        ctx = st.ctx
        fast = self.fast_path
        steady = st.steady
        idle_rounds = st.idle_rounds
        policy_failures = st.policy_failures
        seq = st.seq
        now = st.now
        outcome = _CONTINUE
        try:
            while until is None or now < until:
                # --- admit arrivals at `now` -------------------------------
                arrived = False
                for tj in calendar.pop_arrivals(now + _EPS):
                    job = self._make_job(tj)
                    job.seq = seq
                    seq += 1
                    active[job.job_id] = job
                    gpu_seconds[job.job_id] = 0.0
                    arrived = True

                # --- detect completions ------------------------------------
                finished = False
                finished_now = [
                    j
                    for j in active.values()
                    if j.is_running and j.remaining_samples <= _EPS
                ]
                for job in finished_now:
                    job.status = JobStatus.FINISHED
                    job.finish_time = now
                    job.throughput = 0.0
                    cluster.release(job.job_id)
                    calendar.invalidate(job.job_id)
                    del active[job.job_id]
                    result.add_record(
                        JobRecord.from_job(job, gpu_seconds[job.job_id])
                    )
                    finished = True

                # --- apply cluster dynamics at `now` ------------------------
                # After completions (a job finishing exactly at a failure
                # instant keeps its completion), before the policy: victims
                # are already re-queued with cleared placements when the
                # scheduler next runs — which it must, so a dynamics round is
                # treated like an arrival by the steady-state gating below.
                cluster_changed = False
                for event in calendar.pop_cluster_events(now + _EPS):
                    self._apply_cluster_event(
                        event, cluster, active, now, calendar, result
                    )
                    result.cluster_events += 1
                    cluster_changed = True

                # --- termination / stream pause -----------------------------
                if not active and not calendar.has_arrivals:
                    if st.stream_open:
                        # Live session with a drained queue: pause before the
                        # round is counted.  The slice that resumes after the
                        # next submission re-runs this round — with the
                        # short-circuit disarmed, so the policy observes the
                        # arrivals exactly as a batch round would have.
                        steady = False
                        outcome = _IDLE
                    else:
                        outcome = _DONE
                    break
                if now > self.max_sim_time:
                    raise SimulationError(
                        f"simulation exceeded max_sim_time={self.max_sim_time}; "
                        f"{len(active)} jobs still active"
                    )

                # --- run the policy -----------------------------------------
                result.sim_rounds += 1
                active_list = list(active.values())
                if steady and not arrived and not finished and not cluster_changed:
                    # Steady-state short-circuit: nothing the policy's decision
                    # depends on has changed since it last ran, so invoking it
                    # would reproduce the current allocation verbatim.
                    result.policy_skips += 1
                    idle_rounds = 0  # steady state implies running jobs
                else:
                    ctx.now = now
                    wall = _time.perf_counter()  # repro-lint: disable=RPL001 -- wall-clock perf channel, never persisted (DESIGN.md 28)
                    contained = False
                    try:
                        if self.injector is not None:
                            self.injector.check("policy-round")
                        allocations = self.policy.schedule(
                            active_list, cluster, ctx
                        )
                    except Exception as exc:
                        # Containment: current placements hold for the round, a
                        # structured incident lands on the result, and only N
                        # consecutive failures escalate to a hard error.
                        result.policy_wall_seconds += _time.perf_counter() - wall  # repro-lint: disable=RPL001 -- wall-clock perf channel, never persisted (DESIGN.md 28)
                        result.policy_invocations += 1
                        policy_failures += 1
                        self._record_incident(
                            result, "policy-error", now,
                            job_ids=tuple(j.job_id for j in active_list[:5]),
                            exc=exc,
                        )
                        if policy_failures >= self.max_policy_incidents:
                            raise SimulationError(
                                f"policy {self.policy.name!r} failed "
                                f"{policy_failures} consecutive rounds",
                                incidents=tuple(result.incidents),
                            ) from exc
                        steady = False
                        contained = True
                    if not contained:
                        result.policy_wall_seconds += _time.perf_counter() - wall  # repro-lint: disable=RPL001 -- wall-clock perf channel, never persisted (DESIGN.md 28)
                        result.policy_invocations += 1
                        policy_failures = 0
                        changed = self._apply(
                            allocations, active_list, cluster, now, calendar,
                            diff=fast, result=result,
                        )
                        # The next rounds may skip the policy only if: the fast path
                        # is on; models cannot refit (refit observations happen in
                        # `_apply`, so skipping would starve the refitter); this
                        # round was a no-op fixed point; no job is mid-pause (the
                        # resume is a time-driven status flip the policy observes);
                        # and the policy declares itself time-insensitive in this
                        # state (`steady_state` — e.g. Rubick keeps running while a
                        # queued best-effort job could cross the starvation
                        # threshold or a reconfiguration gate is still closed).
                        steady = (
                            fast
                            and self.online_refitter is None
                            and not changed
                            and any(j.is_running for j in active_list)
                            and all(
                                j.status != JobStatus.PAUSED for j in active_list
                            )
                            and self.policy.steady_state(active_list, ctx)
                        )

                        # Deadlock guard: nothing running, nothing arriving, queue
                        # stuck.  Pending cluster events disarm it: a recovery or
                        # scale-up may be exactly what unblocks the queue.
                        if (
                            not any(j.is_running for j in active_list)
                            and not calendar.has_arrivals
                            and not calendar.has_cluster_events
                        ):
                            idle_rounds += 1
                            if idle_rounds > 3:
                                stuck = ", ".join(
                                    j.job_id for j in active_list[:5]
                                )
                                message = (
                                    f"policy {self.policy.name!r} cannot place "
                                    f"remaining jobs ({stuck} ...) on an empty "
                                    f"cluster"
                                )
                                # The watchdog reports through the same incident
                                # stream as contained faults before escalating.
                                self._record_incident(
                                    result, "deadlock", now,
                                    job_ids=tuple(
                                        j.job_id for j in active_list[:5]
                                    ),
                                    message=message,
                                )
                                raise SimulationError(
                                    message, incidents=tuple(result.incidents)
                                )
                        else:
                            idle_rounds = 0

                # --- choose the next event time ------------------------------
                next_time = calendar.next_event_time(now, active_list)
                self._advance(now, next_time, active_list, gpu_seconds)
                now = next_time
                if until is None:
                    break
        finally:
            # Stored back even when a SimulationError propagates: the
            # session then reflects the state at escalation (the service
            # layer reports it from here).
            st.steady = steady
            st.idle_rounds = idle_rounds
            st.policy_failures = policy_failures
            st.seq = seq
            st.now = now
        return outcome

    # ------------------------------------------------------------------
    # Scale mode: round-based scheduling + lazy advancement, sliced
    # ------------------------------------------------------------------
    def _step_scale(self, st: _LiveRun, until: float | None) -> str:
        """Datacenter-scale loop (see the ``scale_mode`` constructor doc).

        Per-round work is O(events due this round), never O(active jobs):

        * **Lazy advancement** — nothing sweeps the active set between
          events.  A placed job's progress is the closed-form function of
          its anchor (:meth:`_materialize`); it is materialized only when
          something needs its true state (its own completion, an eviction,
          or a policy round).
        * **Heap-driven completions** — with no per-round accumulation, the
          calendar's anchored completion hints are exact event times, so
          the clock jumps straight to them and the due jobs are popped from
          the heap instead of rescanning every job.
        * **Round-based scheduling** — the policy runs at most once per
          ``tick_interval`` (plus once per dirty batch), seeing all
          arrivals, completions, and dynamics since the last round at once;
          in between, events only mutate the queue/cluster.  This is the
          Gavel/Shockwave round model: decision latency is bounded by the
          round length instead of zero, which is what keeps fleet-scale
          scheduling tractable.
        """
        result = st.result
        cluster = st.cluster
        calendar = st.calendar
        active = st.active
        gpu_seconds = st.gpu_seconds
        ctx = st.ctx
        now = st.now
        next_policy_at = st.next_policy_at
        dirty = st.dirty
        policy_failures = st.policy_failures
        seq = st.seq
        # Bound-method/attribute hoists: the loop below runs once per event
        # (~100k rounds on the datacenter leg), so repeated lookups are
        # measurable wall time.
        _make_job = self._make_job
        _materialize = self._materialize
        pop_arrivals = calendar.pop_arrivals
        pop_due_completions = calendar.pop_due_completions
        pop_cluster_events = calendar.pop_cluster_events
        active_get = active.get
        _RUNNING = JobStatus.RUNNING
        _PAUSED = JobStatus.PAUSED
        outcome = _CONTINUE
        try:
            while until is None or now < until:
                cutoff = now + _EPS
                # --- admit arrivals at `now` -------------------------------
                for tj in pop_arrivals(cutoff):
                    job = _make_job(tj)
                    job.seq = seq
                    seq += 1
                    job.anchor_time = now
                    active[tj.job_id] = job
                    gpu_seconds[tj.job_id] = 0.0
                    dirty = True

                # --- detect completions (heap-driven) -----------------------
                finished_now: list[Job] = []
                for job_id in pop_due_completions(cutoff):
                    job = active_get(job_id)
                    if job is None or (
                        job.status is not _RUNNING and job.status is not _PAUSED
                    ):
                        continue  # stale hint raced a same-round transition
                    _materialize(job, now, gpu_seconds)
                    if job.remaining_samples <= _EPS:
                        finished_now.append(job)
                    else:
                        # Ulp-level residue after many re-anchorings: push a
                        # fresh hint for the (tiny) remainder.
                        calendar.track(job, now)
                for job in sorted(finished_now, key=lambda j: j.seq):
                    job_id = job.spec.job_id
                    job.status = JobStatus.FINISHED
                    job.finish_time = now
                    job.throughput = 0.0
                    cluster.release(job_id)
                    calendar.invalidate(job_id)
                    del active[job_id]
                    result.add_record(
                        JobRecord.from_job(job, gpu_seconds[job_id])
                    )
                    dirty = True

                # --- apply cluster dynamics at `now` ------------------------
                for event in pop_cluster_events(cutoff):
                    self._apply_cluster_event(
                        event, cluster, active, now, calendar, result,
                        gpu_seconds=gpu_seconds,
                    )
                    result.cluster_events += 1
                    dirty = True

                # --- termination / stream pause -----------------------------
                if not active and not calendar.has_arrivals:
                    outcome = _IDLE if st.stream_open else _DONE
                    break
                if now > self.max_sim_time:
                    raise SimulationError(
                        f"simulation exceeded max_sim_time={self.max_sim_time}; "
                        f"{len(active)} jobs still active"
                    )

                result.sim_rounds += 1
                # --- policy round (at most one per tick interval) -----------
                if dirty and now + _EPS >= next_policy_at:
                    # Materialize every placed job before the policy observes or
                    # changes it: accrual up to `now` must use the pre-round
                    # configuration.
                    for job_id in cluster.all_job_ids():
                        _materialize(active[job_id], now, gpu_seconds)
                    active_list = list(active.values())
                    ctx.now = now
                    wall = _time.perf_counter()  # repro-lint: disable=RPL001 -- wall-clock perf channel, never persisted (DESIGN.md 28)
                    contained = False
                    try:
                        if self.injector is not None:
                            self.injector.check("policy-round")
                        allocations = self.policy.schedule(
                            active_list, cluster, ctx
                        )
                    except Exception as exc:
                        # Same containment as the default loop: placements hold
                        # for this round; the round clock still advances (so a
                        # repeatedly-failing policy cannot pin the event loop
                        # to one timestamp) and the batch stays dirty for the
                        # next round's retry.
                        result.policy_wall_seconds += _time.perf_counter() - wall  # repro-lint: disable=RPL001 -- wall-clock perf channel, never persisted (DESIGN.md 28)
                        result.policy_invocations += 1
                        policy_failures += 1
                        self._record_incident(
                            result, "policy-error", now,
                            job_ids=tuple(j.job_id for j in active_list[:5]),
                            exc=exc,
                        )
                        if policy_failures >= self.max_policy_incidents:
                            raise SimulationError(
                                f"policy {self.policy.name!r} failed "
                                f"{policy_failures} consecutive rounds",
                                incidents=tuple(result.incidents),
                            ) from exc
                        next_policy_at = now + self.tick_interval
                        contained = True
                    if not contained:
                        result.policy_wall_seconds += _time.perf_counter() - wall  # repro-lint: disable=RPL001 -- wall-clock perf channel, never persisted (DESIGN.md 28)
                        result.policy_invocations += 1
                        policy_failures = 0
                        self._apply(
                            allocations, active_list, cluster, now, calendar,
                            diff=True, result=result,
                        )
                        for job in active_list:
                            job_status = job.status
                            if job_status is _RUNNING or job_status is _PAUSED:
                                job.anchor_time = now
                        dirty = False
                        next_policy_at = now + self.tick_interval
                        # Deadlock guard: the policy is deterministic, so if it
                        # left nothing running and nothing external is pending,
                        # no later round can be any different — fail fast like
                        # the default loop's idle-round counter.
                        if (
                            not any(j.is_running for j in active_list)
                            and not calendar.has_arrivals
                            and not calendar.has_cluster_events
                        ):
                            stuck = ", ".join(j.job_id for j in active_list[:5])
                            message = (
                                f"policy {self.policy.name!r} cannot place "
                                f"remaining jobs ({stuck} ...) on an empty cluster"
                            )
                            self._record_incident(
                                result, "deadlock", now,
                                job_ids=tuple(
                                    j.job_id for j in active_list[:5]
                                ),
                                message=message,
                            )
                            raise SimulationError(
                                message, incidents=tuple(result.incidents)
                            )

                # --- choose the next event time ------------------------------
                now = calendar.next_event_time_lazy(
                    now, policy_at=next_policy_at if dirty else None
                )
                if until is None:
                    break
        finally:
            st.now = now
            st.next_policy_at = next_policy_at
            st.dirty = dirty
            st.policy_failures = policy_failures
            st.seq = seq
        return outcome

    def _materialize(
        self, job: Job, t: float, gpu_seconds: dict[str, float]
    ) -> None:
        """Bring a lazily-advanced job's state forward to time ``t``.

        The per-job body of :meth:`_advance` with ``t_from`` = the job's
        anchor, plus multi-interval periodic-checkpoint catch-up (several
        checkpoint boundaries may have passed since anything touched the
        job; each snaps to its exact boundary, which is well-defined because
        throughput is constant since the last configuration change).
        """
        t_from = job.anchor_time
        dt = t - t_from
        if dt <= 0:
            return
        job.anchor_time = t
        status = job.status
        if status is JobStatus.QUEUED:
            return
        held_gpus = job.placement.total.gpus
        gpu_seconds[job.spec.job_id] += held_gpus * dt
        if status is JobStatus.PAUSED:
            pause_end = min(job.pause_until, t)
            paused_dt = max(pause_end - t_from, 0.0)
            reconfig_dt = max(
                min(pause_end, job.penalty_pause_from) - t_from, 0.0
            )
            job.reconfig_seconds += reconfig_dt
            job.reconfig_gpu_seconds += held_gpus * reconfig_dt
            penalty_dt = paused_dt - reconfig_dt
            if penalty_dt > 0.0:
                job.lost_gpu_seconds += held_gpus * penalty_dt
            if t + _EPS >= job.pause_until:
                job.status = JobStatus.RUNNING
            active_dt = max(t - max(t_from, job.pause_until), 0.0)
        else:
            active_dt = dt
        thr = job.throughput
        if active_dt > 0 and thr > 0:
            job.samples_done += thr * active_dt
            job.run_seconds += active_dt
            while (
                job.run_seconds - job.run_seconds_at_checkpoint
                >= self.checkpoint_interval
            ):
                ckpt_run = (
                    job.run_seconds_at_checkpoint + self.checkpoint_interval
                )
                job.samples_at_checkpoint = (
                    job.samples_done
                    - thr * (job.run_seconds - ckpt_run)
                )
                job.run_seconds_at_checkpoint = ckpt_run

    # ------------------------------------------------------------------
    # Applying policy decisions
    # ------------------------------------------------------------------
    def _apply(
        self,
        allocations: dict[str, Allocation],
        active: list[Job],
        cluster: Cluster,
        now: float,
        calendar: EventCalendar | None = None,
        *,
        diff: bool = True,
        result: SimulationResult | None = None,
    ) -> bool:
        """Reconcile the policy's allocation map with the cluster.

        In ``diff`` mode (the fast path) jobs whose placement *and* plan are
        unchanged are skipped entirely: no cluster release/re-apply churn, no
        ground-truth re-query (their throughput is a pure function of the
        unchanged configuration), no feasibility re-check.  Only the changed
        subset is released (all of it first, then applied in order, so moves
        between jobs never transiently over-commit a node).  The reference
        mode (``diff=False``) keeps the pre-PR release-everything/re-apply-
        everything behavior.  Both modes are byte-identical for maps that fit
        cluster capacity — which every in-tree policy guarantees — and the
        golden suite pins that equivalence.

        Returns True if any job's state changed (placement, plan, status or
        throughput) — the fixed-point signal the steady-state short-circuit
        keys on.
        """
        job_changed: dict[str, bool] = {}
        previous: dict[str, tuple] = {}
        for job in active:
            job_id = job.spec.job_id
            alloc = allocations.get(job_id)
            if diff:
                running = job.is_running
                if alloc is None and not running:
                    # Idle queued job the policy passed over: it holds no
                    # cluster resources (requeue/evict/finish all release),
                    # so the release below would be a no-op and the second
                    # pass would skip it — elide both.  At datacenter scale
                    # the pending queue dwarfs the placed set, making this
                    # the common case.
                    continue
                unchanged = (
                    alloc is not None
                    and running
                    and alloc.plan == job.plan
                    and alloc.placement.shares == job.placement.shares
                )
                if unchanged:
                    job_changed[job_id] = False
                    continue
                previous[job_id] = (job.placement, job.plan)
            else:
                previous[job_id] = (
                    cluster.placement_of(job_id), job.plan
                )
            cluster.release(job_id)
            job_changed[job_id] = True

        changed_any = False
        for job in active:
            job_id = job.spec.job_id
            changed = job_changed.get(job_id)
            if changed is None:  # elided above: idle queued, nothing to do
                continue
            if not changed:
                # Unchanged running job: the refitter still observes its
                # realized throughput each round, exactly as the pre-PR loop
                # did (the value comes from the memo, not a re-derivation).
                if self.online_refitter is not None:
                    self._observe(
                        job,
                        job.plan,
                        ResourceShape.from_placement(job.placement),
                        job.throughput,
                    )
                continue
            alloc = allocations.get(job_id)
            prev_placement, prev_plan = previous[job_id]
            if alloc is None or alloc.placement.is_empty:
                if job.is_running:  # preemption
                    self._requeue(job, now)
                    if calendar is not None:
                        calendar.invalidate(job_id)
                    changed_any = True
                continue
            changed_any = True
            try:
                cluster.apply(job_id, alloc.placement)
            except Exception as exc:
                # Policy produced an over-committed placement; treat as a
                # failed launch, leave the job queued, and surface the
                # containment on the incident stream (it used to be
                # swallowed silently — the RPL007 audit target).
                if result is not None:
                    self._record_incident(
                        result, "apply-error", now,
                        job_ids=(job_id,), exc=exc,
                    )
                cluster.release(job_id)
                if job.is_running:
                    self._requeue(job, now)
                    if calendar is not None:
                        calendar.invalidate(job_id)
                continue
            shape = ResourceShape.from_placement(alloc.placement)
            try:
                thr = self.scorer.true_throughput(
                    job.model, alloc.plan, shape, job.spec.global_batch
                )
            except OutOfMemoryError:
                cluster.release(job_id)
                if job.is_running:
                    self._requeue(job, now)
                    if calendar is not None:
                        calendar.invalidate(job_id)
                continue

            if self.online_refitter is not None:
                self._observe(job, alloc.plan, shape, thr)

            gpus_changed = self._gpu_shares(alloc.placement) != self._gpu_shares(
                prev_placement
            )
            plan_changed = alloc.plan != prev_plan
            was_queued = job.status == JobStatus.QUEUED
            job.placement = alloc.placement
            job.plan = alloc.plan
            job.throughput = thr
            if was_queued:
                job.queue_seconds += now - job.last_queue_enter
                if job.start_time is None:
                    job.start_time = now
                    job.status = JobStatus.RUNNING
                else:
                    # Restart from checkpoint after preemption/eviction; an
                    # evicted job additionally pays the one-shot restart
                    # penalty (zero outside cluster dynamics).  The penalty
                    # tail of the pause is charged to lost GPU-seconds, not
                    # the reconfiguration metrics — a policy that merely
                    # suffered more evictions must not read as
                    # reconfiguring more aggressively.
                    job.status = JobStatus.PAUSED
                    job.pause_until = (
                        now + self.reconfig_delta + job.pending_restart_penalty
                    )
                    job.penalty_pause_from = (
                        now + self.reconfig_delta
                        if job.pending_restart_penalty > 0
                        else float("inf")
                    )
                    job.pending_restart_penalty = 0.0
                    job.reconfig_count += 1
            elif gpus_changed or plan_changed:
                job.status = JobStatus.PAUSED
                job.pause_until = now + self.reconfig_delta
                job.penalty_pause_from = float("inf")
                job.reconfig_count += 1
            # CPU/host-only changes keep the job running untouched.
            if was_queued or gpus_changed or plan_changed:
                # Configuration changes go through checkpoint-resume: the
                # progress saved here is what a later eviction falls back to.
                job.samples_at_checkpoint = job.samples_done
                job.run_seconds_at_checkpoint = job.run_seconds
            if calendar is not None:
                calendar.track(job, now)
        return changed_any

    # ------------------------------------------------------------------
    # Cluster dynamics
    # ------------------------------------------------------------------
    def _apply_cluster_event(
        self,
        event: ClusterEvent,
        cluster: Cluster,
        active: dict[str, Job],
        now: float,
        calendar: EventCalendar,
        result: SimulationResult,
        gpu_seconds: dict[str, float] | None = None,
    ) -> None:
        """Apply one failure/recovery/scaling event and evict its victims.

        ``gpu_seconds`` is passed only by the scale-mode loop: its victims
        are lazily advanced and must be materialized to ``now`` before the
        eviction rolls them back.  The default loop advances every job each
        round, so it passes nothing and behaves exactly as before.
        """
        victims: list[str] = []
        if event.kind == NODE_FAIL:
            victims = cluster.remove_node(event.node_id)
        elif event.kind == NODE_RECOVER:
            cluster.add_node(event.node_id)
        elif event.kind == SCALE_UP:
            for _ in range(event.count):
                cluster.add_node()
        elif event.kind == SCALE_DOWN:
            # Decommission the highest-id up nodes (deterministic choice);
            # removing more nodes than are up drains what exists.
            up_ids = sorted(
                (n.node_id for n in cluster.nodes if n.up), reverse=True
            )
            for node_id in up_ids[: event.count]:
                victims.extend(cluster.remove_node(node_id))
        for job_id in victims:
            job = active.get(job_id)
            if job is not None:
                self._evict(job, now, calendar, result, gpu_seconds=gpu_seconds)

    def _evict(
        self,
        job: Job,
        now: float,
        calendar: EventCalendar,
        result: SimulationResult,
        gpu_seconds: dict[str, float] | None = None,
    ) -> None:
        """Eviction: roll back to the last checkpoint and re-queue.

        The cluster side has already been released by ``remove_node``.
        Progress since the last checkpoint is destroyed — there was no
        chance to checkpoint before the node vanished — and the held
        GPU-seconds that produced it are charged to ``lost_gpu_seconds``
        (progress and configuration are constant since the checkpoint, so
        ``destroyed / throughput × held`` is exact).  The job restarts
        later through the normal ``_apply`` path, paying the
        reconfiguration delta plus the one-shot restart penalty.
        """
        if gpu_seconds is not None:
            self._materialize(job, now, gpu_seconds)
        held = job.placement.total.gpus
        if job.throughput > 0:
            destroyed = job.samples_done - job.samples_at_checkpoint
            if destroyed > 0:
                job.lost_gpu_seconds += held * destroyed / job.throughput
                job.samples_done = job.samples_at_checkpoint
        job.restart_count += 1
        job.pending_restart_penalty = self.restart_penalty
        result.evictions += 1
        self._requeue(job, now)
        calendar.invalidate(job.job_id)

    def _observe(self, job: Job, plan, shape, thr: float) -> None:
        """Feed one realized-throughput observation to the online refitter."""
        perf = self.perf_store.get(job.model)
        updated = self.online_refitter.observe(
            perf, job.model, plan, shape, job.spec.global_batch, thr
        )
        if updated is not perf:
            self.perf_store.add(updated)

    @staticmethod
    def _requeue(job: Job, now: float) -> None:
        """Send a running job back to the queue with no residual allocation.

        Used for both preemption and failed launches; the cluster side has
        already been released, so the job must not keep a stale placement.
        """
        job.status = JobStatus.QUEUED
        job.placement = Placement.empty()
        job.plan = None
        job.throughput = 0.0
        job.last_queue_enter = now

    @staticmethod
    def _gpu_shares(placement) -> dict[int, int]:
        return {
            node_id: share.gpus
            for node_id, share in placement.shares.items()
            if share.gpus > 0
        }

    # ------------------------------------------------------------------
    # Time stepping
    # ------------------------------------------------------------------
    def _advance(
        self,
        t_from: float,
        t_to: float,
        active: list[Job],
        gpu_seconds: dict[str, float],
    ) -> None:
        dt = t_to - t_from
        if dt <= 0:
            return
        for job in active:
            if job.status == JobStatus.QUEUED:
                continue
            held_gpus = job.placement.total.gpus
            gpu_seconds[job.job_id] += held_gpus * dt
            if job.status == JobStatus.PAUSED:
                pause_end = min(job.pause_until, t_to)
                paused_dt = max(pause_end - t_from, 0.0)
                # The checkpoint-resume part of the pause is reconfiguration
                # overhead; the restart-penalty tail (evictions only —
                # `penalty_pause_from` is +inf otherwise) is dynamics waste
                # and accrues to lost GPU-seconds instead.
                reconfig_dt = max(
                    min(pause_end, job.penalty_pause_from) - t_from, 0.0
                )
                job.reconfig_seconds += reconfig_dt
                # Overhead accounting is in *held* GPU-seconds: Rubick's whole
                # point is that held != requested (§7.3).
                job.reconfig_gpu_seconds += held_gpus * reconfig_dt
                penalty_dt = paused_dt - reconfig_dt
                if penalty_dt > 0.0:
                    job.lost_gpu_seconds += held_gpus * penalty_dt
                if t_to + _EPS >= job.pause_until:
                    job.status = JobStatus.RUNNING
                active_dt = max(t_to - max(t_from, job.pause_until), 0.0)
            else:
                active_dt = dt
            if active_dt > 0 and job.throughput > 0:
                job.samples_done += job.throughput * active_dt
                job.run_seconds += active_dt
                if (
                    job.run_seconds - job.run_seconds_at_checkpoint
                    >= self.checkpoint_interval
                ):
                    job.samples_at_checkpoint = job.samples_done
                    job.run_seconds_at_checkpoint = job.run_seconds
