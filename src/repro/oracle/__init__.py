"""Synthetic testbed oracle: the reproduction's stand-in for real GPUs."""

from repro.oracle.effects import EffectCoefficients, TestbedEffects
from repro.oracle.profiler import (
    PROFILE_RUN_SECONDS,
    ProfileConfig,
    build_perf_model,
    collect_samples,
    default_profile_configs,
    profiling_cost_seconds,
)
from repro.oracle.testbed import A800_PEAK_FLOPS, HiddenTruth, SyntheticTestbed

__all__ = [
    "A800_PEAK_FLOPS",
    "EffectCoefficients",
    "HiddenTruth",
    "PROFILE_RUN_SECONDS",
    "ProfileConfig",
    "SyntheticTestbed",
    "TestbedEffects",
    "build_perf_model",
    "collect_samples",
    "default_profile_configs",
    "profiling_cost_seconds",
]
