"""Systematic hardware effects the testbed adds on top of the closed form.

These are the phenomena a real A800 cluster exhibits that the paper's
analytic model (deliberately) does not capture — they are why the fitted
model has the few-percent errors of Table 2 instead of being exact:

* kernel-launch / low-occupancy overhead at small micro-batches,
* extra kernel and collective launch cost per tensor-parallel shard,
* pipeline-stage imbalance inflating the (m + p - 1) span,
* collectives achieving only a fraction of nominal link bandwidth, worse as
  more nodes participate (incast/congestion),
* sub-linear CPU scaling of the ZeRO-Offload optimizer.

All coefficients are drawn once per (seed, model) so each model has a stable
"hardware personality".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.components import Effects
from repro.rng import rng_for


@dataclass(frozen=True)
class EffectCoefficients:
    """Hidden per-model hardware coefficients."""

    launch_overhead: float  # fractional fwd overhead at micro-batch 1
    tp_overhead: float  # fractional fwd overhead per extra TP shard
    bubble_jitter: float  # pipeline stage imbalance coefficient
    bw_efficiency: dict[str, float]  # achievable fraction of nominal bw
    congestion: float  # per-extra-node bandwidth degradation
    cpu_gamma: float  # CPU scaling exponent (1.0 = linear)

    @staticmethod
    def sample(seed: int, model_name: str) -> "EffectCoefficients":
        rng = rng_for(seed, "testbed-effects", model_name)
        return EffectCoefficients(
            launch_overhead=float(rng.uniform(0.03, 0.10)),
            tp_overhead=float(rng.uniform(0.01, 0.04)),
            bubble_jitter=float(rng.uniform(0.05, 0.15)),
            bw_efficiency={
                "dp": float(rng.uniform(0.78, 0.95)),
                "tp": float(rng.uniform(0.82, 0.95)),
                "pp": float(rng.uniform(0.72, 0.90)),
                "pcie": float(rng.uniform(0.80, 0.95)),
            },
            congestion=float(rng.uniform(0.01, 0.04)),
            cpu_gamma=float(rng.uniform(0.80, 0.95)),
        )


class TestbedEffects(Effects):
    """Perturbing :class:`Effects` implementation driven by hidden coefficients."""

    def __init__(self, coeffs: EffectCoefficients):
        self.coeffs = coeffs

    def fwd_time(self, ideal: float, mbs: int, tp: int) -> float:
        launch = 1.0 + self.coeffs.launch_overhead / max(mbs, 1)
        shards = 1.0 + self.coeffs.tp_overhead * (tp - 1)
        return ideal * launch * shards

    def bubble_factor(self, pp: int, micro_batches: int) -> float:
        if pp <= 1:
            return 1.0
        # Stage imbalance stretches the bubble portion of the (m + p - 1)
        # critical path, so the excess scales with the bubble's share.
        bubble_share = (pp - 1) / (micro_batches + pp - 1)
        return 1.0 + self.coeffs.bubble_jitter * bubble_share

    def bandwidth(self, nominal: float, num_nodes: int, kind: str) -> float:
        eff = self.coeffs.bw_efficiency.get(kind, 0.9)
        congested = 1.0 - self.coeffs.congestion * max(num_nodes - 1, 0)
        return nominal * eff * max(congested, 0.3)

    def cpu_update_time(self, ideal: float, cpus_per_rank: float) -> float:
        # ideal = k / (d · c); the real update scales as c^gamma, gamma < 1.
        c = max(cpus_per_rank, 0.5)
        return ideal * c ** (1.0 - self.coeffs.cpu_gamma)
