"""The synthetic testbed: ground-truth performance for the reproduction.

This module stands in for the paper's 64-GPU A800 cluster running
DeepSpeed/Megatron (see DESIGN.md, "Hardware substitution statement").  It
answers exactly the questions the real testbed answers:

* "run this (model, plan, placement) — what throughput do you observe?"
  (:meth:`SyntheticTestbed.true_throughput`, with optional measurement noise
  via :meth:`measure`),
* "does it even launch, or does it OOM?" (:meth:`check_feasible`),
* "what does the framework profiler report for a forward pass?"
  (:meth:`profiled_fwd_ref`).

Ground truth = the paper's structural formulas + hidden per-model constants
+ the systematic effects of `repro.oracle.effects` + (for measurements only)
log-normal sampling noise.  Scheduler code never reads the hidden constants;
it interacts with the testbed only through these measurement APIs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.topology import ClusterSpec, NodeSpec
from repro.errors import OutOfMemoryError
from repro.models.specs import ModelSpec
from repro.oracle.effects import EffectCoefficients, TestbedEffects
from repro.perfmodel.components import compute_breakdown
from repro.perfmodel.params import PerfParams
from repro.perfmodel.shape import Interconnect, ResourceShape
from repro.plans.memory import estimate_memory, host_mem_demand_per_node
from repro.plans.plan import ExecutionPlan
from repro.rng import rng_for

#: A800 dense bf16 peak, used to derive a plausible per-sample forward time.
A800_PEAK_FLOPS = 312e12


@dataclass(frozen=True)
class HiddenTruth:
    """Per-model hidden ground-truth constants (never shown to the scheduler)."""

    params: PerfParams
    t_fwd_ref: float
    mfu: float  # achieved fraction of peak FLOPs at large batch

    @staticmethod
    def sample(seed: int, model: ModelSpec) -> "HiddenTruth":
        rng = rng_for(seed, "testbed-truth", model.name)
        mfu = float(rng.uniform(0.38, 0.52))
        t_fwd_ref = model.fwd_flops_per_sample / (A800_PEAK_FLOPS * mfu)
        params = PerfParams(
            k_bwd=float(rng.uniform(1.8, 2.4)),
            k_sync=float(rng.uniform(1.6, 3.0)),
            k_opt=float(rng.uniform(3e-11, 8e-11)),
            # CPU Adam processes O(100M) params/s/core: offloaded updates are
            # painful unless many cores are allocated (paper Fig. 2/3).
            k_opt_off=float(rng.uniform(4.0e-9, 1.2e-8)),
            k_off=float(rng.uniform(1.5, 3.0)),
            k_swap=float(rng.uniform(1.5, 3.0)),
            k_const=float(rng.uniform(0.02, 0.08)),
        )
        return HiddenTruth(params=params, t_fwd_ref=t_fwd_ref, mfu=mfu)


class SyntheticTestbed:
    """Deterministic ground-truth oracle for a cluster spec.

    Args:
        cluster: Hardware shape (GPU memory, bandwidths) the testbed emulates.
        seed: Root seed for hidden constants and measurement noise.
        measurement_noise: Log-normal sigma of profiling measurements
            (real iteration-time measurements jitter by a percent or two).
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        *,
        seed: int = 0,
        measurement_noise: float = 0.015,
    ):
        self.cluster = cluster
        self.seed = seed
        self.measurement_noise = measurement_noise
        self.env = Interconnect.from_cluster(cluster)
        self._truths: dict[str, HiddenTruth] = {}
        self._effects: dict[str, TestbedEffects] = {}

    # ------------------------------------------------------------------
    # Hidden state accessors (internal)
    # ------------------------------------------------------------------
    def _truth(self, model: ModelSpec) -> HiddenTruth:
        if model.name not in self._truths:
            self._truths[model.name] = HiddenTruth.sample(self.seed, model)
        return self._truths[model.name]

    def _effect(self, model: ModelSpec) -> TestbedEffects:
        if model.name not in self._effects:
            self._effects[model.name] = TestbedEffects(
                EffectCoefficients.sample(self.seed, model.name)
            )
        return self._effects[model.name]

    # ------------------------------------------------------------------
    # Feasibility (launch-or-OOM)
    # ------------------------------------------------------------------
    def check_feasible(
        self,
        model: ModelSpec,
        plan: ExecutionPlan,
        shape: ResourceShape,
        global_batch: int,
        *,
        gpu_mem_override: float | None = None,
        host_mem_override: float | None = None,
    ) -> None:
        """Raise :class:`OutOfMemoryError` if the plan cannot launch.

        ``gpu_mem_override`` / ``host_mem_override`` support the paper's
        resource-limit experiments (Fig. 3b caps host memory at 10 GB).
        """
        if plan.num_gpus != shape.gpus:
            raise OutOfMemoryError(
                f"plan occupies {plan.num_gpus} GPUs but shape has {shape.gpus}"
            )
        node: NodeSpec = self.cluster.node
        gpu_budget = (
            gpu_mem_override if gpu_mem_override is not None else node.usable_gpu_mem
        )
        est = estimate_memory(model, plan, global_batch)
        if est.gpu_total > gpu_budget:
            raise OutOfMemoryError(
                f"{model.name} {plan.describe()}: per-GPU demand "
                f"{est.gpu_total / 2**30:.1f} GiB exceeds budget "
                f"{gpu_budget / 2**30:.1f} GiB"
            )
        host_budget = (
            host_mem_override if host_mem_override is not None else node.host_mem
        )
        # The densest node of the placement carries the largest host share.
        densest = max(shape.min_gpus_per_node, -(-shape.gpus // max(shape.num_nodes, 1)))
        per_node_host = host_mem_demand_per_node(
            model, plan, global_batch, gpus_on_node=densest
        )
        if per_node_host > host_budget:
            raise OutOfMemoryError(
                f"{model.name} {plan.describe()}: per-node host demand "
                f"{per_node_host / 1e9:.0f} GB exceeds budget "
                f"{host_budget / 1e9:.0f} GB"
            )

    def is_feasible(
        self,
        model: ModelSpec,
        plan: ExecutionPlan,
        shape: ResourceShape,
        global_batch: int,
        **overrides: float | None,
    ) -> bool:
        try:
            self.check_feasible(model, plan, shape, global_batch, **overrides)
            return True
        except OutOfMemoryError:
            return False

    # ------------------------------------------------------------------
    # Ground-truth performance
    # ------------------------------------------------------------------
    def true_iter_time(
        self,
        model: ModelSpec,
        plan: ExecutionPlan,
        shape: ResourceShape,
        global_batch: int,
    ) -> float:
        """Noise-free ground-truth iteration time (drives simulation progress)."""
        truth = self._truth(model)
        return compute_breakdown(
            model=model,
            plan=plan,
            shape=shape,
            env=self.env,
            params=truth.params,
            t_fwd_ref=truth.t_fwd_ref,
            global_batch=global_batch,
            effects=self._effect(model),
        ).t_iter

    def true_throughput(
        self,
        model: ModelSpec,
        plan: ExecutionPlan,
        shape: ResourceShape,
        global_batch: int,
        *,
        check_memory: bool = True,
        gpu_mem_override: float | None = None,
        host_mem_override: float | None = None,
    ) -> float:
        """Ground-truth samples/second; raises OOM if infeasible."""
        if check_memory:
            self.check_feasible(
                model,
                plan,
                shape,
                global_batch,
                gpu_mem_override=gpu_mem_override,
                host_mem_override=host_mem_override,
            )
        return global_batch / self.true_iter_time(model, plan, shape, global_batch)

    def measure(
        self,
        model: ModelSpec,
        plan: ExecutionPlan,
        shape: ResourceShape,
        global_batch: int,
        *,
        run_id: int = 0,
    ) -> float:
        """One *measured* throughput sample (ground truth × log-normal noise).

        ``run_id`` distinguishes repeated measurements of the same
        configuration; the noise stream is deterministic in (seed, config,
        run_id).
        """
        true = self.true_throughput(model, plan, shape, global_batch)
        rng = rng_for(
            self.seed,
            "testbed-measure",
            model.name,
            repr(plan),
            shape,
            global_batch,
            run_id,
        )
        return float(true * rng.lognormal(mean=0.0, sigma=self.measurement_noise))

    # ------------------------------------------------------------------
    # Framework-profiler analog
    # ------------------------------------------------------------------
    def profiled_fwd_ref(self, model: ModelSpec, *, run_id: int = 0) -> float:
        """Per-sample forward time as reported by the framework profiler.

        Real frameworks time individual layers/ops, so this is available even
        for models too large for a single GPU (the profiler aggregates
        per-layer timings).  Carries the same measurement noise as any other
        profiling run.
        """
        truth = self._truth(model)
        rng = rng_for(self.seed, "testbed-fwd-profile", model.name, run_id)
        return float(
            truth.t_fwd_ref * rng.lognormal(mean=0.0, sigma=self.measurement_noise)
        )
