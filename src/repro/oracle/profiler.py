"""Workload profiling: collecting the sampled runs that fit the model.

Reproduces the paper's profiling workflow (§4.3, §7.1): for a new model type,
run a *minimum set of seven* short test configurations — at least three using
ZeRO-Offload — measure their throughput, read the framework profiler's
forward-pass time, and fit the seven parameters.

The profiler picks a deliberately diverse default set: it varies the DP size
(identifying ``k_sync``/``k_opt``), toggles GC (identifying ``k_bwd``'s
recompute term), and varies CPU count across the offload runs (identifying
``k_opt_off`` separately from ``k_off``/``k_swap``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FittingError
from repro.models.specs import ModelSpec
from repro.oracle.testbed import SyntheticTestbed
from repro.perfmodel.fitting import FitReport, ThroughputSample, fit_perf_model
from repro.perfmodel.model import PerfModel
from repro.perfmodel.shape import ResourceShape
from repro.plans.enumerate import enumerate_plans
from repro.plans.plan import ExecutionPlan

#: Wall-clock cost of one profiling run; 7 runs ≈ the paper's 210 s budget.
PROFILE_RUN_SECONDS = 30.0


@dataclass(frozen=True)
class ProfileConfig:
    """One profiling configuration: a plan on a resource shape."""

    plan: ExecutionPlan
    shape: ResourceShape


def _first_feasible(
    testbed: SyntheticTestbed,
    model: ModelSpec,
    global_batch: int,
    gpus: int,
    predicate,
    *,
    cpus: int | None = None,
    node_size: int = 8,
) -> ProfileConfig | None:
    """First enumerated plan at ``gpus`` satisfying ``predicate`` and memory."""
    shape = ResourceShape.packed(gpus, node_size=node_size, cpus=cpus)
    plans = enumerate_plans(
        model,
        global_batch,
        gpus,
        min_gpus_per_node=shape.min_gpus_per_node,
        gpu_mem_budget=testbed.cluster.node.usable_gpu_mem,
    )
    for plan in plans:
        if predicate(plan) and testbed.is_feasible(model, plan, shape, global_batch):
            return ProfileConfig(plan=plan, shape=shape)
    return None


def default_profile_configs(
    testbed: SyntheticTestbed,
    model: ModelSpec,
    global_batch: int,
    *,
    max_gpus: int = 8,
) -> list[ProfileConfig]:
    """The standard 7-point profiling set for one model.

    Three ZeRO-Offload points with different CPU allocations, two DP-family
    points at different DP sizes, one GC point, and one model-parallel (or
    ZeRO-DP) point.  All on a single node, as in the paper (§7.3: "7 sampled
    tests on an 8-A800 server").
    """
    node_size = testbed.cluster.node.num_gpus
    max_gpus = min(max_gpus, node_size)
    cluster_gpus = testbed.cluster.total_gpus
    configs: list[ProfileConfig] = []

    def add(gpus: int, predicate, cpus: int | None = None) -> None:
        found = _first_feasible(
            testbed,
            model,
            global_batch,
            gpus,
            predicate,
            cpus=cpus,
            node_size=node_size,
        )
        if found is not None and found not in configs:
            configs.append(found)

    is_plain = lambda p: p.is_pure_dp_family and not p.uses_zero and not p.gc
    is_gc = lambda p: p.is_pure_dp_family and not p.uses_zero and p.gc
    is_zero = lambda p: p.zero.name == "ZERO_DP" and not p.gc
    is_off = lambda p: p.uses_offload and not p.gc
    is_off_any = lambda p: p.uses_offload
    is_mp = lambda p: p.tp > 1 or p.pp > 1

    def offload_count() -> int:
        return sum(1 for c in configs if c.plan.uses_offload)

    # Offload trio with CPU variation (identifies the three offload params).
    # Prefer no-GC offload; fall back to offload+GC for models whose
    # activations require recomputation (e.g. LLaMA-30B).
    for gpus, cpus in ((1, 4), (1, 16), (2, 8), (2, 24), (4, 16), (1, 8)):
        if offload_count() >= 3:
            break
        gpus = min(gpus, max_gpus)
        add(gpus, is_off, cpus=cpus)
        if offload_count() < 3:
            add(gpus, is_off_any, cpus=cpus)

    # DP-family at two sizes (identifies k_sync / k_opt / k_const).
    add(max_gpus, is_plain)
    add(max(max_gpus // 2, 1), is_plain)
    add(max_gpus, is_gc)
    add(max_gpus, is_zero)

    # Model-parallel points for large models (identifies TP/PP terms); one
    # multi-node point anchors the inter-node bandwidth behaviour that
    # 3D-parallel predictions at 16-64 GPUs depend on.
    add(max_gpus, is_mp)
    if model.param_count > 1e9 and 2 * node_size <= cluster_gpus:
        add(2 * node_size, is_mp)

    if len(configs) < 7:
        add(max(max_gpus // 4, 1), is_plain)
        add(max(max_gpus // 2, 1), is_gc)
        add(max(max_gpus // 2, 1), is_zero)
        add(max(max_gpus // 2, 1), is_mp)

    # Models too large for a single node (e.g. LLaMA-30B needs tp·pp >= 8)
    # escalate to multi-node profiling shapes, mirroring how the paper
    # profiles 3D-parallel plans "using more GPUs" for >1B models (§7.1).
    if len(configs) < 7:
        for gpus in (2 * node_size, 3 * node_size, 4 * node_size):
            if gpus > cluster_gpus:
                break
            add(gpus, is_mp)
            add(gpus, lambda p: is_mp(p) and p.dp > 1)
            add(gpus, lambda p: is_mp(p) and p.pp > 1 and p.tp > 1)
            add(gpus, is_zero)
            add(gpus, is_off_any, cpus=gpus * 4)
            if len(configs) >= 9:
                break

    if len(configs) < 7:
        raise FittingError(
            f"{model.name}: could not assemble 7 feasible profiling configs "
            f"(got {len(configs)}) — model may not fit the cluster at any plan"
        )
    return configs[:10]


def collect_samples(
    testbed: SyntheticTestbed,
    model: ModelSpec,
    global_batch: int,
    configs: list[ProfileConfig],
) -> list[ThroughputSample]:
    """Measure each configuration once on the testbed."""
    return [
        ThroughputSample(
            plan=cfg.plan,
            shape=cfg.shape,
            global_batch=global_batch,
            throughput=testbed.measure(
                model, cfg.plan, cfg.shape, global_batch, run_id=i
            ),
        )
        for i, cfg in enumerate(configs)
    ]


def build_perf_model(
    testbed: SyntheticTestbed,
    model: ModelSpec,
    global_batch: int,
    *,
    max_gpus: int = 8,
    seed: int = 0,
) -> tuple[PerfModel, FitReport]:
    """End-to-end profiling + fitting for one model type (paper phase ①)."""
    configs = default_profile_configs(
        testbed, model, global_batch, max_gpus=max_gpus
    )
    samples = collect_samples(testbed, model, global_batch, configs)
    return fit_perf_model(
        model,
        testbed.env,
        testbed.profiled_fwd_ref(model),
        samples,
        seed=seed,
    )


def profiling_cost_seconds(num_configs: int = 7) -> float:
    """Wall-clock profiling budget (paper §7.3 reports 210 s for 7 runs)."""
    return num_configs * PROFILE_RUN_SECONDS
