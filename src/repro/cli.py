"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate-trace`` — build a synthetic Philly-like trace and save as JSON.
* ``simulate``       — replay a trace (file or generated) under a scheduler.
* ``compare``        — run several schedulers on the same trace, print a
                       Table-4-style comparison.
* ``profile``        — fit and print a performance model for one catalog model.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import format_table
from repro.cluster import PAPER_CLUSTER, ClusterSpec, NodeSpec
from repro.models import get_model
from repro.oracle import SyntheticTestbed, build_perf_model
from repro.scheduler import rubick, rubick_e, rubick_n, rubick_r
from repro.scheduler.baselines import (
    AntManPolicy,
    SiaPolicy,
    SimpleEqualPolicy,
    SynergyPolicy,
)
from repro.sim import Simulator, WorkloadConfig, generate_trace
from repro.sim.serialization import load_trace, save_result, save_trace

POLICIES = {
    "rubick": rubick,
    "rubick-e": rubick_e,
    "rubick-r": rubick_r,
    "rubick-n": rubick_n,
    "sia": SiaPolicy,
    "synergy": SynergyPolicy,
    "antman": AntManPolicy,
    "simple": SimpleEqualPolicy,
}


def _cluster_from_args(args) -> ClusterSpec:
    if args.nodes == 8 and args.gpus_per_node == 8:
        return PAPER_CLUSTER
    return ClusterSpec(
        num_nodes=args.nodes, node=NodeSpec(num_gpus=args.gpus_per_node)
    )


def _add_cluster_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--gpus-per-node", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)


def _add_stats_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--planeval-stats",
        action="store_true",
        help="print plan-evaluation cache statistics after the run",
    )


def cmd_generate_trace(args) -> int:
    cluster = _cluster_from_args(args)
    testbed = SyntheticTestbed(cluster, seed=args.seed)
    config = WorkloadConfig(
        num_jobs=args.jobs,
        seed=args.seed,
        span=args.span_hours * 3600.0,
        cluster=cluster,
        plan_assignment=args.plans,
        name=args.name,
    )
    trace = generate_trace(config, testbed)
    save_trace(trace, args.output)
    print(
        f"wrote {len(trace)} jobs ({trace.total_gpu_hours:.0f} GPU-h) "
        f"to {args.output}"
    )
    return 0


def _run_one(policy_name: str, trace, cluster, seed: int):
    policy = POLICIES[policy_name]()
    sim = Simulator(
        cluster, policy, testbed=SyntheticTestbed(cluster, seed=seed), seed=seed
    )
    return sim.run(trace), policy, sim


def _print_planeval_stats(policy_name: str, policy, sim) -> None:
    """Cache counters of the policy's and the simulator's plan engines."""
    engines = [
        (f"{policy_name} (fitted models)", getattr(policy, "engine", None)),
        ("simulator (ground truth)", sim.plan_engine),
    ]
    rows = []
    for label, engine in engines:
        if engine is None:
            rows.append((label, "-", "-", "-", "-", "-"))
            continue
        s = engine.stats()
        rows.append(
            (
                label,
                s.hits,
                s.misses,
                s.evals,
                s.invalidations,
                f"{s.hit_rate:.1%}",
            )
        )
    print(
        format_table(
            ["plan-eval engine", "hits", "misses", "plan evals",
             "invalidations", "hit rate"],
            rows,
            title="plan-evaluation cache statistics",
        )
    )


def _load_or_generate(args, cluster):
    if args.trace:
        return load_trace(args.trace)
    testbed = SyntheticTestbed(cluster, seed=args.seed)
    return generate_trace(
        WorkloadConfig(num_jobs=args.jobs, seed=args.seed, cluster=cluster),
        testbed,
    )


def cmd_simulate(args) -> int:
    cluster = _cluster_from_args(args)
    trace = _load_or_generate(args, cluster)
    result, policy, sim = _run_one(args.policy, trace, cluster, args.seed)
    summary = result.summary()
    print(
        format_table(
            ["metric", "value"],
            [(k, f"{v:.3f}") for k, v in summary.items()],
            title=f"{args.policy} on {trace.name} ({len(trace)} jobs)",
        )
    )
    if args.planeval_stats:
        _print_planeval_stats(args.policy, policy, sim)
    if args.output:
        save_result(result, args.output)
        print(f"wrote result to {args.output}")
    return 0


def cmd_compare(args) -> int:
    cluster = _cluster_from_args(args)
    trace = _load_or_generate(args, cluster)
    names = args.policies.split(",")
    unknown = [n for n in names if n not in POLICIES]
    if unknown:
        print(f"unknown policies: {unknown}; known: {sorted(POLICIES)}")
        return 2
    runs = [_run_one(name, trace, cluster, args.seed) for name in names]
    results = [res for res, _, _ in runs]
    ref = results[0]
    rows = [
        (
            res.policy_name,
            f"{res.avg_jct_hours():.2f} ({res.avg_jct() / ref.avg_jct():.2f}x)",
            f"{res.p99_jct_hours():.2f}",
            f"{res.makespan_hours:.1f}",
            f"{res.avg_reconfig_count:.1f}",
            len(res.sla_violations()),
        )
        for res in results
    ]
    print(
        format_table(
            ["scheduler", "avg JCT h", "p99 JCT h", "makespan h",
             "reconfigs/job", "SLA violations"],
            rows,
            title=f"{trace.name}: {len(trace)} jobs on "
            f"{cluster.total_gpus} GPUs",
        )
    )
    if args.planeval_stats:
        for (res, policy, sim), name in zip(runs, names):
            _print_planeval_stats(name, policy, sim)
    return 0


def cmd_profile(args) -> int:
    cluster = _cluster_from_args(args)
    testbed = SyntheticTestbed(cluster, seed=args.seed)
    model = get_model(args.model)
    perf, report = build_perf_model(
        testbed, model, model.global_batch_size, seed=args.seed
    )
    rows = [(name, f"{value:.4g}") for name, value in zip(
        type(perf.params).names(), perf.params.as_vector()
    )]
    rows.append(("t_fwd_ref (s/sample)", f"{perf.t_fwd_ref:.4g}"))
    rows.append(("fit RMSLE", f"{report.rmsle:.4f}"))
    rows.append(("samples", f"{report.num_samples}"))
    print(format_table(["parameter", "value"], rows,
                       title=f"Fitted performance model: {model.display_name}"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Rubick reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate-trace", help="synthesize a workload trace")
    _add_cluster_args(p)
    p.add_argument("--jobs", type=int, default=160)
    p.add_argument("--span-hours", type=float, default=12.0)
    p.add_argument("--plans", choices=["random", "best"], default="random")
    p.add_argument("--name", default="base")
    p.add_argument("--output", required=True)
    p.set_defaults(func=cmd_generate_trace)

    p = sub.add_parser("simulate", help="replay a trace under one scheduler")
    _add_cluster_args(p)
    p.add_argument("--policy", choices=sorted(POLICIES), default="rubick")
    p.add_argument("--trace", help="trace JSON (generated if omitted)")
    p.add_argument("--jobs", type=int, default=80)
    p.add_argument("--output", help="write the result JSON here")
    _add_stats_arg(p)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("compare", help="run several schedulers on one trace")
    _add_cluster_args(p)
    p.add_argument("--policies", default="rubick,sia,synergy")
    p.add_argument("--trace", help="trace JSON (generated if omitted)")
    p.add_argument("--jobs", type=int, default=80)
    _add_stats_arg(p)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("profile", help="fit a performance model for a model")
    _add_cluster_args(p)
    p.add_argument("--model", default="gpt2-1.5b")
    p.set_defaults(func=cmd_profile)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
