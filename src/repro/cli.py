"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate-trace`` — build a synthetic Philly-like trace and save as JSON.
* ``simulate``       — replay a trace (file or generated) under a scheduler.
* ``compare``        — run several schedulers on the same trace, print a
                       Table-4-style comparison.
* ``sweep``          — fan a (policy × scenario × variant × seed) grid out
                       across worker processes with persisted, resumable
                       results.
* ``serve``          — run a live scheduling-service master accepting
                       streamed submissions (``repro.service``).
* ``submit``         — stream a scenario's jobs/events into a running
                       master (the load-generator client).
* ``workload``       — list, inspect and materialize named workload
                       scenarios (``repro.workloads``).
* ``profile``        — fit and print a performance model for one catalog model.

``simulate``, ``compare``, ``sweep`` and ``serve`` all execute through the
experiments runner (`repro.experiments`), so a CLI run, a sweep worker and
a served session are the same code path.  The shared flag vocabulary
(``--policy``, ``--scenario``, ``--dynamics``, ``--faults``) is defined
once in the ``_*_parent`` argparse parents below: every command spells,
defaults and documents these flags identically, and the grid commands
additionally accept the plural aliases (``--policies``, ``--scenarios``)
they historically used.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.analysis import format_table
from repro.cluster import (
    PAPER_CLUSTER,
    ClusterSpec,
    NodeSpec,
    known_dynamics_names,
    resolve_dynamics,
)
from repro.experiments import (
    RunSpec,
    SweepSpec,
    aggregate,
    build_trace,
    default_tenants,
    execute_run,
    format_failure_table,
    format_sweep_table,
    run_cluster_events,
    run_sweep,
    simulator_for_run,
)
from repro.errors import (
    ClusterDynamicsError,
    FaultPlanError,
    InjectedFault,
    ProtocolError,
    SimulationError,
    WorkloadError,
)
from repro.experiments.spec import VARIANTS
from repro.faults import (
    NO_FAULTS_NAME,
    incident_payload,
    list_fault_plans,
    resolve_fault_plan,
)
from repro.models import get_model
from repro.oracle import SyntheticTestbed, build_perf_model
from repro.scheduler.registry import POLICIES
from repro.service import (
    RealTimeClock,
    ServiceClient,
    VirtualClock,
    replay,
    serve,
)
from repro.sim import WorkloadConfig, generate_trace
from repro.sim.serialization import result_from_dict, save_result, save_trace
from repro.statics.cli import add_lint_parser
from repro.units import HOUR
from repro.workloads import (
    DEFAULT_SCENARIO,
    arrival_to_dict,
    list_scenarios,
    resolve_scenario,
    scenario_trace,
)


def _cluster_from_args(args) -> ClusterSpec:
    if args.nodes == 8 and args.gpus_per_node == 8:
        return PAPER_CLUSTER
    return ClusterSpec(
        num_nodes=args.nodes, node=NodeSpec(num_gpus=args.gpus_per_node)
    )


def _add_cluster_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--gpus-per-node", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)


# ----------------------------------------------------------------------
# Shared flag vocabulary (argparse parents)
# ----------------------------------------------------------------------
# One definition per flag family; every command that takes the flag gets
# it from here, so spelling, defaults and help text cannot drift apart.
# ``multi=True`` commands (compare, sweep) interpret the value as a
# comma-separated list and accept the historical plural aliases.
def _policy_parent(*, multi: bool = False) -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    known = ", ".join(sorted(POLICIES))
    if multi:
        parent.add_argument(
            "--policy", "--policies", dest="policy", metavar="POLICY",
            default="rubick,sia,synergy",
            help=f"comma-separated scheduling policies (known: {known})",
        )
    else:
        parent.add_argument(
            "--policy", "--policies", dest="policy", metavar="POLICY",
            default="rubick", choices=sorted(POLICIES),
            help=f"scheduling policy (known: {known})",
        )
    return parent


def _workload_parent(*, multi: bool = False) -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    noun = "comma-separated workload scenarios" if multi else \
        "workload scenario"
    parent.add_argument(
        "--scenario", "--scenarios", dest="scenario", metavar="SCENARIO",
        default=DEFAULT_SCENARIO,
        help=f"{noun}: registered name or replay:<path> "
             "(see `repro workload list`)",
    )
    profiles = "comma-separated cluster-dynamics profiles" if multi else \
        "cluster-dynamics profile"
    parent.add_argument(
        "--dynamics", default="", metavar="PROFILE",
        help=f"{profiles} (e.g. flaky, scaleout-midday, "
             "file:<events.json>); default: the scenario's own dynamics",
    )
    return parent


def _faults_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--faults", default=NO_FAULTS_NAME, metavar="PLAN",
        help="fault plan to inject (name or file:<plan.json>; "
             "see `repro faults list`)",
    )
    return parent


def _endpoint_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--host", default="127.0.0.1",
                        help="service address")
    parent.add_argument("--port", type=int, default=0,
                        help="service TCP port (serve: 0 picks an "
                             "ephemeral port; submit: required unless "
                             "--port-file is given)")
    parent.add_argument("--port-file", metavar="PATH",
                        help="port-discovery file: serve writes its bound "
                             "port there, submit reads it")
    return parent


def _clock_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--virtual-clock", action="store_true",
        help="deterministic virtual time: simulated time advances only "
             "on frames, so a streamed replay is byte-identical to the "
             "batch `repro simulate` of the same spec (CI mode)",
    )
    parent.add_argument(
        "--speed", type=float, default=1.0, metavar="X",
        help="real-time mode: simulated seconds per wall second "
             "(ignored under --virtual-clock)",
    )
    return parent


def _resolve_faults(args):
    """(fault plan or None, exit code) for a command's --faults value."""
    try:
        plan = resolve_fault_plan(args.faults)
    except FaultPlanError as exc:
        print(str(exc))
        return None, 2
    return (plan if plan.rules else None), 0


def _add_stats_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--planeval-stats",
        action="store_true",
        help="print plan-evaluation cache statistics after the run",
    )


def cmd_generate_trace(args) -> int:
    cluster = _cluster_from_args(args)
    testbed = SyntheticTestbed(cluster, seed=args.seed)
    config = WorkloadConfig(
        num_jobs=args.jobs,
        seed=args.seed,
        span=args.span_hours * 3600.0,
        cluster=cluster,
        plan_assignment=args.plans,
        name=args.name,
    )
    trace = generate_trace(config, testbed)
    save_trace(trace, args.output)
    print(
        f"wrote {len(trace)} jobs ({trace.total_gpu_hours:.0f} GPU-h) "
        f"to {args.output}"
    )
    return 0


def _run_spec(args, policy_name: str) -> RunSpec:
    """The RunSpec equivalent of one simulate/compare invocation."""
    return RunSpec(
        policy=policy_name,
        seed=args.seed,
        num_jobs=args.jobs,
        nodes=args.nodes,
        gpus_per_node=args.gpus_per_node,
        trace_path=args.trace,
        scenario=getattr(args, "scenario", DEFAULT_SCENARIO),
        dynamics=getattr(args, "dynamics", ""),
    )


def _check_scenarios(names) -> list[str]:
    """The unusable names in a scenario list (empty when all resolvable).

    Replay scenarios are also checked for source existence up front: a
    path typo should fail the invocation immediately, not crash mid-sweep
    after other runs already burned wall clock.
    """
    from pathlib import Path

    bad = []
    for name in names:
        try:
            scenario = resolve_scenario(name)
        except WorkloadError:
            bad.append(name)
            continue
        if scenario.is_replay and not Path(scenario.source).exists():
            bad.append(f"{name} (no such file)")
    return bad


def _check_dynamics(names) -> list[str]:
    """The unusable names in a dynamics list (empty when all resolvable)."""
    bad = []
    for name in names:
        if not name:
            continue  # empty = inherit the scenario's dynamics
        try:
            resolve_dynamics(name)
        except ClusterDynamicsError as exc:
            bad.append(f"{name} ({exc})" if name.startswith("file:") else name)
    return bad


def _print_planeval_stats(policy_name: str, policy, sim) -> None:
    """Cache counters of the policy's and the simulator's plan engines."""
    engines = [
        (f"{policy_name} (fitted models)", getattr(policy, "engine", None)),
        ("simulator (ground truth)", sim.plan_engine),
    ]
    rows = []
    for label, engine in engines:
        if engine is None:
            rows.append((label, "-", "-", "-", "-", "-"))
            continue
        s = engine.stats()
        rows.append(
            (
                label,
                s.hits,
                s.misses,
                s.evals,
                s.invalidations,
                f"{s.hit_rate:.1%}",
            )
        )
    print(
        format_table(
            ["plan-eval engine", "hits", "misses", "plan evals",
             "invalidations", "hit rate"],
            rows,
            title="plan-evaluation cache statistics",
        )
    )


def _bad_dynamics(names) -> bool:
    bad = _check_dynamics(names)
    if bad:
        known = ", ".join(known_dynamics_names())
        print(f"unknown dynamics: {bad}; known: {known}, or file:<path>")
    return bool(bad)


def _bad_scenarios(names) -> bool:
    bad = _check_scenarios(names)
    if bad:
        known = ", ".join(s.name for s in list_scenarios())
        print(f"unknown scenarios: {bad}; known: {known}, or replay:<path>")
    return bool(bad)


def _contained_execute(run, injector):
    """Execute one run, containing armed injected faults (RPL010).

    A fault that escapes the runner's own retry/quarantine path must not
    surface as a raw traceback: the incident record *is* the contract.
    Returns the execution, or ``None`` after printing the incident record
    (the caller exits 3 — distinct from usage errors so chaos sweeps can
    tell "fault fired" from "bad invocation").  Without an injector the
    exception propagates unchanged: a real simulation bug is not an
    incident to swallow.
    """
    try:
        return execute_run(run, injector=injector)
    except (SimulationError, InjectedFault) as exc:
        if injector is None:
            raise
        print("run terminated by injected fault; incident record:")
        print(
            json.dumps(
                incident_payload(exc), indent=1, sort_keys=True,
                allow_nan=False,
            )
        )
        return None


def cmd_simulate(args) -> int:
    if _bad_scenarios([args.scenario]) or _bad_dynamics([args.dynamics]):
        return 2
    plan, rc = _resolve_faults(args)
    if rc:
        return rc
    run = _run_spec(args, args.policy)
    injector = plan.injector(run.run_key) if plan is not None else None
    execution = _contained_execute(run, injector)
    if execution is None:
        return 3
    result, trace = execution.result, execution.trace
    summary = result.summary()
    print(
        format_table(
            ["metric", "value"],
            [(k, f"{v:.3f}") for k, v in summary.items()],
            title=f"{args.policy} on {trace.name} ({len(trace)} jobs)",
        )
    )
    if args.planeval_stats:
        _print_planeval_stats(args.policy, execution.policy, execution.sim)
    if args.output:
        save_result(result, args.output)
        print(f"wrote result to {args.output}")
    return 0


def cmd_compare(args) -> int:
    cluster = _cluster_from_args(args)
    names = args.policy.split(",")
    unknown = [n for n in names if n not in POLICIES]
    if unknown:
        print(f"unknown policies: {unknown}; known: {sorted(POLICIES)}")
        return 2
    if _bad_scenarios([args.scenario]) or _bad_dynamics([args.dynamics]):
        return 2
    plan, rc = _resolve_faults(args)
    if rc:
        return rc
    executions = []
    for name in names:
        run = _run_spec(args, name)
        injector = plan.injector(run.run_key) if plan is not None else None
        execution = _contained_execute(run, injector)
        if execution is None:
            return 3
        executions.append(execution)
    results = [e.result for e in executions]
    trace = executions[0].trace
    ref = results[0]
    # Dynamics columns appear only when cluster events actually fired, so
    # static comparisons render exactly as before the subsystem existed.
    dynamic = any(res.cluster_events > 0 for res in results)
    rows = [
        (
            res.policy_name,
            f"{res.avg_jct_hours():.2f} ({res.avg_jct() / ref.avg_jct():.2f}x)",
            f"{res.p99_jct_hours():.2f}",
            f"{res.makespan_hours:.1f}",
            f"{res.avg_reconfig_count:.1f}",
            len(res.sla_violations()),
            *(
                (f"{res.lost_gpu_hours:.2f}", res.evictions)
                if dynamic
                else ()
            ),
        )
        for res in results
    ]
    headers = ["scheduler", "avg JCT h", "p99 JCT h", "makespan h",
               "reconfigs/job", "SLA violations"]
    if dynamic:
        headers += ["lost GPU-h", "evictions"]
    print(
        format_table(
            headers,
            rows,
            title=f"{trace.name}: {len(trace)} jobs on "
            f"{cluster.total_gpus} GPUs",
        )
    )
    if args.planeval_stats:
        for execution, name in zip(executions, names):
            _print_planeval_stats(name, execution.policy, execution.sim)
    return 0


def _csv(text: str, convert=str) -> tuple:
    return tuple(convert(part) for part in text.split(",") if part)


def cmd_sweep(args) -> int:
    policies = _csv(args.policy)
    unknown = [n for n in policies if n not in POLICIES]
    if unknown:
        print(f"unknown policies: {unknown}; known: {sorted(POLICIES)}")
        return 2
    variants = _csv(args.variants)
    bad = [v for v in variants if v not in VARIANTS]
    if bad:
        print(f"unknown variants: {bad}; known: {list(VARIANTS)}")
        return 2
    scenarios = _csv(args.scenario)
    if _bad_scenarios(scenarios):
        return 2
    dynamics = _csv(args.dynamics) or ("",)
    if _bad_dynamics(dynamics):
        return 2
    try:
        fault_plan = resolve_fault_plan(args.faults)
    except FaultPlanError as exc:
        print(str(exc))
        return 2
    try:
        spec = SweepSpec(
            policies=policies,
            seeds=_csv(args.seeds, int),
            variants=variants,
            scenarios=scenarios,
            dynamics=dynamics,
            num_jobs=args.jobs,
            span=args.span_hours * 3600.0,
            nodes=args.nodes,
            gpus_per_node=args.gpus_per_node,
            load_factors=_csv(args.loads, float),
            large_model_factors=_csv(args.large_model_factors, float),
        )
        runs = spec.expand()
    except ValueError as exc:
        # Malformed numbers (--seeds a), duplicate grid entries (--seeds
        # 0,0), or out-of-range run values (--loads 0).
        print(f"invalid sweep grid: {exc}")
        return 2
    dyn_axis = (
        f"{len(spec.dynamics)} dynamics x " if len(spec.dynamics) > 1 else ""
    )
    print(
        f"sweep: {len(runs)} runs "
        f"({len(spec.policies)} policies x {len(spec.scenarios)} scenarios x "
        f"{dyn_axis}{len(spec.variants)} variants x "
        f"{len(spec.seeds)} seeds x {len(spec.load_factors)} loads x "
        f"{len(spec.large_model_factors)} model mixes), "
        f"workers={args.workers}, out={args.out}"
    )
    if fault_plan.rules:
        print(
            f"fault plan: {fault_plan.name} (digest {fault_plan.digest}) — "
            f"{fault_plan.describe()}"
        )
    outcome = run_sweep(
        spec,
        out_dir=args.out,
        workers=args.workers,
        resume=args.resume,
        log=print,
        fault_plan=fault_plan,
        max_attempts=args.max_attempts,
        run_timeout=args.run_timeout,
    )
    print()
    print(
        format_sweep_table(
            aggregate(outcome.pairs()),
            title=f"sweep on {spec.nodes * spec.gpus_per_node} GPUs "
            f"({args.jobs} jobs/trace)",
            perf=list(outcome.perf.values()),
        )
    )
    executed = len(outcome.wall_seconds)
    # Sum in sorted-key order: dict insertion order follows worker
    # completion order, which varies run to run (RPL002).
    run_time = sum(
        outcome.wall_seconds[k] for k in sorted(outcome.wall_seconds)
    )
    print(
        f"\nexecuted {executed} runs ({len(outcome.skipped)} resumed) in "
        f"{outcome.total_wall:.1f}s wall "
        f"({run_time:.1f}s of simulation across {outcome.workers} workers)"
    )
    if outcome.failures:
        # Degraded completion: the grid finished, but some runs exhausted
        # their retries and were quarantined.  Exit 3 distinguishes this
        # from success (0), usage errors (2), and hard failures (raised
        # exceptions) so CI chaos jobs can assert the exact outcome.
        print()
        print(format_failure_table(outcome.failures))
        print(
            f"\n{len(outcome.failures)} run(s) quarantined under "
            f"{args.out}/failures/ (re-run with --resume to retry them)"
        )
        return 3
    return 0


def _print_result_summary(result, title: str) -> None:
    print(
        format_table(
            ["metric", "value"],
            [(k, f"{v:.3f}") for k, v in result.summary().items()],
            title=title,
        )
    )


def cmd_serve(args) -> int:
    if _bad_scenarios([args.scenario]) or _bad_dynamics([args.dynamics]):
        return 2
    plan, rc = _resolve_faults(args)
    if rc:
        return rc
    run = _run_spec(args, args.policy)
    injector = plan.injector(run.run_key) if plan is not None else None
    sim = simulator_for_run(run, injector=injector)
    clock = (
        VirtualClock() if args.virtual_clock
        else RealTimeClock(speed=args.speed)
    )
    try:
        result = serve(
            sim,
            host=args.host,
            port=args.port,
            clock=clock,
            tenants=default_tenants(run),
            port_file=args.port_file,
            log=print,
        )
    except SimulationError as exc:
        print(f"simulation failed: {exc}")
        return 1
    if result is None:
        print("master exited without a completed drain")
        return 1
    _print_result_summary(
        result,
        f"{args.policy} served session "
        f"({len(result.records) + result.dropped_records} jobs)",
    )
    if args.output:
        save_result(result, args.output)
        print(f"wrote result to {args.output}")
    return 0


def _discover_port(args) -> int:
    """The master's port, from --port or (with retries) --port-file.

    ``repro serve --port-file X &`` then ``repro submit --port-file X`` is
    the scripted/CI startup shape; the file appears only once the master
    has bound, so the client polls for it briefly instead of racing.
    """
    if args.port:
        return args.port
    if not args.port_file:
        raise ProtocolError("submit needs --port or --port-file")
    deadline = time.monotonic() + args.connect_timeout  # repro-lint: disable=RPL001 -- client-side startup timeout against a live master; never on a persisted-artifact path
    path = Path(args.port_file)
    while True:
        if path.exists():
            text = path.read_text().strip()
            if text:
                return int(text.split()[0])
        if time.monotonic() > deadline:  # repro-lint: disable=RPL001 -- client-side startup timeout against a live master; never on a persisted-artifact path
            raise ProtocolError(
                f"no master port appeared in {args.port_file} within "
                f"{args.connect_timeout:.0f}s"
            )
        time.sleep(0.05)


def _connect_with_retry(args, port: int) -> ServiceClient:
    deadline = time.monotonic() + args.connect_timeout  # repro-lint: disable=RPL001 -- client-side startup timeout against a live master; never on a persisted-artifact path
    while True:
        try:
            return ServiceClient(host=args.host, port=port).connect()
        except OSError as exc:
            if time.monotonic() > deadline:  # repro-lint: disable=RPL001 -- client-side startup timeout against a live master; never on a persisted-artifact path
                raise ProtocolError(
                    f"cannot reach master at {args.host}:{port}: {exc}"
                ) from exc
            time.sleep(0.05)


def cmd_submit(args) -> int:
    if _bad_scenarios([args.scenario]) or _bad_dynamics([args.dynamics]):
        return 2
    # The load generator replays a *run spec*: same trace builder and
    # dynamics expansion as `repro simulate`, so a virtual-clock session
    # reproduces the batch result byte for byte.  The policy axis lives on
    # the serve side; the spec's policy field does not influence the trace.
    run = _run_spec(args, "rubick")
    trace = build_trace(run)
    events = run_cluster_events(run)
    try:
        port = _discover_port(args)
        client = _connect_with_retry(args, port)
    except ProtocolError as exc:
        print(str(exc))
        return 2
    try:
        with client:
            report = replay(
                trace,
                client,
                events=events,
                speed=None if args.virtual_clock else args.speed,
                log=print,
            )
    except ProtocolError as exc:
        print(f"replay failed: {exc}")
        return 1
    doc = report.result
    if doc is None:
        print("master drained without a result document")
        return 1
    summary = doc.get("summary", {})
    print(
        format_table(
            ["metric", "value"],
            [
                (k, "-" if v is None else f"{v:.3f}")
                for k, v in summary.items()
            ],
            title=f"{doc.get('policy_name')} on {doc.get('trace_name')} "
            f"({report.jobs} jobs, {report.events} cluster events)",
        )
    )
    if args.output:
        # Round-trip the wire document through the result model before
        # writing: the file comes out byte-identical to what
        # `repro simulate --output` writes for the same spec (the wire
        # frame is compact/sorted JSON; persisted documents are not).
        save_result(result_from_dict(doc), args.output)
        print(f"wrote result to {args.output}")
    return 0


def cmd_faults_list(args) -> int:
    rows = [
        (name, len(plan.rules), plan.digest, plan.description)
        for name, plan in list_fault_plans()
    ]
    print(
        format_table(
            ["plan", "rules", "digest", "description"],
            rows,
            title="registered fault plans (plus file:<plan.json>)",
        )
    )
    return 0


def cmd_faults_show(args) -> int:
    try:
        plan = resolve_fault_plan(args.name)
    except FaultPlanError as exc:
        print(str(exc))
        return 2
    rows = [
        ("name", plan.name),
        ("description", plan.description or "-"),
        ("digest", plan.digest),
    ]
    for i, rule in enumerate(plan.rules):
        rows.append((f"rule[{i}]", rule.describe()))
    print(format_table(["field", "value"], rows,
                       title=f"fault plan {plan.name}"))
    return 0


def cmd_workload_list(args) -> int:
    rows = []
    for scenario in list_scenarios():
        arrival = scenario.arrival.kind if scenario.arrival else "replay"
        span = "run's" if scenario.span is None else f"{scenario.span / HOUR:g}h"
        tenants = (
            "-" if scenario.guaranteed_fraction is None
            else f"{scenario.guaranteed_fraction:.0%} guaranteed"
        )
        rows.append((scenario.name, arrival, span, tenants,
                     scenario.dynamics or "-", scenario.description))
    print(
        format_table(
            ["scenario", "arrivals", "span", "tenants", "dynamics",
             "description"],
            rows,
            title="registered workload scenarios (plus replay:<path>)",
        )
    )
    print(
        "cluster-dynamics profiles (--dynamics): "
        + ", ".join(known_dynamics_names())
        + ", or file:<events.json>"
    )
    return 0


def cmd_workload_show(args) -> int:
    try:
        scenario = resolve_scenario(args.name)
    except WorkloadError as exc:
        print(str(exc))
        return 2
    rows = [("name", scenario.name), ("description", scenario.description)]
    if scenario.is_replay:
        rows.append(("source", scenario.source))
    else:
        for key, value in arrival_to_dict(scenario.arrival).items():
            rows.append((f"arrival.{key}", value))
        mix = scenario.mix
        rows.extend(
            [
                ("mix.gpu_mix", " ".join(
                    f"{g}:{w:g}" for g, w in mix.gpu_mix)),
                ("mix.duration_median_min", f"{mix.duration_median / 60:g}"),
                ("mix.duration_sigma", f"{mix.duration_sigma:g}"),
                ("mix.large_model_factor", f"{mix.large_model_factor:g}"),
            ]
        )
        if mix.model_weights:
            rows.append(("mix.model_weights", " ".join(
                f"{n}:{w:g}" for n, w in mix.model_weights)))
    if scenario.span is not None:
        rows.append(("span_hours", f"{scenario.span / HOUR:g}"))
    if scenario.num_jobs is not None:
        rows.append(("num_jobs", scenario.num_jobs))
    if scenario.guaranteed_fraction is not None:
        rows.append(
            ("guaranteed_fraction", f"{scenario.guaranteed_fraction:g}")
        )
    if scenario.dynamics is not None:
        rows.append(("dynamics", scenario.dynamics))
        rows.append(
            ("dynamics.profile", resolve_dynamics(scenario.dynamics).describe())
        )
    print(format_table(["field", "value"], rows,
                       title=f"scenario {scenario.name}"))
    return 0


def cmd_workload_generate(args) -> int:
    try:
        scenario = resolve_scenario(args.name)
    except WorkloadError as exc:
        print(str(exc))
        return 2
    cluster = _cluster_from_args(args)
    try:
        trace = scenario_trace(
            scenario,
            seed=args.seed,
            cluster=cluster,
            num_jobs=args.jobs,
            span=args.span_hours * HOUR,
            plan_assignment=args.plans,
        )
    except WorkloadError as exc:
        print(str(exc))
        return 2
    save_trace(trace, args.output)
    print(
        f"wrote {len(trace)} jobs ({trace.total_gpu_hours:.0f} GPU-h, "
        f"span {trace.span / HOUR:.1f}h) from scenario {scenario.name} "
        f"to {args.output}"
    )
    return 0


def cmd_profile(args) -> int:
    cluster = _cluster_from_args(args)
    testbed = SyntheticTestbed(cluster, seed=args.seed)
    model = get_model(args.model)
    perf, report = build_perf_model(
        testbed, model, model.global_batch_size, seed=args.seed
    )
    rows = [(name, f"{value:.4g}") for name, value in zip(
        type(perf.params).names(), perf.params.as_vector()
    )]
    rows.append(("t_fwd_ref (s/sample)", f"{perf.t_fwd_ref:.4g}"))
    rows.append(("fit RMSLE", f"{report.rmsle:.4f}"))
    rows.append(("samples", f"{report.num_samples}"))
    print(format_table(["parameter", "value"], rows,
                       title=f"Fitted performance model: {model.display_name}"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Rubick reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    add_lint_parser(sub)

    p = sub.add_parser("generate-trace", help="synthesize a workload trace")
    _add_cluster_args(p)
    p.add_argument("--jobs", type=int, default=160)
    p.add_argument("--span-hours", type=float, default=12.0)
    p.add_argument("--plans", choices=["random", "best"], default="random")
    p.add_argument("--name", default="base")
    p.add_argument("--output", required=True)
    p.set_defaults(func=cmd_generate_trace)

    p = sub.add_parser(
        "simulate",
        help="replay a trace under one scheduler",
        parents=[_policy_parent(), _workload_parent(), _faults_parent()],
    )
    _add_cluster_args(p)
    p.add_argument("--trace", help="trace JSON (generated if omitted)")
    p.add_argument("--jobs", type=int, default=80)
    p.add_argument("--output", help="write the result JSON here")
    _add_stats_arg(p)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser(
        "compare",
        help="run several schedulers on one trace",
        parents=[
            _policy_parent(multi=True),
            _workload_parent(),
            _faults_parent(),
        ],
    )
    _add_cluster_args(p)
    p.add_argument("--trace", help="trace JSON (generated if omitted)")
    p.add_argument("--jobs", type=int, default=80)
    _add_stats_arg(p)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser(
        "sweep",
        help="run a (policy x scenario x variant x seed) grid across "
             "worker processes",
        parents=[
            _policy_parent(multi=True),
            _workload_parent(multi=True),
            _faults_parent(),
        ],
    )
    p.add_argument("--nodes", type=int, default=8)
    p.add_argument("--gpus-per-node", type=int, default=8)
    p.add_argument("--seeds", default="0",
                   help="comma-separated seed list (e.g. 0,1,2)")
    p.add_argument("--variants", default="base",
                   help=f"comma-separated subset of {','.join(VARIANTS)}")
    p.add_argument("--loads", default="1.0",
                   help="comma-separated arrival-rate factors (Fig. 10)")
    p.add_argument("--large-model-factors", default="1.0",
                   help="comma-separated large-model-mix factors (Fig. 11)")
    p.add_argument("--jobs", type=int, default=80)
    p.add_argument("--span-hours", type=float, default=12.0)
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes (1 = in-process serial)")
    p.add_argument("--out", required=True,
                   help="results directory (JSONL per run)")
    p.add_argument("--resume", action="store_true",
                   help="skip runs whose result is already on disk")
    p.add_argument("--max-attempts", type=int, default=2,
                   help="per-run attempt budget before quarantine")
    p.add_argument("--run-timeout", type=float, default=None,
                   help="per-run wall-clock budget in seconds "
                        "(default: unlimited)")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "serve",
        help="run a live scheduling-service master (streamed submissions)",
        parents=[
            _policy_parent(),
            _workload_parent(),
            _faults_parent(),
            _endpoint_parent(),
            _clock_parent(),
        ],
    )
    _add_cluster_args(p)
    p.add_argument("--jobs", type=int, default=80,
                   help="run-spec jobs axis (tenant split only; the "
                        "actual jobs arrive as SUBMIT frames)")
    p.add_argument("--trace", help=argparse.SUPPRESS)
    p.add_argument("--output", help="write the drained result JSON here")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "submit",
        help="stream a scenario into a running master (load generator)",
        parents=[
            _workload_parent(),
            _endpoint_parent(),
            _clock_parent(),
        ],
    )
    _add_cluster_args(p)
    p.add_argument("--trace", help="trace JSON (generated if omitted)")
    p.add_argument("--jobs", type=int, default=80)
    p.add_argument("--connect-timeout", type=float, default=30.0,
                   metavar="SECONDS",
                   help="how long to wait for the master's port "
                        "file/socket to come up")
    p.add_argument("--output", help="write the drained result JSON here "
                                    "(byte-identical to `repro simulate "
                                    "--output` of the same spec under "
                                    "--virtual-clock)")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser(
        "faults", help="list and inspect fault-injection plans"
    )
    fsub = p.add_subparsers(dest="faults_command", required=True)

    f = fsub.add_parser("list", help="table of registered fault plans")
    f.set_defaults(func=cmd_faults_list)

    f = fsub.add_parser("show", help="rules of one fault plan")
    f.add_argument("name", help="plan name or file:<plan.json>")
    f.set_defaults(func=cmd_faults_show)

    p = sub.add_parser(
        "workload", help="list, inspect and materialize workload scenarios"
    )
    wsub = p.add_subparsers(dest="workload_command", required=True)

    w = wsub.add_parser("list", help="table of registered scenarios")
    w.set_defaults(func=cmd_workload_list)

    w = wsub.add_parser("show", help="arrival/mix details of one scenario")
    w.add_argument("name")
    w.set_defaults(func=cmd_workload_show)

    w = wsub.add_parser(
        "generate",
        help="build a scenario's trace and save it as native JSON "
             "(also converts replay:<csv/jsonl> logs)",
    )
    w.add_argument("name")
    _add_cluster_args(w)
    w.add_argument("--jobs", type=int, default=80)
    w.add_argument("--span-hours", type=float, default=12.0,
                   help="window length (scenario overrides win, "
                        "e.g. diurnal-3d spans 3 days)")
    w.add_argument("--plans", choices=["random", "best"], default="random")
    w.add_argument("--output", required=True)
    w.set_defaults(func=cmd_workload_generate)

    p = sub.add_parser("profile", help="fit a performance model for a model")
    _add_cluster_args(p)
    p.add_argument("--model", default="gpt2-1.5b")
    p.set_defaults(func=cmd_profile)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
