"""Multi-dimensional resource vectors.

Rubick schedules three resource types per job — GPUs, CPUs and host memory
(paper §5.2) — plus it reasons about network bandwidth through the performance
model.  :class:`ResourceVector` is the common currency passed between the
scheduler, the cluster substrate and the memory estimator.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=False)
class ResourceVector:
    """An amount of (GPU, CPU, host-memory) resources.

    GPUs and CPUs are integer counts; host memory is in bytes.  The vector is
    immutable — arithmetic returns new vectors — so allocations can be shared
    safely across scheduler snapshots.

    Vectors may be *negative*: scheduling math uses them as deltas and
    deficits.  Non-negativity is an allocation-boundary invariant, enforced
    where vectors meet capacity (``Node.allocate``); use
    :meth:`require_non_negative` to assert it explicitly.
    """

    gpus: int = 0
    cpus: int = 0
    host_mem: float = 0.0

    def require_non_negative(self) -> "ResourceVector":
        """Assert every dimension is >= 0 (allocation-boundary invariant)."""
        if self.gpus < 0 or self.cpus < 0 or self.host_mem < 0:
            raise ValueError(f"resource amounts must be non-negative: {self}")
        return self

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.gpus + other.gpus,
            self.cpus + other.cpus,
            self.host_mem + other.host_mem,
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.gpus - other.gpus,
            self.cpus - other.cpus,
            self.host_mem - other.host_mem,
        )

    def clamp_floor(self) -> "ResourceVector":
        """Clamp each dimension at zero (useful after speculative subtraction)."""
        return ResourceVector(
            max(self.gpus, 0), max(self.cpus, 0), max(self.host_mem, 0.0)
        )

    # ------------------------------------------------------------------
    # Comparisons (componentwise partial order)
    # ------------------------------------------------------------------
    def fits_within(self, other: "ResourceVector") -> bool:
        """True iff every dimension of ``self`` is <= the same dimension of ``other``."""
        return (
            self.gpus <= other.gpus
            and self.cpus <= other.cpus
            and self.host_mem <= other.host_mem + 1e-6
        )

    def dominates(self, other: "ResourceVector") -> bool:
        """True iff every dimension of ``self`` is >= that of ``other``."""
        return other.fits_within(self)

    @property
    def is_zero(self) -> bool:
        return self.gpus == 0 and self.cpus == 0 and self.host_mem <= 0.0

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @staticmethod
    def zero() -> "ResourceVector":
        # Immutable, so one shared instance serves every caller; zero() is
        # on the scheduler's per-round hot path (share defaults, fold seeds).
        return _ZERO

    def __repr__(self) -> str:  # compact, log-friendly
        from repro.units import fmt_bytes

        return (
            f"Res(gpu={self.gpus}, cpu={self.cpus}, mem={fmt_bytes(self.host_mem)})"
        )


_ZERO = ResourceVector(0, 0, 0.0)
