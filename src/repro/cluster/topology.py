"""Cluster topology specs: node shapes and interconnect bandwidths.

Defaults mirror the paper's evaluation cluster (§7): 8 servers, each with
8 NVIDIA A800-80GB GPUs, 96 vCPUs, 1,600 GB host memory, 400 GB/s NVLink and
100 GB/s inter-node RDMA.  PCIe gen4 x16 (~32 GB/s) connects GPU and host for
ZeRO-Offload traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import GB, GiB


@dataclass(frozen=True)
class NodeSpec:
    """Hardware shape of one server."""

    num_gpus: int = 8
    num_cpus: int = 96
    host_mem: float = 1600 * GB
    gpu_mem: float = 80 * GiB
    #: Memory the runtime (CUDA context, framework, fragmentation slack)
    #: reserves on each GPU before model state is placed.
    gpu_mem_reserved: float = 2 * GiB
    intra_bw: float = 400 * GB  # NVLink, bytes/s
    pcie_bw: float = 32 * GB  # host <-> device, bytes/s

    @property
    def usable_gpu_mem(self) -> float:
        """GPU memory available to model state after the runtime reserve."""
        return self.gpu_mem - self.gpu_mem_reserved

    @property
    def cpus_per_gpu(self) -> float:
        return self.num_cpus / self.num_gpus


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of :class:`NodeSpec` servers."""

    num_nodes: int = 8
    node: NodeSpec = NodeSpec()
    inter_bw: float = 100 * GB  # RDMA, bytes/s

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("cluster must have at least one node")

    @property
    def total_gpus(self) -> int:
        return self.num_nodes * self.node.num_gpus

    @property
    def total_cpus(self) -> int:
        return self.num_nodes * self.node.num_cpus

    @property
    def total_host_mem(self) -> float:
        return self.num_nodes * self.node.host_mem


#: The paper's 64-GPU A800 evaluation cluster.
PAPER_CLUSTER = ClusterSpec()


def single_node_cluster(num_gpus: int = 8) -> ClusterSpec:
    """A one-server cluster, used by the micro-benchmarks (Figs. 6–8)."""
    return ClusterSpec(num_nodes=1, node=NodeSpec(num_gpus=num_gpus))
