"""Runtime cluster state: per-node allocation bookkeeping.

The simulator owns one :class:`Cluster`; scheduling policies receive read
access (free-resource queries) and the simulator applies the policies'
placement decisions through :meth:`Cluster.apply` / :meth:`Cluster.release`.

Cluster dynamics (node failure/recovery, capacity scaling) go through
:meth:`Cluster.remove_node` / :meth:`Cluster.add_node`.  A removed node is
marked *down* in place rather than deleted: node ids are positional indices
into ``nodes`` throughout the scheduler layer (``FreePool``, Rubick's
``_RoundState``), so the list only ever grows.  A down node advertises zero
capacity — every free/used/placement query and first-fit packing loop then
naturally excludes it without any scheduler-side special-casing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.placement import Placement
from repro.cluster.resources import ResourceVector
from repro.cluster.topology import ClusterSpec, NodeSpec
from repro.errors import ClusterDynamicsError, PlacementError


@dataclass
class Node:
    """One server with live per-job allocations."""

    node_id: int
    spec: NodeSpec
    allocations: dict[str, ResourceVector] = field(default_factory=dict)
    #: False while the node is failed/decommissioned.  Down nodes advertise
    #: zero capacity, so free-resource queries and packing skip them.
    up: bool = True

    @property
    def capacity(self) -> ResourceVector:
        if not self.up:
            return ResourceVector.zero()
        return ResourceVector(
            gpus=self.spec.num_gpus,
            cpus=self.spec.num_cpus,
            host_mem=self.spec.host_mem,
        )

    @property
    def used(self) -> ResourceVector:
        gpus = cpus = 0
        host_mem = 0.0
        for share in self.allocations.values():
            gpus += share.gpus
            cpus += share.cpus
            host_mem += share.host_mem
        return ResourceVector(gpus, cpus, host_mem)

    @property
    def free(self) -> ResourceVector:
        return (self.capacity - self.used).clamp_floor()

    def allocate(self, job_id: str, share: ResourceVector) -> None:
        """Add (or extend) a job's share on this node; raises if over capacity."""
        share.require_non_negative()
        current = self.allocations.get(job_id, ResourceVector.zero())
        proposed = current + share
        if not (self.used - current + proposed).fits_within(self.capacity):
            raise PlacementError(
                f"node {self.node_id}: allocating {share} for {job_id} "
                f"exceeds capacity (used={self.used}, cap={self.capacity})"
            )
        self.allocations[job_id] = proposed

    def set_allocation(self, job_id: str, share: ResourceVector) -> None:
        """Replace a job's share on this node (removing it if zero)."""
        current = self.allocations.pop(job_id, ResourceVector.zero())
        if not share.is_zero:
            if not (self.used + share).fits_within(self.capacity):
                self.allocations[job_id] = current  # roll back
                raise PlacementError(
                    f"node {self.node_id}: setting {share} for {job_id} "
                    f"exceeds capacity"
                )
            self.allocations[job_id] = share

    def release(self, job_id: str) -> ResourceVector:
        """Remove a job from this node, returning what it held."""
        return self.allocations.pop(job_id, ResourceVector.zero())


class Cluster:
    """Live cluster: topology spec plus per-node allocation state."""

    def __init__(self, spec: ClusterSpec):
        self.spec = spec
        self.nodes: list[Node] = [
            Node(node_id=i, spec=spec.node) for i in range(spec.num_nodes)
        ]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_up_nodes(self) -> int:
        return sum(1 for node in self.nodes if node.up)

    @property
    def total(self) -> ResourceVector:
        """Live capacity: up nodes only (the cluster is homogeneous).

        Computed as ``num_up × node shape`` rather than a per-node float
        sum so an all-up cluster matches the spec-derived totals exactly.
        """
        up = self.num_up_nodes
        return ResourceVector(
            gpus=up * self.spec.node.num_gpus,
            cpus=up * self.spec.node.num_cpus,
            host_mem=up * self.spec.node.host_mem,
        )

    @property
    def free(self) -> ResourceVector:
        gpus = cpus = 0
        host_mem = 0.0
        for node in self.nodes:
            node_free = node.free
            gpus += node_free.gpus
            cpus += node_free.cpus
            host_mem += node_free.host_mem
        return ResourceVector(gpus, cpus, host_mem)

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def placement_of(self, job_id: str) -> Placement:
        """The placement a job currently holds (possibly empty)."""
        shares = {
            node.node_id: node.allocations[job_id]
            for node in self.nodes
            if job_id in node.allocations
        }
        return Placement(shares)

    def jobs_on(self, node_id: int) -> list[str]:
        return sorted(self.nodes[node_id].allocations)

    def all_job_ids(self) -> set[str]:
        ids: set[str] = set()
        for node in self.nodes:
            ids.update(node.allocations)
        return ids

    def gpu_utilization(self) -> float:
        """Fraction of *live* cluster GPUs currently allocated."""
        total = self.total.gpus
        used = total - self.free.gpus
        return used / total if total else 0.0

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def remove_node(self, node_id: int) -> list[str]:
        """Take a node down (failure/decommission), evicting its jobs.

        Every job with a share on the node loses its *entire* placement —
        a distributed job cannot keep running with a missing gang member —
        and the node is marked down in place (ids stay positional).
        Returns the evicted job ids in deterministic (sorted) order; the
        simulator re-queues them through its ``_requeue`` path.
        """
        try:
            node = self.nodes[node_id]
        except IndexError:
            raise ClusterDynamicsError(
                f"cannot remove node {node_id}: cluster has "
                f"{len(self.nodes)} nodes"
            ) from None
        if not node.up:
            raise ClusterDynamicsError(
                f"cannot remove node {node_id}: already down"
            )
        victims = sorted(node.allocations)
        for job_id in victims:
            self.release(job_id)
        node.up = False
        return victims

    def add_node(self, node_id: int | None = None) -> int:
        """Bring a node up: recover a down node, or commission a new one.

        With ``node_id`` the (down) node recovers under its old id; with
        ``None`` a fresh node of the cluster's homogeneous shape is
        appended (capacity scale-up) and its new id returned.
        """
        if node_id is None:
            node = Node(node_id=len(self.nodes), spec=self.spec.node)
            self.nodes.append(node)
            return node.node_id
        try:
            node = self.nodes[node_id]
        except IndexError:
            raise ClusterDynamicsError(
                f"cannot recover node {node_id}: cluster has "
                f"{len(self.nodes)} nodes"
            ) from None
        if node.up:
            raise ClusterDynamicsError(
                f"cannot recover node {node_id}: already up"
            )
        node.up = True
        return node_id

    def apply(self, job_id: str, placement: Placement) -> None:
        """Set a job's allocation to exactly ``placement`` (atomic)."""
        previous = self.placement_of(job_id)
        self.release(job_id)
        try:
            for node_id, share in placement.shares.items():
                self.nodes[node_id].allocate(job_id, share)
        except PlacementError:
            # Roll back to the previous placement before re-raising so the
            # cluster never ends up in a partially-applied state.
            self.release(job_id)
            for node_id, share in previous.shares.items():
                self.nodes[node_id].allocate(job_id, share)
            raise

    def release(self, job_id: str) -> None:
        for node in self.nodes:
            node.release(job_id)
