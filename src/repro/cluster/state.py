"""Runtime cluster state: per-node allocation bookkeeping.

The simulator owns one :class:`Cluster`; scheduling policies receive read
access (free-resource queries) and the simulator applies the policies'
placement decisions through :meth:`Cluster.apply` / :meth:`Cluster.release`.

Cluster dynamics (node failure/recovery, capacity scaling) go through
:meth:`Cluster.remove_node` / :meth:`Cluster.add_node`.  A removed node is
marked *down* in place rather than deleted: node ids are positional indices
into ``nodes`` throughout the scheduler layer (``FreePool``, Rubick's
``_RoundState``), so the list only ever grows.  A down node advertises zero
capacity — every free/used/placement query and first-fit packing loop then
naturally excludes it without any scheduler-side special-casing.

Cluster-level aggregates (``free``, ``total``, ``gpu_utilization``,
``placement_of``, ``all_job_ids``, ``release``) are served from an
array-backed :class:`~repro.cluster.soa.ClusterIndex` mirror kept in exact
lockstep with the object graph: every :class:`Node` mutation fires a
listener hook the owning cluster wires at construction.  Nodes remain the
source of truth — the mirror only changes the *cost* of the queries
(O(num_nodes) scans become O(1)–O(job footprint)), never their results
(integer aggregates are bit-identical; see ``soa.py`` for the float
host-memory tolerance).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.placement import Placement
from repro.cluster.resources import ResourceVector
from repro.cluster.soa import ClusterIndex, FreeGpuIndex
from repro.cluster.topology import ClusterSpec, NodeSpec
from repro.errors import ClusterDynamicsError, PlacementError


@dataclass
class Node:
    """One server with live per-job allocations."""

    node_id: int
    spec: NodeSpec
    allocations: dict[str, ResourceVector] = field(default_factory=dict)
    #: False while the node is failed/decommissioned.  Down nodes advertise
    #: zero capacity, so free-resource queries and packing skip them.
    up: bool = True

    #: Mutation listener (the owning cluster's SoA mirror).  Excluded from
    #: __init__/__repr__/__eq__: standalone nodes work without one, and
    #: wiring identity must not affect node equality.
    _listener: ClusterIndex | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def capacity(self) -> ResourceVector:
        if not self.up:
            return ResourceVector.zero()
        return ResourceVector(
            gpus=self.spec.num_gpus,
            cpus=self.spec.num_cpus,
            host_mem=self.spec.host_mem,
        )

    @property
    def used(self) -> ResourceVector:
        gpus = cpus = 0
        host_mem = 0.0
        for share in self.allocations.values():
            gpus += share.gpus
            cpus += share.cpus
            host_mem += share.host_mem
        return ResourceVector(gpus, cpus, host_mem)

    @property
    def free(self) -> ResourceVector:
        return (self.capacity - self.used).clamp_floor()

    def _notify(
        self,
        job_id: str,
        old: ResourceVector | None,
        new: ResourceVector | None,
    ) -> None:
        listener = self._listener
        if listener is not None:
            listener.share_changed(self.node_id, job_id, old, new)

    def allocate(self, job_id: str, share: ResourceVector) -> None:
        """Add (or extend) a job's share on this node; raises if over capacity."""
        share.require_non_negative()
        old = self.allocations.get(job_id)
        current = old if old is not None else ResourceVector.zero()
        proposed = current + share
        if not (self.used - current + proposed).fits_within(self.capacity):
            raise PlacementError(
                f"node {self.node_id}: allocating {share} for {job_id} "
                f"exceeds capacity (used={self.used}, cap={self.capacity})"
            )
        self.allocations[job_id] = proposed
        self._notify(job_id, old, proposed)

    def set_allocation(self, job_id: str, share: ResourceVector) -> None:
        """Replace a job's share on this node (removing it if zero)."""
        old = self.allocations.pop(job_id, None)
        current = old if old is not None else ResourceVector.zero()
        if share.is_zero:
            if old is not None:
                self._notify(job_id, old, None)
            return
        if not (self.used + share).fits_within(self.capacity):
            self.allocations[job_id] = current  # roll back
            if old is None:
                # Faithful to the pre-mirror behaviour: the rollback path
                # materialises a zero share for a previously-absent job.
                self._notify(job_id, None, current)
            raise PlacementError(
                f"node {self.node_id}: setting {share} for {job_id} "
                f"exceeds capacity"
            )
        self.allocations[job_id] = share
        self._notify(job_id, old, share)

    def release(self, job_id: str) -> ResourceVector:
        """Remove a job from this node, returning what it held."""
        old = self.allocations.pop(job_id, None)
        if old is None:
            return ResourceVector.zero()
        self._notify(job_id, old, None)
        return old


class Cluster:
    """Live cluster: topology spec plus per-node allocation state."""

    def __init__(self, spec: ClusterSpec):
        self.spec = spec
        self.nodes: list[Node] = [
            Node(node_id=i, spec=spec.node) for i in range(spec.num_nodes)
        ]
        self._index = ClusterIndex(spec.node, spec.num_nodes)
        for node in self.nodes:
            node._listener = self._index

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def index(self) -> ClusterIndex:
        """The array-backed mirror (read-only for callers)."""
        return self._index

    @property
    def free_gpu_index(self) -> FreeGpuIndex:
        """Per-node free-GPU bucket index (largest-free / first-fit queries)."""
        return self._index.free_gpus

    @property
    def num_up_nodes(self) -> int:
        return self._index.up_count

    @property
    def total(self) -> ResourceVector:
        """Live capacity: up nodes only (the cluster is homogeneous).

        Computed as ``num_up × node shape`` rather than a per-node float
        sum so an all-up cluster matches the spec-derived totals exactly.
        """
        up = self.num_up_nodes
        return ResourceVector(
            gpus=up * self.spec.node.num_gpus,
            cpus=up * self.spec.node.num_cpus,
            host_mem=up * self.spec.node.host_mem,
        )

    @property
    def free(self) -> ResourceVector:
        gpus, cpus, host_mem = self._index.free_totals()
        return ResourceVector(gpus, cpus, max(host_mem, 0.0))

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def placement_of(self, job_id: str) -> Placement:
        """The placement a job currently holds (possibly empty)."""
        on_nodes = self._index.nodes_of(job_id)
        if not on_nodes:
            return Placement({})
        return Placement(
            {node_id: on_nodes[node_id] for node_id in sorted(on_nodes)}
        )

    def jobs_on(self, node_id: int) -> list[str]:
        return sorted(self.nodes[node_id].allocations)

    def all_job_ids(self) -> set[str]:
        return set(self._index.jobs)

    def gpu_utilization(self) -> float:
        """Fraction of *live* cluster GPUs currently allocated."""
        total = self.num_up_nodes * self.spec.node.num_gpus
        used = self._index.used_gpus_total
        return used / total if total else 0.0

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def remove_node(self, node_id: int) -> list[str]:
        """Take a node down (failure/decommission), evicting its jobs.

        Every job with a share on the node loses its *entire* placement —
        a distributed job cannot keep running with a missing gang member —
        and the node is marked down in place (ids stay positional).
        Returns the evicted job ids in deterministic (sorted) order; the
        simulator re-queues them through its ``_requeue`` path.
        """
        try:
            node = self.nodes[node_id]
        except IndexError:
            raise ClusterDynamicsError(
                f"cannot remove node {node_id}: cluster has "
                f"{len(self.nodes)} nodes"
            ) from None
        if not node.up:
            raise ClusterDynamicsError(
                f"cannot remove node {node_id}: already down"
            )
        victims = sorted(node.allocations)
        for job_id in victims:
            self.release(job_id)
        node.up = False
        self._index.node_down(node_id)
        return victims

    def add_node(self, node_id: int | None = None) -> int:
        """Bring a node up: recover a down node, or commission a new one.

        With ``node_id`` the (down) node recovers under its old id; with
        ``None`` a fresh node of the cluster's homogeneous shape is
        appended (capacity scale-up) and its new id returned.
        """
        if node_id is None:
            node = Node(node_id=len(self.nodes), spec=self.spec.node)
            node._listener = self._index
            self.nodes.append(node)
            self._index.append_node()
            return node.node_id
        try:
            node = self.nodes[node_id]
        except IndexError:
            raise ClusterDynamicsError(
                f"cannot recover node {node_id}: cluster has "
                f"{len(self.nodes)} nodes"
            ) from None
        if node.up:
            raise ClusterDynamicsError(
                f"cannot recover node {node_id}: already up"
            )
        node.up = True
        self._index.node_up(node_id)
        return node_id

    def apply(self, job_id: str, placement: Placement) -> None:
        """Set a job's allocation to exactly ``placement`` (atomic)."""
        previous = self.placement_of(job_id)
        self.release(job_id)
        try:
            for node_id, share in placement.shares.items():
                self.nodes[node_id].allocate(job_id, share)
        except PlacementError:
            # Roll back to the previous placement before re-raising so the
            # cluster never ends up in a partially-applied state.
            self.release(job_id)
            for node_id, share in previous.shares.items():
                self.nodes[node_id].allocate(job_id, share)
            raise

    def release(self, job_id: str) -> None:
        on_nodes = self._index.nodes_of(job_id)
        if not on_nodes:
            return  # common case at scale: releasing a job that holds nothing
        for node_id in sorted(on_nodes):
            self.nodes[node_id].release(job_id)
