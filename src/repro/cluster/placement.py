"""Job placements: which resources a job holds on which nodes.

A placement is the scheduler's output for one job — per-node GPU/CPU/memory
shares — and the performance model's input (it determines whether DP/TP/PP
communication crosses the slow inter-node links).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.resources import ResourceVector
from repro.cluster.topology import ClusterSpec
from repro.errors import PlacementError


@dataclass(frozen=True)
class Placement:
    """Per-node resource shares held by one job.

    ``shares`` maps node id -> :class:`ResourceVector`.  Empty shares are not
    stored.  Placements are immutable value objects; the scheduler builds new
    ones rather than mutating.
    """

    shares: dict[int, ResourceVector] = field(default_factory=dict)

    def __post_init__(self) -> None:
        cleaned = {}
        for node_id, share in self.shares.items():
            share.require_non_negative()
            if not share.is_zero:
                cleaned[node_id] = share
        object.__setattr__(self, "shares", cleaned)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def total(self) -> ResourceVector:
        # Placements are immutable, so the fold is computed once and cached
        # (the simulator reads `total` on every accounting step).  The cache
        # attribute is not a dataclass field: equality and repr ignore it.
        try:
            return self._total_cache  # type: ignore[attr-defined]
        except AttributeError:
            gpus = cpus = 0
            host_mem = 0.0
            for share in self.shares.values():
                gpus += share.gpus
                cpus += share.cpus
                host_mem += share.host_mem
            total = ResourceVector(gpus, cpus, host_mem)
            object.__setattr__(self, "_total_cache", total)  # repro-lint: disable=RPL006 -- idempotent pure-value cache; equality/repr exempt by design
            return total

    @property
    def num_nodes(self) -> int:
        """Nodes on which the job holds at least one GPU."""
        return sum(1 for share in self.shares.values() if share.gpus > 0)

    @property
    def gpus_per_node(self) -> list[int]:
        """GPU counts per occupied node, descending."""
        return sorted(
            (share.gpus for share in self.shares.values() if share.gpus > 0),
            reverse=True,
        )

    @property
    def min_gpus_per_node(self) -> int:
        """Smallest per-node GPU share (bounds the tensor-parallel degree)."""
        counts = self.gpus_per_node
        return counts[-1] if counts else 0

    @property
    def is_single_node(self) -> bool:
        return self.num_nodes <= 1

    @property
    def is_empty(self) -> bool:
        return self.total.is_zero

    def node_ids(self) -> list[int]:
        return sorted(self.shares)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def empty() -> "Placement":
        return Placement({})

    @staticmethod
    def single(node_id: int, share: ResourceVector) -> "Placement":
        return Placement({node_id: share})

    @staticmethod
    def packed(
        cluster: ClusterSpec,
        gpus: int,
        cpus_per_gpu: float = 1.0,
        host_mem_per_gpu: float = 0.0,
        start_node: int = 0,
    ) -> "Placement":
        """Canonical densely-packed placement of ``gpus`` GPUs.

        Fills whole nodes first, in node-id order starting at ``start_node``.
        Used to build resource-sensitivity curves, which evaluate hypothetical
        allocations before any concrete node search has run.
        """
        if gpus < 0:
            raise PlacementError("cannot place a negative GPU count")
        if gpus > cluster.total_gpus:
            raise PlacementError(
                f"requested {gpus} GPUs exceeds cluster capacity "
                f"{cluster.total_gpus}"
            )
        shares: dict[int, ResourceVector] = {}
        remaining = gpus
        node_id = start_node
        while remaining > 0:
            take = min(remaining, cluster.node.num_gpus)
            shares[node_id] = ResourceVector(
                gpus=take,
                cpus=int(round(take * cpus_per_gpu)),
                host_mem=take * host_mem_per_gpu,
            )
            remaining -= take
            node_id += 1
        return Placement(shares)

    def with_share(self, node_id: int, share: ResourceVector) -> "Placement":
        """A copy of this placement with the share on ``node_id`` replaced."""
        shares = dict(self.shares)
        if share.is_zero:
            shares.pop(node_id, None)
        else:
            shares[node_id] = share
        return Placement(shares)

    def __repr__(self) -> str:
        parts = ", ".join(
            f"n{node_id}:{share.gpus}g/{share.cpus}c"
            for node_id, share in sorted(self.shares.items())
        )
        return f"Placement({parts})"
