"""Cluster dynamics: node failure/recovery and capacity-scaling events.

Every experiment before this subsystem assumed an immutable cluster.  Real
clusters churn: nodes fail and come back, operators commission and
decommission capacity mid-day.  This module describes that churn as a
deterministic stream of :class:`ClusterEvent` values that the simulator
injects through its event calendar and applies via
:meth:`~repro.cluster.state.Cluster.remove_node` /
:meth:`~repro.cluster.state.Cluster.add_node`:

* ``fail`` / ``recover`` — one node goes down (evicting every job with a
  share on it) and later comes back with the same node id;
* ``scale-up`` / ``scale-down`` — ``count`` whole nodes are commissioned
  (appended with fresh ids) or decommissioned (highest-id up nodes first,
  evicting their jobs).

*How* events are produced is pluggable, mirroring the arrival processes of
``repro.workloads.arrivals``: frozen, serializable process configs with a
single ``events(seed, span, cluster)`` contract —

* :class:`NoDynamics` — the empty stream (the digest-transparent default:
  a run with no events is byte-identical to a pre-subsystem run);
* :class:`FixedDynamics` — deterministic replay of an explicit event list
  (also reachable as ``file:<path>`` for JSON event documents);
* :class:`RandomFailures` — per-node Poisson failures (MTBF/MTTR), each
  node drawing from its own derived RNG stream so profiles compose
  stably under capacity scaling;
* :class:`ScaleSchedule` — capacity deltas at span fractions (e.g. "two
  extra nodes at mid-day").

Named profiles live in a registry (``flaky``, ``scaleout-midday``, …) that
``RunSpec.dynamics`` / ``Scenario.dynamics`` / ``--dynamics`` resolve
against, exactly like workload scenarios.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, ClassVar

from repro.errors import ClusterDynamicsError
from repro.rng import rng_for
from repro.units import HOUR, MINUTE

#: Event kinds (the strings are the serialization format).
NODE_FAIL = "fail"
NODE_RECOVER = "recover"
SCALE_UP = "scale-up"
SCALE_DOWN = "scale-down"
EVENT_KINDS = (NODE_FAIL, NODE_RECOVER, SCALE_UP, SCALE_DOWN)

#: The profile name meaning "no cluster dynamics" (always registered).
NO_DYNAMICS_NAME = "none"

#: Prefix of dynamically-resolved event-file profiles.
FILE_PREFIX = "file:"


@dataclass(frozen=True)
class ClusterEvent:
    """One change to cluster capacity at an absolute simulation time.

    ``fail``/``recover`` carry the ``node_id`` they act on;
    ``scale-up``/``scale-down`` carry a node ``count`` instead.
    """

    time: float
    kind: str
    node_id: int | None = None
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ClusterDynamicsError(
                f"unknown cluster event kind {self.kind!r}; "
                f"known: {EVENT_KINDS}"
            )
        if self.time < 0:
            raise ClusterDynamicsError(
                f"cluster event time must be >= 0, got {self.time}"
            )
        if self.kind in (NODE_FAIL, NODE_RECOVER) and self.node_id is None:
            raise ClusterDynamicsError(
                f"{self.kind} event needs a node_id"
            )
        if self.kind in (SCALE_UP, SCALE_DOWN) and self.count <= 0:
            raise ClusterDynamicsError(
                f"{self.kind} event needs a positive count, got {self.count}"
            )

    def describe(self) -> str:
        target = (
            f"node {self.node_id}"
            if self.node_id is not None
            else f"{self.count} node(s)"
        )
        return f"t={self.time:.0f}s {self.kind} {target}"


def _sort_events(events) -> tuple[ClusterEvent, ...]:
    """Stable deterministic order: time, then kind, then target."""
    return tuple(
        sorted(
            events,
            key=lambda e: (
                e.time,
                EVENT_KINDS.index(e.kind),
                -1 if e.node_id is None else e.node_id,
                e.count,
            ),
        )
    )


@dataclass(frozen=True)
class ClusterDynamics:
    """Base class: a deterministic producer of cluster events.

    ``events`` must be a pure function of ``(seed, span, cluster)`` — the
    same triple always yields the same stream, bit for bit, so persisted
    sweep results stay reproducible across processes and Python versions.
    """

    #: Registry key of the concrete process (used for (de)serialization).
    kind: ClassVar[str] = "abstract"

    def events(self, *, seed: int, span: float, cluster) -> tuple[ClusterEvent, ...]:
        """Sorted cluster events for a run of ``span`` seconds."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human summary for CLI listings."""
        fields = ", ".join(
            f"{name}={value!r}" for name, value in asdict(self).items()
        )
        return f"{self.kind}({fields})"


@dataclass(frozen=True)
class NoDynamics(ClusterDynamics):
    """The empty event stream — an immutable cluster (the default)."""

    kind: ClassVar[str] = "none"

    def events(self, *, seed: int, span: float, cluster) -> tuple[ClusterEvent, ...]:
        return ()


@dataclass(frozen=True)
class FixedDynamics(ClusterDynamics):
    """Deterministic replay of an explicit event list.

    Times are absolute simulation seconds; the stream ignores the run's
    seed and span, so the same profile replays identically under every
    workload (the replay analogue of ``FixedArrivals``).
    """

    kind: ClassVar[str] = "fixed"

    fixed_events: tuple[ClusterEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "fixed_events", _sort_events(self.fixed_events)
        )

    def events(self, *, seed: int, span: float, cluster) -> tuple[ClusterEvent, ...]:
        return self.fixed_events


@dataclass(frozen=True)
class RandomFailures(ClusterDynamics):
    """Per-node Poisson failures with exponential recovery times.

    Each node draws failure/recovery intervals from its *own* RNG stream
    (derived from ``(seed, node_id)``), so scaling the cluster up or down
    never reshuffles another node's failure history.  Failures stop
    arriving after ``span`` but an in-flight recovery may complete later —
    jobs still active past the window need their nodes back.
    """

    kind: ClassVar[str] = "random-failures"

    #: Mean time between failures of one node (seconds).
    mtbf: float = 6 * HOUR
    #: Mean time to recovery after a failure (seconds).
    mttr: float = 30 * MINUTE
    #: Floor on recovery time: a failed node is down at least this long.
    min_downtime: float = 5 * MINUTE

    def __post_init__(self) -> None:
        if self.mtbf <= 0 or self.mttr <= 0:
            raise ClusterDynamicsError(
                f"mtbf and mttr must be positive, got "
                f"mtbf={self.mtbf}, mttr={self.mttr}"
            )
        if self.min_downtime < 0:
            raise ClusterDynamicsError(
                f"min_downtime must be >= 0, got {self.min_downtime}"
            )

    def events(self, *, seed: int, span: float, cluster) -> tuple[ClusterEvent, ...]:
        out: list[ClusterEvent] = []
        for node_id in range(cluster.num_nodes):
            rng = rng_for(seed, "cluster-dynamics", self.kind, node_id)
            t = 0.0
            while True:
                t += float(rng.exponential(self.mtbf))
                if t >= span:
                    break
                down = max(float(rng.exponential(self.mttr)), self.min_downtime)
                out.append(ClusterEvent(time=t, kind=NODE_FAIL, node_id=node_id))
                t += down
                out.append(
                    ClusterEvent(time=t, kind=NODE_RECOVER, node_id=node_id)
                )
        return _sort_events(out)


@dataclass(frozen=True)
class ScaleSchedule(ClusterDynamics):
    """Capacity deltas at span fractions (operator-driven scaling).

    ``steps`` entries are ``(span_fraction, node_delta)``: a positive delta
    commissions that many fresh nodes, a negative one decommissions (and
    evicts) the highest-id up nodes.  The schedule is deterministic — no
    randomness is consumed.
    """

    kind: ClassVar[str] = "scale-schedule"

    steps: tuple[tuple[float, int], ...] = ((0.5, 2),)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "steps", tuple(tuple(s) for s in self.steps)
        )
        for fraction, delta in self.steps:
            if not 0.0 <= fraction <= 1.0:
                raise ClusterDynamicsError(
                    f"scale step fraction must be in [0, 1], got {fraction}"
                )
            if delta == 0:
                raise ClusterDynamicsError("scale step delta must be nonzero")

    def events(self, *, seed: int, span: float, cluster) -> tuple[ClusterEvent, ...]:
        out = []
        for fraction, delta in self.steps:
            kind = SCALE_UP if delta > 0 else SCALE_DOWN
            out.append(
                ClusterEvent(time=fraction * span, kind=kind, count=abs(delta))
            )
        return _sort_events(out)


# ----------------------------------------------------------------------
# (De)serialization
# ----------------------------------------------------------------------
DYNAMICS_KINDS: dict[str, type[ClusterDynamics]] = {
    cls.kind: cls
    for cls in (NoDynamics, FixedDynamics, RandomFailures, ScaleSchedule)
}

EVENTS_FORMAT_VERSION = 1


def event_to_dict(event: ClusterEvent) -> dict[str, Any]:
    data: dict[str, Any] = {"time": event.time, "kind": event.kind}
    if event.node_id is not None:
        data["node_id"] = event.node_id
    if event.kind in (SCALE_UP, SCALE_DOWN):
        data["count"] = event.count
    return data


def event_from_dict(data: dict[str, Any]) -> ClusterEvent:
    try:
        return ClusterEvent(
            time=float(data["time"]),
            kind=str(data["kind"]),
            node_id=(
                int(data["node_id"]) if data.get("node_id") is not None else None
            ),
            count=int(data.get("count", 1)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ClusterDynamicsError(f"malformed cluster event {data!r}: {exc}")


def dynamics_to_dict(dynamics: ClusterDynamics) -> dict[str, Any]:
    data: dict[str, Any] = {"kind": dynamics.kind}
    if isinstance(dynamics, FixedDynamics):
        data["events"] = [event_to_dict(e) for e in dynamics.fixed_events]
    else:
        data.update(asdict(dynamics))
    return data


def dynamics_from_dict(data: dict[str, Any]) -> ClusterDynamics:
    kind = data.get("kind")
    cls = DYNAMICS_KINDS.get(kind)
    if cls is None:
        raise ClusterDynamicsError(
            f"unknown dynamics kind {kind!r}; known: {sorted(DYNAMICS_KINDS)}"
        )
    fields = {k: v for k, v in data.items() if k != "kind"}
    if cls is FixedDynamics:
        return FixedDynamics(
            fixed_events=tuple(
                event_from_dict(e) for e in fields.pop("events", ())
            )
        )
    if cls is ScaleSchedule and "steps" in fields:
        fields["steps"] = tuple(tuple(s) for s in fields["steps"])
    return cls(**fields)


def load_cluster_events(path: str | Path) -> FixedDynamics:
    """Load a ``file:<path>`` JSON event document as a replay profile."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ClusterDynamicsError(f"cannot read event file {path}: {exc}")
    version = data.get("format_version")
    if version != EVENTS_FORMAT_VERSION:
        raise ClusterDynamicsError(
            f"{path}: unsupported event format version {version!r} "
            f"(expected {EVENTS_FORMAT_VERSION})"
        )
    return FixedDynamics(
        fixed_events=tuple(event_from_dict(e) for e in data.get("events", ()))
    )


def save_cluster_events(
    dynamics: FixedDynamics, path: str | Path
) -> None:
    Path(path).write_text(
        json.dumps(
            {
                "format_version": EVENTS_FORMAT_VERSION,
                "events": [event_to_dict(e) for e in dynamics.fixed_events],
            },
            indent=1,
            allow_nan=False,
        )
    )


# ----------------------------------------------------------------------
# Named-profile registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, ClusterDynamics] = {}


def register_dynamics(
    name: str, dynamics: ClusterDynamics, *, replace: bool = False
) -> ClusterDynamics:
    """Add a named dynamics profile (``replace=True`` to overwrite)."""
    if name.startswith(FILE_PREFIX):
        raise ClusterDynamicsError(
            f"{FILE_PREFIX}<path> names are resolved dynamically and "
            "cannot be registered"
        )
    if name in _REGISTRY and not replace:
        raise ClusterDynamicsError(
            f"dynamics profile {name!r} already registered"
        )
    _REGISTRY[name] = dynamics
    return dynamics


def known_dynamics_names() -> tuple[str, ...]:
    return tuple(_REGISTRY)


def list_dynamics() -> tuple[tuple[str, ClusterDynamics], ...]:
    return tuple(_REGISTRY.items())


def resolve_dynamics(name: str) -> ClusterDynamics:
    """Look a profile up by name (``file:<path>`` resolves dynamically)."""
    if name.startswith(FILE_PREFIX):
        path = name[len(FILE_PREFIX):]
        if not path:
            raise ClusterDynamicsError(
                f"event-file profile needs a path: {FILE_PREFIX}<path>"
            )
        return load_cluster_events(path)
    dynamics = _REGISTRY.get(name)
    if dynamics is None:
        known = ", ".join(known_dynamics_names())
        raise ClusterDynamicsError(
            f"unknown dynamics profile {name!r}; known: {known}, "
            f"or {FILE_PREFIX}<path>"
        )
    return dynamics


#: Built-in profiles.
NO_DYNAMICS = register_dynamics(NO_DYNAMICS_NAME, NoDynamics())
register_dynamics("flaky", RandomFailures())
register_dynamics(
    "flaky-heavy", RandomFailures(mtbf=2 * HOUR, mttr=45 * MINUTE)
)
register_dynamics("scaleout-midday", ScaleSchedule(steps=((0.5, 2),)))
register_dynamics(
    "scale-cycle", ScaleSchedule(steps=((0.25, 2), (0.75, -2)))
)
