"""Cluster substrate: resources, topology, placements and live state."""

from repro.cluster.placement import Placement
from repro.cluster.resources import ResourceVector
from repro.cluster.state import Cluster, Node
from repro.cluster.topology import (
    PAPER_CLUSTER,
    ClusterSpec,
    NodeSpec,
    single_node_cluster,
)

__all__ = [
    "PAPER_CLUSTER",
    "Cluster",
    "ClusterSpec",
    "Node",
    "NodeSpec",
    "Placement",
    "ResourceVector",
    "single_node_cluster",
]
