"""Cluster substrate: resources, topology, placements, live state, dynamics."""

from repro.cluster.dynamics import (
    NO_DYNAMICS,
    NO_DYNAMICS_NAME,
    ClusterDynamics,
    ClusterEvent,
    FixedDynamics,
    NoDynamics,
    RandomFailures,
    ScaleSchedule,
    dynamics_from_dict,
    dynamics_to_dict,
    known_dynamics_names,
    list_dynamics,
    load_cluster_events,
    register_dynamics,
    resolve_dynamics,
    save_cluster_events,
)
from repro.cluster.placement import Placement
from repro.cluster.resources import ResourceVector
from repro.cluster.state import Cluster, Node
from repro.cluster.topology import (
    PAPER_CLUSTER,
    ClusterSpec,
    NodeSpec,
    single_node_cluster,
)

__all__ = [
    "NO_DYNAMICS",
    "NO_DYNAMICS_NAME",
    "PAPER_CLUSTER",
    "Cluster",
    "ClusterDynamics",
    "ClusterEvent",
    "ClusterSpec",
    "FixedDynamics",
    "NoDynamics",
    "Node",
    "NodeSpec",
    "Placement",
    "RandomFailures",
    "ResourceVector",
    "ScaleSchedule",
    "dynamics_from_dict",
    "dynamics_to_dict",
    "known_dynamics_names",
    "list_dynamics",
    "load_cluster_events",
    "register_dynamics",
    "resolve_dynamics",
    "save_cluster_events",
    "single_node_cluster",
]
