"""Array-backed cluster state: struct-of-arrays mirror + free-GPU index.

The object graph in :mod:`repro.cluster.state` is the source of truth for
*per-node* state (tests and the scheduler mutate :class:`Node` directly),
but every *cluster-level* aggregate used to be an O(num_nodes) scan:
``Cluster.free``, ``total``, ``num_up_nodes``, ``gpu_utilization``,
``placement_of``, ``all_job_ids``, ``release``.  At 8 nodes that is noise;
at 1024 nodes it dominates the simulator's hot loop.

:class:`ClusterIndex` mirrors the object graph as numpy struct-of-arrays
(per-node used gpus/cpus/host_mem columns, capacity columns, an up mask),
plus a job → {node_id: share} reverse index and an incrementally-maintained
:class:`FreeGpuIndex`.  The mirror is kept in *exact lockstep* through a
listener hook every :class:`Node` mutation fires — see DESIGN.md for the
lockstep contract:

* integer aggregates (GPU/CPU counts, node counts) are exact — integer
  addition is associative, so the incremental counters equal the
  brute-force scans bit-for-bit;
* the host-memory aggregate is float and accumulates in *operation* order
  rather than node order, so it may differ from a brute-force sum by ulps.
  Nothing on a scheduling decision path reads it (feasibility checks
  recompute per-node memory exactly from the object graph); it is reset to
  exact zero whenever a node drains so drift cannot accumulate across a
  run.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass

import numpy as np

from repro.cluster.resources import ResourceVector
from repro.cluster.topology import NodeSpec


class FreeGpuIndex:
    """Nodes bucketed by free-GPU count, each bucket sorted by node id.

    Iterating buckets from ``node_size`` down to 1 and each bucket in
    ascending-id order reproduces *exactly* the visit order of
    ``sorted(nodes, key=lambda n: n.free.gpus, reverse=True)`` (a stable
    sort ties back to list order, which is ascending node id) — the
    ordering contract every packing loop in the scheduler relies on.

    Updates are O(log bucket) via bisect; ``largest_free`` / ``first_fit``
    are O(node_size) worst case with node_size a small constant (8), which
    is the "O(log n) feasibility query" the round state and free pool need
    without the per-call O(n log n) sort.
    """

    __slots__ = ("node_size", "_buckets", "_key_of")

    def __init__(self, node_size: int):
        self.node_size = node_size
        self._buckets: list[list[int]] = [[] for _ in range(node_size + 1)]
        #: node_id -> bucket key it currently sits in (-1 = not tracked).
        self._key_of: list[int] = []

    @classmethod
    def from_array(cls, free: np.ndarray, node_size: int) -> "FreeGpuIndex":
        """Bulk-build from a per-node free-GPU array (vectorized, O(n))."""
        idx = cls(node_size)
        clamped = np.clip(free, 0, node_size)
        idx._key_of = clamped.astype(np.int64).tolist()
        for key in range(node_size + 1):
            idx._buckets[key] = np.flatnonzero(clamped == key).tolist()
        return idx

    def add(self, node_id: int, free_gpus: int) -> None:
        """Start tracking a node (ids must be added in ascending order)."""
        while len(self._key_of) <= node_id:
            self._key_of.append(-1)
        key = self._clamp(free_gpus)
        self._key_of[node_id] = key
        insort(self._buckets[key], node_id)

    def update(self, node_id: int, free_gpus: int) -> None:
        key = self._clamp(free_gpus)
        old = self._key_of[node_id]
        if key == old:
            return
        bucket = self._buckets[old]
        del bucket[self._index_in(bucket, node_id)]
        self._key_of[node_id] = key
        insort(self._buckets[key], node_id)

    def free_of(self, node_id: int) -> int:
        return self._key_of[node_id]

    def iter_ids_by_free_desc(self):
        """Node ids, most-free first, ascending id within equal free."""
        for key in range(self.node_size, -1, -1):
            yield from self._buckets[key]

    def iter_nonempty_desc(self):
        """Like :meth:`iter_ids_by_free_desc` but skips free == 0 nodes."""
        for key in range(self.node_size, 0, -1):
            yield from self._buckets[key]

    def largest_free(self) -> int:
        """The largest per-node free-GPU count (0 on a saturated cluster)."""
        for key in range(self.node_size, 0, -1):
            if self._buckets[key]:
                return key
        return 0

    def first_fit(self, gpus: int) -> int | None:
        """Lowest node id with at least ``gpus`` free, or None."""
        best: int | None = None
        for key in range(self._clamp(gpus), self.node_size + 1):
            bucket = self._buckets[key]
            if bucket and (best is None or bucket[0] < best):
                best = bucket[0]
        return best

    def _clamp(self, free_gpus: int) -> int:
        if free_gpus < 0:
            return 0
        return min(free_gpus, self.node_size)

    @staticmethod
    def _index_in(bucket: list[int], node_id: int) -> int:
        lo = bisect_left(bucket, node_id)
        if lo >= len(bucket) or bucket[lo] != node_id:
            raise KeyError(f"node {node_id} not in bucket")
        return lo

    # Testing hook: full-state equality against a brute-force rebuild.
    def snapshot(self) -> dict[int, list[int]]:
        return {k: list(b) for k, b in enumerate(self._buckets) if b}


@dataclass(frozen=True)
class SoaProbe:
    """One node's mirrored columns, for equality probes in tests."""

    used_gpus: int
    used_cpus: int
    used_mem: float
    cap_gpus: int
    cap_cpus: int
    cap_mem: float
    up: bool
    num_allocs: int


class ClusterIndex:
    """The struct-of-arrays mirror of one :class:`~repro.cluster.state.Cluster`.

    Maintained through :meth:`share_changed` / :meth:`node_down` /
    :meth:`node_up` / :meth:`append_node`, which the ``Cluster`` wires into
    its nodes' mutation hooks.  All reads are O(1) or O(size of the answer).
    """

    #: Grow the arrays in chunks so scale-up events don't reallocate per node.
    _GROW = 64

    def __init__(self, node_spec: NodeSpec, num_nodes: int):
        self.node_spec = node_spec
        self.num_nodes = num_nodes
        cap = max(num_nodes, self._GROW)
        self.used_gpus = np.zeros(cap, dtype=np.int64)
        self.used_cpus = np.zeros(cap, dtype=np.int64)
        self.used_mem = np.zeros(cap, dtype=np.float64)
        self.num_allocs = np.zeros(cap, dtype=np.int64)
        self.up = np.zeros(cap, dtype=bool)
        self.up[:num_nodes] = True
        # Cluster-level counters (ints exact; mem in operation order).
        self.up_count = num_nodes
        self.used_gpus_total = 0
        self.used_cpus_total = 0
        self.used_mem_total = 0.0
        #: job_id -> {node_id: share} — mirrors dict membership in
        #: ``Node.allocations`` (a zero share present there is present here).
        self.jobs: dict[str, dict[int, ResourceVector]] = {}
        self.free_gpus = FreeGpuIndex(node_spec.num_gpus)
        for node_id in range(num_nodes):
            self.free_gpus.add(node_id, node_spec.num_gpus)

    # ------------------------------------------------------------------
    # Lockstep maintenance (called from Node/Cluster mutation hooks)
    # ------------------------------------------------------------------
    def share_changed(
        self,
        node_id: int,
        job_id: str,
        old: ResourceVector | None,
        new: ResourceVector | None,
    ) -> None:
        """A node's allocation for ``job_id`` went ``old`` -> ``new``.

        ``None`` means absent from the node's allocation dict (so
        ``old=None`` is a fresh allocation and ``new=None`` a release).
        """
        og, oc, om = (old.gpus, old.cpus, old.host_mem) if old is not None else (0, 0, 0.0)
        ng, nc, nm = (new.gpus, new.cpus, new.host_mem) if new is not None else (0, 0, 0.0)
        dg = ng - og
        dc = nc - oc
        dm = nm - om
        if dg:
            g = int(self.used_gpus[node_id]) + dg
            self.used_gpus[node_id] = g
            self.used_gpus_total += dg
            if self.up[node_id]:
                self.free_gpus.update(node_id, self.node_spec.num_gpus - g)
        if dc:
            self.used_cpus[node_id] += dc
            self.used_cpus_total += dc
        if dm:
            self.used_mem[node_id] += dm
            self.used_mem_total += dm
        if new is None:
            if old is not None:
                self.num_allocs[node_id] -= 1
                on_node = self.jobs.get(job_id)
                if on_node is not None:
                    on_node.pop(node_id, None)
                    if not on_node:
                        del self.jobs[job_id]
                if self.num_allocs[node_id] == 0:
                    self._reset_drained(node_id)
        else:
            if old is None:
                self.num_allocs[node_id] += 1
            self.jobs.setdefault(job_id, {})[node_id] = new

    def _reset_drained(self, node_id: int) -> None:
        """Snap a drained node's float column back to exact zero.

        The integer columns reach exact zero on their own; the float memory
        column may carry ulp residue from the add/subtract history, which
        would otherwise accumulate over a long run.
        """
        residue = float(self.used_mem[node_id])
        if residue:
            self.used_mem_total -= residue
            self.used_mem[node_id] = 0.0

    def node_down(self, node_id: int) -> None:
        self.up[node_id] = False
        self.up_count -= 1
        # A node is drained before it goes down; advertise zero free.
        self.free_gpus.update(node_id, 0)

    def node_up(self, node_id: int) -> None:
        self.up[node_id] = True
        self.up_count += 1
        self.free_gpus.update(
            node_id, self.node_spec.num_gpus - int(self.used_gpus[node_id])
        )

    def append_node(self) -> None:
        node_id = self.num_nodes
        if node_id >= len(self.up):
            grow = len(self.up) + self._GROW
            for name in ("used_gpus", "used_cpus", "used_mem", "num_allocs", "up"):
                old = getattr(self, name)
                fresh = np.zeros(grow, dtype=old.dtype)
                fresh[: len(old)] = old
                setattr(self, name, fresh)
        self.num_nodes = node_id + 1
        self.up[node_id] = True
        self.up_count += 1
        self.free_gpus.add(node_id, self.node_spec.num_gpus)

    # ------------------------------------------------------------------
    # O(1) / O(answer) reads
    # ------------------------------------------------------------------
    def free_totals(self) -> tuple[int, int, float]:
        """Cluster-wide (gpus, cpus, host_mem) free on up nodes.

        GPU/CPU counts are exact; host_mem is the incremental float
        aggregate (see module docstring for the tolerance contract).
        """
        spec = self.node_spec
        return (
            self.up_count * spec.num_gpus - self.used_gpus_total,
            self.up_count * spec.num_cpus - self.used_cpus_total,
            self.up_count * spec.host_mem - self.used_mem_total,
        )

    def nodes_of(self, job_id: str) -> dict[int, ResourceVector]:
        return self.jobs.get(job_id, {})

    def probe(self, node_id: int) -> SoaProbe:
        """One node's mirrored state (for lockstep equality tests)."""
        spec = self.node_spec
        up = bool(self.up[node_id])
        return SoaProbe(
            used_gpus=int(self.used_gpus[node_id]),
            used_cpus=int(self.used_cpus[node_id]),
            used_mem=float(self.used_mem[node_id]),
            cap_gpus=spec.num_gpus if up else 0,
            cap_cpus=spec.num_cpus if up else 0,
            cap_mem=spec.host_mem if up else 0.0,
            up=up,
            num_allocs=int(self.num_allocs[node_id]),
        )
