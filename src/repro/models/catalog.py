"""The seven evaluation models from the paper's Table 2.

Architectural constants follow the published architectures; where the paper
leaves a knob open (global batch size, sequence length for the custom 1.2B T5
configuration) we choose standard values and record them here.  The paper's
Fig. 2 trains GPT-2 with a global batch of 16, which we adopt.

Models with < 1B parameters are evaluated by the paper on the DP/ZeRO plan
family only ("we disable TP and PP as they are mostly unnecessary for these
relatively small models"); this catalog carries that policy flag so trace
generation can honor it.
"""

from __future__ import annotations

from repro.models.specs import ModelSpec

#: Models the paper restricts to DP-family plans in the trace experiments.
SMALL_MODEL_NAMES = ("vit", "roberta", "bert")

#: Models counted as "large" for the Fig. 11 model-mix sweep.
LARGE_MODEL_NAMES = ("llama2-7b", "llama-30b")

VIT = ModelSpec(
    name="vit",
    display_name="ViT",
    param_count=86e6,
    num_layers=12,
    hidden_size=768,
    num_heads=12,
    seq_len=197,  # 14x14 patches + [CLS]
    vocab_size=1000,  # ImageNet-1K classes; stands in for the head fan-out
    global_batch_size=256,
    dataset="ImageNet-1K",
    is_language_model=False,
)

ROBERTA = ModelSpec(
    name="roberta",
    display_name="RoBERTa",
    param_count=355e6,
    num_layers=24,
    hidden_size=1024,
    num_heads=16,
    seq_len=512,
    vocab_size=50265,
    global_batch_size=64,
    dataset="WikiText-2",
)

BERT = ModelSpec(
    name="bert",
    display_name="BERT",
    param_count=336e6,
    num_layers=24,
    hidden_size=1024,
    num_heads=16,
    seq_len=512,
    vocab_size=30522,
    global_batch_size=64,
    dataset="Wikipedia",
)

T5 = ModelSpec(
    name="t5-1.2b",
    display_name="T5",
    param_count=1.2e9,
    num_layers=48,  # encoder + decoder stacks flattened for plan purposes
    hidden_size=1536,
    num_heads=24,
    seq_len=512,
    vocab_size=32128,
    global_batch_size=32,
    dataset="Wikipedia",
)

GPT2 = ModelSpec(
    name="gpt2-1.5b",
    display_name="GPT-2",
    param_count=1.5e9,
    num_layers=48,
    hidden_size=1600,
    num_heads=25,
    seq_len=1024,
    vocab_size=50257,
    global_batch_size=16,  # paper Fig. 2 uses a global batch of 16
    dataset="Wikipedia",
)

LLAMA2_7B = ModelSpec(
    name="llama2-7b",
    display_name="LLaMA-2-7B",
    param_count=6.7e9,
    num_layers=32,
    hidden_size=4096,
    num_heads=32,
    seq_len=2048,
    vocab_size=32000,
    global_batch_size=32,
    dataset="WuDaoCorpora",
)

LLAMA_30B = ModelSpec(
    name="llama-30b",
    display_name="LLaMA-30B",
    param_count=32.5e9,
    num_layers=60,
    hidden_size=6656,
    num_heads=52,
    seq_len=2048,
    vocab_size=32000,
    global_batch_size=64,
    dataset="WuDaoCorpora",
)

#: Catalog in the paper's Table 2 order.
CATALOG: dict[str, ModelSpec] = {
    spec.name: spec
    for spec in (VIT, ROBERTA, BERT, T5, GPT2, LLAMA2_7B, LLAMA_30B)
}


def get_model(name: str) -> ModelSpec:
    """Look up a model spec by catalog key (raises ``KeyError`` if unknown)."""
    try:
        return CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(CATALOG))
        raise KeyError(f"unknown model {name!r}; known models: {known}") from None


def all_models() -> list[ModelSpec]:
    """All catalog models, in the paper's Table 2 order."""
    return list(CATALOG.values())


def is_small_model(spec: ModelSpec) -> bool:
    """Whether the paper restricts this model to the DP plan family."""
    return spec.name in SMALL_MODEL_NAMES


def is_large_model(spec: ModelSpec) -> bool:
    """Whether this model counts as "large" for the Fig. 11 mix sweep."""
    return spec.name in LARGE_MODEL_NAMES


def scaled_large_model_weights(factor: float) -> dict[str, float]:
    """Uniform sampling weights with the large models scaled by ``factor``.

    The Fig. 11 model-mix knob as data: used by the trace generator's
    large-model sweep and by workload scenario mixes (``largemodel-heavy``).
    """
    weights = {name: 1.0 for name in CATALOG}
    for name in LARGE_MODEL_NAMES:
        weights[name] = factor
    return weights
