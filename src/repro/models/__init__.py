"""Model catalog: transformer architecture specs for the paper's workloads."""

from repro.models.catalog import (
    BERT,
    CATALOG,
    GPT2,
    LARGE_MODEL_NAMES,
    LLAMA2_7B,
    LLAMA_30B,
    ROBERTA,
    SMALL_MODEL_NAMES,
    T5,
    VIT,
    all_models,
    get_model,
    is_large_model,
    is_small_model,
    scaled_large_model_weights,
)
from repro.models.specs import ModelSpec, ModelWorkload

__all__ = [
    "BERT",
    "CATALOG",
    "GPT2",
    "LARGE_MODEL_NAMES",
    "LLAMA2_7B",
    "LLAMA_30B",
    "ROBERTA",
    "SMALL_MODEL_NAMES",
    "T5",
    "VIT",
    "ModelSpec",
    "ModelWorkload",
    "all_models",
    "get_model",
    "is_large_model",
    "is_small_model",
    "scaled_large_model_weights",
]
