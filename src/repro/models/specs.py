"""Transformer model specifications.

Rubick's performance model (paper §4, Table 1) depends on a small set of
architectural constants per model: sequence length ``s``, hidden size ``h``,
layer count ``l`` and total parameter size ``P``.  :class:`ModelSpec` captures
those, plus the structural divisibility information needed to enumerate
parallel execution plans (attention-head counts bound the tensor-parallel
degree; the layer count bounds pipeline staging).

The specs are *architectural descriptions*, not weights: the reproduction
never instantiates real networks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import InfeasiblePlanError


@dataclass(frozen=True)
class ModelSpec:
    """Architecture description of one trainable model.

    Parameters mirror the paper's Table 1 "Model" row (``s``, ``h``, ``l``,
    ``P``) with enough extra structure to drive plan enumeration and the
    memory model.

    Attributes:
        name: Unique catalog key, e.g. ``"gpt2-1.5b"``.
        display_name: Name used in paper-style tables, e.g. ``"GPT-2"``.
        param_count: Total trainable parameters ``P`` (count, not bytes).
        num_layers: Transformer block count ``l``.
        hidden_size: Hidden dimension ``h``.
        num_heads: Attention heads; bounds the tensor-parallel degree.
        seq_len: Training sequence length ``s`` (tokens per sample).
        vocab_size: Vocabulary size (drives the logits activation buffer).
        global_batch_size: Global mini-batch size ``b`` in samples.  Rubick
            keeps ``b`` fixed across reconfigurations, so it is a property of
            the model workload, not of the plan.
        dataset: Dataset label, for reporting parity with the paper's Table 2.
        is_language_model: Language models materialize a ``seq × vocab``
            logits buffer; vision models do not.
    """

    name: str
    display_name: str
    param_count: float
    num_layers: int
    hidden_size: int
    num_heads: int
    seq_len: int
    vocab_size: int
    global_batch_size: int
    dataset: str = ""
    is_language_model: bool = True

    def __post_init__(self) -> None:
        if self.param_count <= 0:
            raise ValueError(f"{self.name}: param_count must be positive")
        if self.num_layers <= 0 or self.hidden_size <= 0:
            raise ValueError(f"{self.name}: layer/hidden sizes must be positive")
        if self.hidden_size % self.num_heads != 0:
            raise ValueError(
                f"{self.name}: hidden_size {self.hidden_size} not divisible by "
                f"num_heads {self.num_heads}"
            )
        if self.global_batch_size <= 0:
            raise ValueError(f"{self.name}: global_batch_size must be positive")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def tokens_per_sample(self) -> int:
        """Tokens processed per training sample (= ``s``)."""
        return self.seq_len

    @property
    def fwd_flops_per_sample(self) -> float:
        """Approximate forward-pass FLOPs for one sample (dense transformer).

        Uses the standard ``2 · P · s`` estimate for parameter FLOPs plus the
        quadratic attention term ``2 · l · s² · h`` (two batched matmuls per
        layer), which matters for long-sequence models such as LLaMA.
        """
        param_flops = 2.0 * self.param_count * self.seq_len
        attn_flops = 2.0 * 2.0 * self.num_layers * self.seq_len**2 * self.hidden_size
        return param_flops + attn_flops

    def max_tensor_parallel(self, limit: int = 8) -> int:
        """Largest valid TP degree not exceeding ``limit``.

        TP must divide the attention-head count and the hidden size; Megatron
        additionally keeps TP groups inside a node, which callers enforce via
        ``limit`` (GPUs per node).
        """
        best = 1
        degree = 1
        while degree <= min(limit, self.num_heads):
            if self.num_heads % degree == 0 and self.hidden_size % degree == 0:
                best = degree
            degree *= 2
        return best

    def valid_tp(self, tp: int, node_limit: int = 8) -> bool:
        """Whether ``tp`` is a structurally valid tensor-parallel degree."""
        return (
            1 <= tp <= node_limit
            and self.num_heads % tp == 0
            and self.hidden_size % tp == 0
        )

    def valid_pp(self, pp: int) -> bool:
        """Whether ``pp`` pipeline stages evenly partition the layer stack."""
        return 1 <= pp <= self.num_layers and self.num_layers % pp == 0

    def layers_per_stage(self, pp: int) -> int:
        """Layers placed on each pipeline stage (paper's ``l / g_p``)."""
        if not self.valid_pp(pp):
            raise InfeasiblePlanError(
                f"{self.name}: {pp} pipeline stages do not divide "
                f"{self.num_layers} layers"
            )
        return self.num_layers // pp


@dataclass(frozen=True)
class ModelWorkload:
    """A model spec bound to a per-job batch-size override.

    Jobs of the same *model type* share a fitted performance model in Rubick
    (paper §3); a workload pins down the remaining free knob, the global
    batch size.
    """

    spec: ModelSpec
    global_batch_size: int = field(default=0)

    def __post_init__(self) -> None:
        if self.global_batch_size <= 0:
            object.__setattr__(self, "global_batch_size", self.spec.global_batch_size)

    @property
    def name(self) -> str:
        return self.spec.name
