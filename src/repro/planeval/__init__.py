"""planeval — the unified plan-evaluation engine (paper §5.2 ``GetBestPlan``).

One memoized, versioned scoring service answering "best execution plan +
predicted throughput for (model, batch, shape)" for every consumer:
sensitivity curves, the variant plan selectors, Rubick and the baseline
policies, and the simulator's intrinsic-work accounting.  See
`repro.planeval.engine` for the cache architecture and
`repro.planeval.scoring` for the batched scoring backends.
"""

from repro.planeval.curve import BestConfig, GpuCurve, build_envelope
from repro.planeval.engine import (
    DEFAULT_CPUS_PER_GPU,
    EngineStats,
    PlanEvalEngine,
    PlanRequest,
    default_plan_space,
)
from repro.planeval.scoring import (
    PerfStoreScorer,
    TestbedScorer,
    fused_throughputs,
)

__all__ = [
    "BestConfig",
    "DEFAULT_CPUS_PER_GPU",
    "EngineStats",
    "GpuCurve",
    "PerfStoreScorer",
    "PlanEvalEngine",
    "PlanRequest",
    "TestbedScorer",
    "build_envelope",
    "default_plan_space",
    "fused_throughputs",
]
