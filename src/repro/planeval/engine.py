"""The unified plan-evaluation engine (``GetBestPlan`` as a service).

Every consumer of "best execution plan + predicted throughput for (model,
batch, shape)" — the sensitivity analyzer, the variant plan selectors, the
Rubick policy and the baselines, and the simulator's intrinsic-work
accounting — routes through one :class:`PlanEvalEngine`.  The engine owns:

* **plan enumeration**, memoized per (model, batch, shape-class) — the
  enumeration does not depend on CPU counts, so CPU-slope probes reuse it;
* **batched scoring** via a pluggable backend (`repro.planeval.scoring`) —
  one fused pass over the perf-model components per candidate set instead of
  per-plan predict calls;
* **memoization with versioned per-model invalidation**: every cached best
  config, score table, and sensitivity curve is tied to the scoring
  backend's per-model version (the :class:`~repro.scheduler.interfaces.
  PerfModelStore` refit generation).  An online refit of one model type
  drops exactly that model's entries; every other model keeps its warm
  caches.  This replaces the three ad-hoc caches the repo grew first
  (``SensitivityAnalyzer._best_cache``/``_curve_cache``,
  ``ScaledDpSelector._curve_cache``, ``Simulator._best_thr_cache``), whose
  invalidation was clear-everything (or, for version-keyed entries, never
  evicted at all);
* **cache statistics** — hit/miss/eval/invalidation counters via
  :meth:`PlanEvalEngine.stats`, surfaced by ``repro simulate
  --planeval-stats`` and ``benchmarks/bench_planeval_cache.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.cluster.topology import ClusterSpec
from repro.models.catalog import is_small_model
from repro.models.specs import ModelSpec
from repro.perfmodel.shape import ResourceShape
from repro.planeval.curve import BestConfig, GpuCurve, build_envelope
from repro.planeval.scoring import PerfStoreScorer
from repro.plans.enumerate import (
    DEFAULT_SPACE,
    DP_FAMILY_SPACE,
    PlanSpace,
    enumerate_plans,
)
from repro.plans.memory import estimate_memory, host_mem_demand_per_node
from repro.plans.plan import ExecutionPlan

#: Default CPU:GPU ratio used when building curves ("other resources fixed").
DEFAULT_CPUS_PER_GPU = 4


def default_plan_space(model: ModelSpec) -> PlanSpace:
    """The paper's trace policy: sub-1B models use the DP plan family only."""
    return DP_FAMILY_SPACE if is_small_model(model) else DEFAULT_SPACE


@dataclass(frozen=True)
class EngineStats:
    """Snapshot of the engine's cache counters (monotone since construction).

    ``hits``/``misses`` count memo-table lookups across all entry points
    (``best``, ``best_of``, ``score_all``, ``curve``, ``curve_of``);
    ``evals`` counts individual plans scored through the backend; and
    ``invalidations`` counts per-model cache drops triggered by a backend
    version change (i.e. online refits observed).
    """

    hits: int = 0
    misses: int = 0
    evals: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evals": self.evals,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


@dataclass(frozen=True)
class PlanRequest:
    """One entry of a batched :meth:`PlanEvalEngine.best_of_many` call.

    ``candidates=None`` asks for the model's full (memoized) enumeration —
    the :meth:`PlanEvalEngine.best` path; an explicit tuple (or a lazy
    callable plus ``key``) follows the restricted :meth:`~PlanEvalEngine.
    best_of` path.  Flags mirror the corresponding single-request entry
    points exactly, so a batched call returns bit-identical configs.
    """

    model: ModelSpec
    global_batch: int
    shape: ResourceShape
    candidates: object | None = None
    key: tuple | None = None
    space: PlanSpace | None = None
    check_gpu_mem: bool = False
    check_host_mem: bool = True


class _ModelSlab:
    """All memoized results for one model type, pinned to a backend version."""

    __slots__ = ("version", "best", "scores", "curves")

    def __init__(self, version: int) -> None:
        self.version = version
        self.best: dict[tuple, BestConfig | None] = {}
        self.scores: dict[tuple, tuple[tuple[ExecutionPlan, float], ...]] = {}
        self.curves: dict[tuple, GpuCurve] = {}


class PlanEvalEngine:
    """Memoized, versioned plan enumeration + scoring service.

    Args:
        cluster_spec: Hardware shape (node size bounds TP; node memory is the
            enumeration's OOM filter; total GPUs is the default curve limit).
        perf_store: Fitted performance models; shorthand for
            ``scorer=PerfStoreScorer(perf_store)``.
        scorer: Explicit scoring backend (see `repro.planeval.scoring`);
            overrides ``perf_store``.
        cpus_per_gpu: CPU:GPU ratio assumed by sensitivity curves.
        plan_space_fn: Maps a model to its default plan search space.
    """

    def __init__(
        self,
        cluster_spec: ClusterSpec,
        *,
        perf_store=None,
        scorer=None,
        cpus_per_gpu: int = DEFAULT_CPUS_PER_GPU,
        plan_space_fn: Callable[[ModelSpec], PlanSpace] = default_plan_space,
    ) -> None:
        if scorer is None:
            if perf_store is None:
                raise ValueError("PlanEvalEngine needs a perf_store or a scorer")
            scorer = PerfStoreScorer(perf_store)
        self.scorer = scorer
        self.perf_store = perf_store
        self.cluster_spec = cluster_spec
        self.cpus_per_gpu = cpus_per_gpu
        self.plan_space_fn = plan_space_fn
        self._slabs: dict[str, _ModelSlab] = {}
        # Enumeration is structural (model/batch/space/memory), independent
        # of the scoring backend's version — it survives refits.
        self._enums: dict[tuple, tuple[ExecutionPlan, ...]] = {}
        self._hits = 0
        self._misses = 0
        self._evals = 0
        self._invalidations = 0

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def _slab(self, model: ModelSpec) -> _ModelSlab:
        version = self.scorer.version(model)
        slab = self._slabs.get(model.name)
        if slab is None:
            slab = _ModelSlab(version)
            self._slabs[model.name] = slab
        elif slab.version != version:
            slab = _ModelSlab(version)
            self._slabs[model.name] = slab
            self._invalidations += 1
        return slab

    def invalidate(self, model_name: str | None = None) -> None:
        """Manually drop memoized results (one model, or everything)."""
        if model_name is None:
            self._slabs.clear()
            self._enums.clear()
        else:
            self._slabs.pop(model_name, None)
        self._invalidations += 1

    def stats(self) -> EngineStats:
        return EngineStats(
            hits=self._hits,
            misses=self._misses,
            evals=self._evals,
            invalidations=self._invalidations,
        )

    def cpu_cap(self, gpus: int) -> int:
        """CPUs available to a job holding ``gpus`` packed GPUs."""
        node = self.cluster_spec.node
        nodes = -(-gpus // node.num_gpus)
        return nodes * node.num_cpus

    # ------------------------------------------------------------------
    # Enumeration (shape-class level: CPUs do not matter here)
    # ------------------------------------------------------------------
    def plans_for(
        self,
        model: ModelSpec,
        global_batch: int,
        gpus: int,
        min_gpus_per_node: int,
        *,
        space: PlanSpace | None = None,
    ) -> tuple[ExecutionPlan, ...]:
        """Memory-filtered candidate plans for one (batch, shape-class)."""
        space = space if space is not None else self.plan_space_fn(model)
        key = (model.name, global_batch, gpus, min_gpus_per_node, space)
        plans = self._enums.get(key)
        if plans is None:
            plans = tuple(
                enumerate_plans(
                    model,
                    global_batch,
                    gpus,
                    min_gpus_per_node=min_gpus_per_node,
                    gpu_mem_budget=self.cluster_spec.node.usable_gpu_mem,
                    space=space,
                )
            )
            self._enums[key] = plans
        return plans

    @staticmethod
    def _densest_node_share(shape: ResourceShape) -> int:
        """GPUs on the densest node of a placement with this shape."""
        return max(
            shape.min_gpus_per_node,
            -(-shape.gpus // max(shape.num_nodes, 1)),
        )

    def _host_mem_ok(
        self,
        model: ModelSpec,
        plan: ExecutionPlan,
        global_batch: int,
        densest: int,
    ) -> bool:
        return (
            host_mem_demand_per_node(model, plan, global_batch, densest)
            <= self.cluster_spec.node.host_mem
        )

    def _host_filtered(
        self,
        model: ModelSpec,
        plans: tuple[ExecutionPlan, ...],
        global_batch: int,
        shape: ResourceShape,
    ) -> tuple[ExecutionPlan, ...]:
        """Drop plans whose densest-node host share exceeds node memory."""
        densest = self._densest_node_share(shape)
        return tuple(
            p
            for p in plans
            if self._host_mem_ok(model, p, global_batch, densest)
        )

    def _scored_plans(
        self,
        model: ModelSpec,
        global_batch: int,
        shape: ResourceShape,
        space: PlanSpace,
        check_host_mem: bool,
    ) -> tuple[tuple[ExecutionPlan, ...], list[float | None]]:
        """Enumerate, memory-filter, and batch-score one shape's plans."""
        plans = self.plans_for(
            model, global_batch, shape.gpus, shape.min_gpus_per_node,
            space=space,
        )
        if check_host_mem:
            plans = self._host_filtered(model, plans, global_batch, shape)
        scores = self.scorer.score(model, plans, shape, global_batch)
        self._evals += len(plans)
        return plans, scores

    # ------------------------------------------------------------------
    # Scoring entry points
    # ------------------------------------------------------------------
    def _argmax(
        self,
        plans: Sequence[ExecutionPlan],
        scores: Sequence[float | None],
    ) -> BestConfig | None:
        best: BestConfig | None = None
        for plan, thr in zip(plans, scores):
            if thr is None:
                continue
            if best is None or thr > best.throughput:
                best = BestConfig(plan=plan, throughput=thr)
        return best

    def best(
        self,
        model: ModelSpec,
        global_batch: int,
        shape: ResourceShape,
        *,
        space: PlanSpace | None = None,
        check_host_mem: bool = True,
    ) -> BestConfig | None:
        """Highest-scoring feasible plan for an exact shape (``GetBestPlan``)."""
        space = space if space is not None else self.plan_space_fn(model)
        slab = self._slab(model)
        key = ("best", global_batch, shape, space, check_host_mem)
        if key in slab.best:
            self._hits += 1
            return slab.best[key]
        self._misses += 1
        best: BestConfig | None = None
        if shape.gpus > 0:
            plans, scores = self._scored_plans(
                model, global_batch, shape, space, check_host_mem
            )
            best = self._argmax(plans, scores)
        slab.best[key] = best
        return best

    def best_of(
        self,
        model: ModelSpec,
        global_batch: int,
        shape: ResourceShape,
        candidates: Sequence[ExecutionPlan] | Callable[[], Sequence[ExecutionPlan]],
        *,
        key: tuple | None = None,
        check_gpu_mem: bool = False,
        check_host_mem: bool = False,
    ) -> BestConfig | None:
        """Best plan among an explicit candidate list (restricted selectors).

        ``key`` identifies the restriction that produced the candidates
        (e.g. ``("scaled_dp", initial_plan)``); with it, ``candidates`` may
        be a zero-argument callable that is only invoked on a cache miss.
        Without ``key``, the candidate tuple itself keys the memo entry.
        """
        slab = self._slab(model)
        if key is None:
            if callable(candidates):
                raise ValueError("lazy candidates require an explicit key")
            candidates = tuple(candidates)
            memo_key = (
                "of", global_batch, shape, candidates,
                check_gpu_mem, check_host_mem,
            )
        else:
            memo_key = (
                "of", global_batch, shape, key, check_gpu_mem, check_host_mem
            )
        if memo_key in slab.best:
            self._hits += 1
            return slab.best[memo_key]
        self._misses += 1
        plans = tuple(candidates() if callable(candidates) else candidates)
        if check_gpu_mem:
            budget = self.cluster_spec.node.usable_gpu_mem
            plans = tuple(
                p
                for p in plans
                if estimate_memory(model, p, global_batch).gpu_total <= budget
            )
        if check_host_mem:
            plans = self._host_filtered(model, plans, global_batch, shape)
        scores = self.scorer.score(model, plans, shape, global_batch)
        self._evals += len(plans)
        best = self._argmax(plans, scores)
        slab.best[memo_key] = best
        return best

    def best_of_many(
        self, requests: Sequence[PlanRequest]
    ) -> list[BestConfig | None]:
        """Resolve a whole queue's best-plan requests in one batched pass.

        Policies that previously looped ``best()``/``best_of()`` per job
        hand the full request list over instead: duplicate requests (jobs
        sharing a model/batch/shape — the common case in a large pending
        queue) collapse to a single memo probe, and each *distinct* cold
        request runs exactly one fused scoring pass over its candidate set.
        Results are positionally aligned with ``requests`` and bit-identical
        to the equivalent sequence of single calls (same memo, same scoring
        path, same tie-breaking argmax).
        """
        out: list[BestConfig | None] = []
        resolved: dict[tuple, BestConfig | None] = {}
        for req in requests:
            space = (
                req.space
                if req.space is not None
                else self.plan_space_fn(req.model)
            )
            if req.candidates is None:
                dedup = (
                    "best", req.model.name, req.global_batch, req.shape,
                    space, req.check_host_mem,
                )
            elif req.key is not None:
                dedup = (
                    "of", req.model.name, req.global_batch, req.shape,
                    req.key, req.check_gpu_mem, req.check_host_mem,
                )
            else:
                dedup = None  # anonymous candidate tuples: no cheap identity
            if dedup is not None and dedup in resolved:
                out.append(resolved[dedup])
                continue
            if req.candidates is None:
                best = self.best(
                    req.model, req.global_batch, req.shape,
                    space=space, check_host_mem=req.check_host_mem,
                )
            else:
                best = self.best_of(
                    req.model, req.global_batch, req.shape, req.candidates,
                    key=req.key,
                    check_gpu_mem=req.check_gpu_mem,
                    check_host_mem=req.check_host_mem,
                )
            if dedup is not None:
                resolved[dedup] = best
            out.append(best)
        return out

    def score_all(
        self,
        model: ModelSpec,
        global_batch: int,
        shape: ResourceShape,
        *,
        space: PlanSpace | None = None,
        check_host_mem: bool = True,
    ) -> tuple[tuple[ExecutionPlan, float], ...]:
        """Every feasible plan with its score, in enumeration order."""
        space = space if space is not None else self.plan_space_fn(model)
        slab = self._slab(model)
        key = (global_batch, shape, space, check_host_mem)
        if key in slab.scores:
            self._hits += 1
            return slab.scores[key]
        self._misses += 1
        scored: tuple[tuple[ExecutionPlan, float], ...] = ()
        if shape.gpus > 0:
            plans, scores = self._scored_plans(
                model, global_batch, shape, space, check_host_mem
            )
            scored = tuple(
                (plan, thr)
                for plan, thr in zip(plans, scores)
                if thr is not None
            )
        slab.scores[key] = scored
        return scored

    # ------------------------------------------------------------------
    # Sensitivity curves
    # ------------------------------------------------------------------
    def _packed_shape(self, gpus: int, cpus_per_gpu: int) -> ResourceShape:
        return ResourceShape.packed(
            gpus,
            node_size=self.cluster_spec.node.num_gpus,
            cpus=min(gpus * cpus_per_gpu, self.cpu_cap(gpus)),
        )

    def curve(
        self,
        model: ModelSpec,
        global_batch: int,
        *,
        max_gpus: int | None = None,
        cpus_per_gpu: int | None = None,
        space: PlanSpace | None = None,
    ) -> GpuCurve:
        """Full-space GPU sensitivity curve (upper envelope, Fig. 6)."""
        space = space if space is not None else self.plan_space_fn(model)
        cpg = cpus_per_gpu if cpus_per_gpu is not None else self.cpus_per_gpu
        limit = max_gpus if max_gpus is not None else self.cluster_spec.total_gpus
        slab = self._slab(model)
        key = ("full", global_batch, limit, cpg, space)
        if key in slab.curves:
            self._hits += 1
            return slab.curves[key]
        self._misses += 1
        raw: list[BestConfig | None] = [None]
        for g in range(1, limit + 1):
            raw.append(
                self.best(
                    model, global_batch, self._packed_shape(g, cpg), space=space
                )
            )
        curve = build_envelope(limit, raw)
        # Re-fetch the slab: the per-point best() calls above validated the
        # version; storing into a stale slab would resurrect dropped entries.
        self._slab(model).curves[key] = curve
        return curve

    def curve_of(
        self,
        model: ModelSpec,
        global_batch: int,
        key: tuple,
        point_fn: Callable[[ResourceShape], BestConfig | None],
        *,
        max_gpus: int | None = None,
        cpus_per_gpu: int | None = None,
    ) -> GpuCurve:
        """Sensitivity curve under a plan restriction (variant selectors).

        ``key`` identifies the restriction (it scopes the memo entry);
        ``point_fn`` maps a packed shape to the restricted best config and is
        only called on a cache miss.  Versioned invalidation applies exactly
        as for :meth:`curve` — this is what fixes the stale-curve hazard of
        the selectors' former private caches.
        """
        cpg = cpus_per_gpu if cpus_per_gpu is not None else self.cpus_per_gpu
        limit = max_gpus if max_gpus is not None else self.cluster_spec.total_gpus
        slab = self._slab(model)
        memo_key = ("restricted", key, global_batch, limit, cpg)
        if memo_key in slab.curves:
            self._hits += 1
            return slab.curves[memo_key]
        self._misses += 1
        raw: list[BestConfig | None] = [None]
        for g in range(1, limit + 1):
            raw.append(point_fn(self._packed_shape(g, cpg)))
        curve = build_envelope(limit, raw)
        self._slab(model).curves[memo_key] = curve
        return curve
