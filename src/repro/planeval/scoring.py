"""Batched plan scoring backends for the plan-evaluation engine.

The engine is generic over *how* a plan is scored: scheduling policies score
with the fitted performance model (:class:`PerfStoreScorer`), while the
simulator's intrinsic-work accounting scores with the synthetic testbed's
ground truth (:class:`TestbedScorer`).  Both expose the same two-method
protocol:

* ``version(model)`` — a monotonically increasing integer per model type;
  the engine drops a model's memoized results whenever it changes (online
  refits bump it, ground truth never does);
* ``score(model, plans, shape, global_batch)`` — throughput per plan, with
  ``None`` marking plans the backend deems infeasible.

:func:`fused_throughputs` is the batched fast path behind
:class:`PerfStoreScorer`: one loop-fused pass over the perf-model component
formulas for *all* candidate plans of a shape, instead of a per-plan
``PerfModel.throughput`` call.  It hoists the shape/environment-dependent
terms (bandwidth selection, CPU count, fitted coefficients) out of the loop
and skips the :class:`~repro.perfmodel.components.IterBreakdown` dataclass
allocation and ideal-:class:`~repro.perfmodel.components.Effects` dispatch
entirely.  The arithmetic mirrors ``compute_breakdown`` operation-for-
operation so results are bit-identical to the unfused path — guarded by
``tests/test_planeval.py::TestFusedScoring``.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import OutOfMemoryError
from repro.models.specs import ModelSpec
from repro.perfmodel.components import (
    comm_volume_dp,
    comm_volume_pp,
    comm_volume_tp,
)
from repro.perfmodel.model import PerfModel
from repro.perfmodel.overlap import overlap
from repro.perfmodel.shape import ResourceShape
from repro.plans.plan import ExecutionPlan, ZeroStage
from repro.units import BYTES_FP16

#: Distinct-from-None miss marker (None itself memoizes "infeasible").
_UNCACHED = object()


def fused_throughputs(
    perf: PerfModel,
    plans: Sequence[ExecutionPlan],
    shape: ResourceShape,
    global_batch: int,
) -> list[float]:
    """Predicted samples/s for every plan, in one fused pass.

    Numerically identical to ``[perf.throughput(p, shape, global_batch) for p
    in plans]`` (same operations in the same order), but evaluated with the
    per-shape terms hoisted and without per-plan breakdown objects.
    """
    model = perf.model
    env = perf.env
    params = perf.params
    t_fwd_ref = perf.t_fwd_ref

    # Hoisted fitted coefficients and shape-dependent environment terms.
    k_bwd = params.k_bwd
    k_sync = params.k_sync
    k_opt = params.k_opt
    k_opt_off = params.k_opt_off
    k_off = params.k_off
    k_swap = params.k_swap
    k_const = params.k_const
    b_dp = env.inter_bw if shape.spans_nodes else env.intra_bw
    b_pp = b_dp
    b_tp = env.intra_bw  # TP stays intra-node by construction
    b_pcie = env.pcie_bw
    cpus = shape.cpus
    param_count = model.param_count
    offload_bytes = 2.0 * BYTES_FP16 * param_count

    out: list[float] = []
    for plan in plans:
        mbs = plan.micro_batch_size(global_batch)
        t_pass_fwd = t_fwd_ref * mbs / plan.tp
        t_pass_bwd = k_bwd * t_pass_fwd
        if plan.gc:
            t_pass_bwd += t_pass_fwd

        t_comm_dp = comm_volume_dp(model, plan) / b_dp
        t_comm_tp = comm_volume_tp(model, plan, global_batch) / b_tp
        t_comm_pp = comm_volume_pp(model, plan, global_batch) / b_pp

        if plan.pp > 1:
            # 1F1B pipeline: (m + p - 1) sequential micro-slots per phase.
            slots = (plan.micro_batches + plan.pp - 1) * 1.0
            t_fwd_total = (t_pass_fwd / plan.pp) * slots
            t_bwd_total = (t_pass_bwd / plan.pp) * slots
            t_cc = (
                t_fwd_total
                + overlap(k_sync, t_bwd_total, t_comm_dp)
                + t_comm_tp
                + t_comm_pp
            )
        else:
            a = plan.ga_steps
            if plan.uses_offload:
                # Gradient sync participates in T_oo instead.
                t_cc = a * t_pass_fwd + a * t_pass_bwd + t_comm_tp
            else:
                t_cc = (
                    a * t_pass_fwd
                    + (a - 1) * t_pass_bwd
                    + overlap(k_sync, t_pass_bwd, t_comm_dp)
                    + t_comm_tp
                )

        if plan.uses_offload:
            cpus_per_rank = max(cpus / plan.dp, 0.5)
            t_opt = k_opt_off * param_count / (plan.dp * cpus_per_rank)
            t_off = (offload_bytes / plan.dp) / b_pcie
            t_oo = overlap(k_off, t_comm_dp, t_off / 2.0) + overlap(
                k_swap, t_opt, t_off / 2.0
            )
        else:
            if plan.zero == ZeroStage.ZERO_DP:
                t_opt = k_opt * param_count / plan.dp
            else:
                t_opt = k_opt * param_count / (plan.tp * plan.pp)
            t_oo = t_opt

        out.append(global_batch / (t_cc + t_oo + k_const))
    return out


class PerfStoreScorer:
    """Scores plans with the fitted performance models of a store.

    The store is duck-typed (``get``/``model_version``) to keep this package
    free of scheduler imports; in practice it is a
    :class:`repro.scheduler.interfaces.PerfModelStore`.
    """

    def __init__(self, perf_store) -> None:
        self.perf_store = perf_store

    def version(self, model: ModelSpec) -> int:
        return self.perf_store.model_version(model.name)

    def score(
        self,
        model: ModelSpec,
        plans: Sequence[ExecutionPlan],
        shape: ResourceShape,
        global_batch: int,
    ) -> list[float | None]:
        if not plans:
            return []
        perf = self.perf_store.get(model)
        return list(fused_throughputs(perf, plans, shape, global_batch))


class TestbedScorer:
    """Scores plans with the synthetic testbed's ground truth.

    Used by the simulator for intrinsic-work accounting (paper §7.3: a job's
    total samples derive from the *best feasible* plan at its requested GPU
    count).  Ground truth never changes, so ``version`` is constant and the
    engine's memoized results live for the whole simulation.

    On top of the engine-level memoization this scorer keeps its own
    ``true_throughput`` memo keyed on ``(model, plan, shape, global_batch)``:
    the simulator re-scores every job's *current* configuration on each
    scheduling round (ragged placements the engine's packed-shape memo never
    sees), and in steady state those queries repeat verbatim.  The memo is
    sound because :meth:`SyntheticTestbed.true_throughput` is a pure,
    noise-free function of its key — measurement noise exists only on the
    separate ``measure()`` path, which is never cached here.  Infeasible
    configurations are memoized too (as ``None``) so repeated OOM probes cost
    one dict lookup.
    """

    __test__ = False  # "Test..." name; keep pytest collection away

    def __init__(self, testbed) -> None:
        self.testbed = testbed
        self._thr_memo: dict[tuple, float | None] = {}

    def version(self, model: ModelSpec) -> int:
        return 0

    def true_throughput(
        self,
        model: ModelSpec,
        plan: ExecutionPlan,
        shape: ResourceShape,
        global_batch: int,
    ) -> float:
        """Memoized ground-truth samples/s; raises OOM when infeasible."""
        key = (model.name, plan, shape, global_batch)
        thr = self._thr_memo.get(key, _UNCACHED)
        if thr is _UNCACHED:
            try:
                thr = self.testbed.true_throughput(
                    model, plan, shape, global_batch
                )
            except OutOfMemoryError:
                self._thr_memo[key] = None
                raise
            self._thr_memo[key] = thr
            return thr
        if thr is None:
            raise OutOfMemoryError(
                f"{model.name} {plan.describe()}: infeasible at {shape} "
                f"(memoized)"
            )
        return thr

    def score(
        self,
        model: ModelSpec,
        plans: Sequence[ExecutionPlan],
        shape: ResourceShape,
        global_batch: int,
    ) -> list[float | None]:
        out: list[float | None] = []
        for plan in plans:
            try:
                out.append(
                    self.true_throughput(model, plan, shape, global_batch)
                )
            except OutOfMemoryError:
                out.append(None)
        return out
