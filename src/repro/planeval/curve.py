"""Best-plan configurations and GPU sensitivity curves (paper §5.2, Fig. 6).

These value types are produced by :class:`repro.planeval.PlanEvalEngine` and
consumed by every scheduling policy.  A sensitivity curve gives, for each
amount of one resource type (others held fixed), the best achievable
predicted throughput over *all* permitted execution plans — the upper
envelope of the per-plan curves.  The curves serve the scheduling policy
twice:

* their **slopes** rank jobs by marginal benefit, steering allocation toward
  the most sensitive jobs; and
* they factor execution planning out of the allocation search: the policy
  reasons over resource amounts and asks the curve for the matching best plan
  (``GetBestPlan``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.plans.plan import ExecutionPlan


@dataclass(frozen=True)
class BestConfig:
    """Best predicted configuration at one resource amount."""

    plan: ExecutionPlan
    throughput: float


@dataclass(frozen=True)
class GpuCurve:
    """Best-plan throughput vs. GPU count (upper envelope, Fig. 6).

    ``envelope[g]`` is the best throughput achievable with *up to* ``g`` GPUs
    — flat across GPU counts where no plan uses exactly ``g`` (the paper:
    "the curve remains flat for invalid GPU numbers").
    """

    max_gpus: int
    raw: tuple[BestConfig | None, ...]  # index g: best plan using exactly g GPUs
    envelope: tuple[float, ...]  # index g: best throughput with <= g GPUs
    envelope_config: tuple[BestConfig | None, ...]

    def throughput_at(self, gpus: int) -> float:
        gpus = max(0, min(gpus, self.max_gpus))
        return self.envelope[gpus]

    def config_at(self, gpus: int) -> BestConfig | None:
        gpus = max(0, min(gpus, self.max_gpus))
        return self.envelope_config[gpus]

    def slope_up(self, gpus: int, delta: int = 1) -> float:
        """Throughput gained by the next ``delta`` GPUs."""
        return (
            self.throughput_at(gpus + delta) - self.throughput_at(gpus)
        ) / delta

    def slope_down(self, gpus: int, delta: int = 1) -> float:
        """Throughput lost by giving up ``delta`` GPUs."""
        if gpus <= 0:
            return 0.0
        delta = min(delta, gpus)
        return (
            self.throughput_at(gpus) - self.throughput_at(gpus - delta)
        ) / delta

    def next_better_count(self, gpus: int) -> int | None:
        """Smallest GPU count above ``gpus`` where the envelope rises.

        Gang constraints make the envelope a step function; unit-slope
        signals read zero inside a flat run even when a large jump lies
        ahead (e.g. 8 -> 16 GPUs for a 3D-parallel job).
        """
        here = self.throughput_at(gpus)
        for g in range(max(gpus, 0) + 1, self.max_gpus + 1):
            if self.envelope[g] > here + 1e-12:
                return g
        return None

    def lookahead_slope_up(self, gpus: int) -> float:
        """Per-GPU gain to the next envelope rise (0 if the curve is done)."""
        nxt = self.next_better_count(gpus)
        if nxt is None:
            return 0.0
        return (self.throughput_at(nxt) - self.throughput_at(gpus)) / (
            nxt - gpus
        )


def build_envelope(limit: int, raw: Sequence[BestConfig | None]) -> GpuCurve:
    """Assemble a :class:`GpuCurve` from per-count best configs.

    ``raw[g]`` is the best config using exactly ``g`` GPUs (``raw[0]`` is
    ``None``); the envelope carries the running maximum forward across GPU
    counts where no plan exists.
    """
    envelope = [0.0]
    env_cfg: list[BestConfig | None] = [None]
    for g in range(1, limit + 1):
        cand = raw[g]
        if cand is not None and cand.throughput > envelope[-1]:
            envelope.append(cand.throughput)
            env_cfg.append(cand)
        else:
            envelope.append(envelope[-1])
            env_cfg.append(env_cfg[-1])
    return GpuCurve(
        max_gpus=limit,
        raw=tuple(raw),
        envelope=tuple(envelope),
        envelope_config=tuple(env_cfg),
    )
