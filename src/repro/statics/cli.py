"""``repro lint``: the command-line face of the invariant linter.

Exit codes: 0 — clean against the baseline; 1 — new findings (or, with
``--check-baseline``, stale baseline entries); 2 — usage error.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.statics.baseline import (
    DEFAULT_BASELINE,
    load_baseline,
    save_baseline,
)
from repro.statics.engine import DEFAULT_TARGETS, repo_root, run_lint
from repro.statics.rules import all_rules, rules_by_code


def add_lint_parser(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "lint",
        help="AST-based invariant linter over the repo's own source",
        description=(
            "Enforces the determinism/lockstep/serialization/cache "
            "contracts at lint time: per-file rules RPL001-RPL007 plus "
            "the whole-program flow rules RPL008-RPL010 (call graph + "
            "interprocedural taint). See DESIGN.md items 40 and 47."
        ),
        epilog=(
            "exit codes: 0 clean against the baseline; 1 new findings "
            "(or, with --check-baseline, stale baseline entries); "
            "2 usage error (unknown rule code, missing target, "
            "incompatible flags)."
        ),
    )
    p.add_argument(
        "targets",
        nargs="*",
        default=list(DEFAULT_TARGETS),
        help=f"files/directories to lint (default: {' '.join(DEFAULT_TARGETS)})",
    )
    p.add_argument(
        "--root",
        default=None,
        help="repository root (default: auto-detected from the package)",
    )
    p.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file, root-relative (default: {DEFAULT_BASELINE})",
    )
    p.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report every finding as new",
    )
    p.add_argument(
        "--check-baseline",
        action="store_true",
        help="CI gate: also fail on stale (already-fixed) baseline entries",
    )
    p.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    p.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    p.add_argument(
        "--report",
        default=None,
        help="also write a JSON findings report to this path",
    )
    p.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule with its rationale and exit",
    )
    p.add_argument(
        "--paths",
        nargs="+",
        default=None,
        metavar="FILE",
        help=(
            "lint only these files (pre-commit-speed subset run); the "
            "whole-program context still spans the default targets so "
            "cross-file flows resolve, but the baseline gate is never "
            "touched: every finding in the subset reports as new, and "
            "--check-baseline/--update-baseline are rejected"
        ),
    )
    p.add_argument(
        "--call-graph",
        default=None,
        metavar="OUT.json",
        help=(
            "also write the project call graph (sorted, diffable JSON) "
            "to this path"
        ),
    )
    p.add_argument(
        "--explain",
        default=None,
        metavar="CODE:PATH:LINE",
        help=(
            "print the interprocedural taint/escape path behind one "
            "finding, e.g. --explain "
            "RPL008:src/repro/experiments/runner.py:569"
        ),
    )
    p.add_argument(
        "--summary-cache",
        default=None,
        metavar="CACHE.json",
        help=(
            "content-hash-keyed per-file facts cache: warm runs "
            "re-extract only changed files"
        ),
    )
    p.set_defaults(func=cmd_lint)


def cmd_lint(args) -> int:
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.title}")
            print(f"        {rule.rationale}")
        return 0
    root = Path(args.root).resolve() if args.root else repo_root()
    try:
        rules = rules_by_code(
            [c.strip() for c in args.select.split(",")] if args.select else None
        )
    except ValueError as exc:
        print(str(exc))
        return 2
    explain = None
    if args.explain:
        explain = _parse_explain(args.explain)
        if explain is None:
            print(
                "--explain expects CODE:PATH:LINE, e.g. "
                "RPL008:src/repro/experiments/runner.py:569"
            )
            return 2
    targets = tuple(args.targets)
    project_targets: tuple[str, ...] | None = None
    if args.paths is not None:
        if args.check_baseline or args.update_baseline:
            print(
                "--paths is a subset run and never touches the baseline "
                "gate; drop --check-baseline/--update-baseline"
            )
            return 2
        targets = tuple(args.paths)
        project_targets = DEFAULT_TARGETS
    missing = [
        t for t in targets if not (root / t).exists()
    ]
    if missing:
        print(
            f"lint target(s) not found under {root}: {', '.join(missing)}"
        )
        return 2
    baseline_path = root / args.baseline
    if args.paths is not None or args.no_baseline:
        baseline = None
    else:
        baseline = load_baseline(baseline_path)
    report = run_lint(
        root=root,
        targets=targets,
        rules=rules,
        baseline=baseline,
        project_targets=project_targets,
        cache_path=Path(args.summary_cache) if args.summary_cache else None,
    )

    if args.call_graph:
        graph = report.project
        if graph is None:
            print(
                "--call-graph needs a project rule in the run "
                "(drop --select or include RPL008/RPL009/RPL010)"
            )
            return 2
        Path(args.call_graph).write_text(
            json.dumps(
                graph.call_graph_dict(),
                indent=1,
                sort_keys=True,
                allow_nan=False,
            )
            + "\n",
            encoding="utf-8",
        )

    if explain is not None:
        return _cmd_explain(report, explain)

    if args.update_baseline:
        save_baseline(baseline_path, report.findings)
        print(
            f"baseline updated: {len(report.findings)} finding(s) "
            f"recorded in {baseline_path}"
        )
        return 0

    for finding in report.new:
        print(finding.format())
    for entry in report.stale:
        print(f"stale baseline entry (fixed? regenerate): {entry.format()}")
    summary = (
        f"lint: {report.files_scanned} files, "
        f"{len(report.new)} new finding(s), "
        f"{len(report.grandfathered)} baselined, "
        f"{len(report.stale)} stale baseline entr(ies), "
        f"{report.suppressed} suppressed"
    )
    print(summary)

    if args.report:
        Path(args.report).write_text(
            json.dumps(
                report.as_dict(), indent=1, sort_keys=True, allow_nan=False
            )
            + "\n",
            encoding="utf-8",
        )

    if report.new:
        return 1
    if args.check_baseline and report.stale:
        return 1
    return 0


def _parse_explain(spec: str) -> tuple[str, str, int] | None:
    """``"CODE:PATH:LINE"`` -> ``(code, path, line)`` (None when bad)."""
    parts = spec.rsplit(":", 1)
    if len(parts) != 2 or not parts[1].isdigit():
        return None
    head, line = parts[0], int(parts[1])
    code, sep, path = head.partition(":")
    if not sep or not code or not path:
        return None
    return (code, path, line)


def _cmd_explain(report, explain: tuple[str, str, int]) -> int:
    code, path, line = explain
    matched = [
        (f, False)
        for f in report.findings
        if f.code == code and f.path == path and f.line == line
    ]
    matched.extend(
        (f, True)
        for f in report.silenced
        if f.code == code and f.path == path and f.line == line
    )
    if not matched:
        print(
            f"no finding {code} at {path}:{line} "
            "(fixed findings have no path to explain)"
        )
        return 1
    for finding, silenced in matched:
        suffix = " [suppressed inline]" if silenced else ""
        print(finding.format() + suffix)
        if finding.explanation:
            print(finding.explanation)
        else:
            print("(per-file finding: no interprocedural path)")
    return 0
