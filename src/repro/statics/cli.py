"""``repro lint``: the command-line face of the invariant linter.

Exit codes: 0 — clean against the baseline; 1 — new findings (or, with
``--check-baseline``, stale baseline entries); 2 — usage error.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.statics.baseline import (
    DEFAULT_BASELINE,
    load_baseline,
    save_baseline,
)
from repro.statics.engine import DEFAULT_TARGETS, repo_root, run_lint
from repro.statics.rules import all_rules, rules_by_code


def add_lint_parser(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "lint",
        help="AST-based invariant linter over the repo's own source",
        description=(
            "Enforces the determinism/lockstep/serialization/cache "
            "contracts (rules RPL001-RPL007) at lint time. "
            "See DESIGN.md item 40."
        ),
    )
    p.add_argument(
        "targets",
        nargs="*",
        default=list(DEFAULT_TARGETS),
        help=f"files/directories to lint (default: {' '.join(DEFAULT_TARGETS)})",
    )
    p.add_argument(
        "--root",
        default=None,
        help="repository root (default: auto-detected from the package)",
    )
    p.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file, root-relative (default: {DEFAULT_BASELINE})",
    )
    p.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report every finding as new",
    )
    p.add_argument(
        "--check-baseline",
        action="store_true",
        help="CI gate: also fail on stale (already-fixed) baseline entries",
    )
    p.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    p.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    p.add_argument(
        "--report",
        default=None,
        help="also write a JSON findings report to this path",
    )
    p.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule with its rationale and exit",
    )
    p.set_defaults(func=cmd_lint)


def cmd_lint(args) -> int:
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.title}")
            print(f"        {rule.rationale}")
        return 0
    root = Path(args.root).resolve() if args.root else repo_root()
    try:
        rules = rules_by_code(
            [c.strip() for c in args.select.split(",")] if args.select else None
        )
    except ValueError as exc:
        print(str(exc))
        return 2
    missing = [
        t for t in args.targets if not (root / t).exists()
    ]
    if missing:
        print(
            f"lint target(s) not found under {root}: {', '.join(missing)}"
        )
        return 2
    baseline_path = root / args.baseline
    baseline = None if args.no_baseline else load_baseline(baseline_path)
    report = run_lint(
        root=root,
        targets=tuple(args.targets),
        rules=rules,
        baseline=baseline,
    )

    if args.update_baseline:
        save_baseline(baseline_path, report.findings)
        print(
            f"baseline updated: {len(report.findings)} finding(s) "
            f"recorded in {baseline_path}"
        )
        return 0

    for finding in report.new:
        print(finding.format())
    for entry in report.stale:
        print(f"stale baseline entry (fixed? regenerate): {entry.format()}")
    summary = (
        f"lint: {report.files_scanned} files, "
        f"{len(report.new)} new finding(s), "
        f"{len(report.grandfathered)} baselined, "
        f"{len(report.stale)} stale baseline entr(ies), "
        f"{report.suppressed} suppressed"
    )
    print(summary)

    if args.report:
        Path(args.report).write_text(
            json.dumps(
                report.as_dict(), indent=1, sort_keys=True, allow_nan=False
            )
            + "\n",
            encoding="utf-8",
        )

    if report.new:
        return 1
    if args.check_baseline and report.stale:
        return 1
    return 0
