"""Deterministic project call graph for whole-program lint rules.

The graph is built from the same per-file *facts* documents the dataflow
engine caches (`repro.statics.dataflow`): each file contributes its
module-qualified definitions (functions, classes with bases, inferred
attribute types) and every call site's *target descriptor* — either a
dotted name resolved through :class:`~repro.statics.core.ImportMap` at
extraction time, or a method call pending receiver-type resolution here.

Receiver types come from cheap, deterministic heuristics: parameter
annotations, ``AnnAssign`` declarations, constructor-call assignments,
return annotations of resolved callees, ``self`` bound to the defining
class, and attribute types inferred from ``__init__``.  A ``Union``/
``Optional`` annotation resolves to its first project class — a deliberate
conflation documented as a known false-negative shape (DESIGN.md).

Everything is sorted: same tree, same JSON, byte for byte.
"""

from __future__ import annotations

import ast
from typing import Any

from repro.statics.core import ImportMap

CALL_GRAPH_FORMAT_VERSION = 1

#: Targets whose leading path component is stripped before deriving the
#: module name (``src/repro/sim/engine.py`` -> ``repro.sim.engine``).
_SRC_PREFIX = "src/"


def module_name_for(rel: str) -> str:
    """Module name of a repo-root-relative path, forward slashes."""
    name = rel
    if name.startswith(_SRC_PREFIX):
        name = name[len(_SRC_PREFIX):]
    if name.endswith(".py"):
        name = name[:-3]
    if name.endswith("/__init__"):
        name = name[: -len("/__init__")]
    return name.replace("/", ".")


def _unparse_dotted(node: ast.expr) -> str | None:
    """``a.b.c`` as a string for plain Name/Attribute chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def annotation_name(
    node: ast.expr | None,
    imap: ImportMap,
    module: str,
    local_classes: set[str],
) -> str | None:
    """Best-effort dotted type name of an annotation expression.

    ``Optional[X]``/``Union[X, ...]``/``X | None`` unwrap to the first
    concrete alternative; generic containers (``list[X]``) resolve to
    nothing (the element type is not the receiver type).
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant):
        if not isinstance(node.value, str):
            return None
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
        return annotation_name(node, imap, module, local_classes)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        for side in (node.left, node.right):
            name = annotation_name(side, imap, module, local_classes)
            if name is not None and name != "None":
                return name
        return None
    if isinstance(node, ast.Subscript):
        head = _unparse_dotted(node.value)
        if head is None:
            return None
        tail = head.rsplit(".", 1)[-1]
        if tail in ("Optional", "Union"):
            inner = node.slice
            if isinstance(inner, ast.Tuple):
                for elt in inner.elts:
                    name = annotation_name(elt, imap, module, local_classes)
                    if name is not None and name != "None":
                        return name
                return None
            return annotation_name(inner, imap, module, local_classes)
        return None
    dotted = _unparse_dotted(node)
    if dotted is None:
        return None
    resolved = imap.resolve(node)
    if resolved is not None:
        return resolved
    if "." not in dotted and dotted in local_classes:
        return f"{module}.{dotted}"
    return dotted


def extract_defs(tree: ast.Module, rel: str) -> dict[str, Any]:
    """The definition side of a file's facts document (JSON-able).

    ``{"module": ..., "functions": {name: FN}, "classes": {name: CLS}}``
    where ``FN = {"line", "params", "ret", "static"}`` and
    ``CLS = {"line", "bases": [dotted], "methods": {name: FN},
    "attrs": {attr: dotted-type}}``.
    """
    module = module_name_for(rel)
    imap = ImportMap(tree)
    local_classes = {
        node.name for node in tree.body if isinstance(node, ast.ClassDef)
    }

    # Module-level imports double as re-exports: ``from repro.experiments
    # import execute_run`` at a call site spells the function as
    # ``repro.experiments.execute_run`` even though it is *defined* in
    # ``repro.experiments.runner`` — the index chases these maps.
    is_init = rel.endswith("__init__.py")
    package = module if is_init else module.rpartition(".")[0]
    reexports: dict[str, str] = {}
    for node in tree.body:
        if isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                parts = package.split(".") if package else []
                parts = parts[: len(parts) - (node.level - 1)]
                if node.module:
                    parts.append(node.module)
                base = ".".join(parts)
            if not base:
                continue
            for alias in node.names:
                if alias.name != "*":
                    reexports[alias.asname or alias.name] = (
                        f"{base}.{alias.name}"
                    )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    reexports[alias.asname] = alias.name

    def fn_entry(node: ast.FunctionDef | ast.AsyncFunctionDef) -> dict[str, Any]:
        args = node.args
        params = [a.arg for a in args.posonlyargs + args.args]
        kwonly = [a.arg for a in args.kwonlyargs]
        anns: dict[str, str] = {}
        for a in args.posonlyargs + args.args + args.kwonlyargs:
            name = annotation_name(a.annotation, imap, module, local_classes)
            if name is not None:
                anns[a.arg] = name
        static = any(
            isinstance(d, ast.Name) and d.id == "staticmethod"
            for d in node.decorator_list
        )
        return {
            "line": node.lineno,
            "params": params,
            "kwonly": kwonly,
            "anns": anns,
            "ret": annotation_name(node.returns, imap, module, local_classes),
            "static": static,
        }

    def class_attrs(node: ast.ClassDef) -> dict[str, str]:
        """Attribute types from class-level AnnAssign and ``__init__``."""
        attrs: dict[str, str] = {}

        def note(attr: str, type_name: str | None) -> None:
            if type_name is not None and attr not in attrs:
                attrs[attr] = type_name

        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                note(
                    stmt.target.id,
                    annotation_name(
                        stmt.annotation, imap, module, local_classes
                    ),
                )
        init = next(
            (
                s
                for s in node.body
                if isinstance(s, ast.FunctionDef) and s.name == "__init__"
            ),
            None,
        )
        if init is None:
            return attrs
        param_anns = {
            a.arg: annotation_name(a.annotation, imap, module, local_classes)
            for a in init.args.posonlyargs
            + init.args.args
            + init.args.kwonlyargs
        }

        def value_type(value: ast.expr) -> str | None:
            if isinstance(value, ast.Name):
                return param_anns.get(value.id)
            if isinstance(value, ast.Call):
                dotted = _unparse_dotted(value.func)
                if dotted is None:
                    return None
                resolved = imap.resolve(value.func)
                if resolved is not None:
                    return resolved
                if "." not in dotted and dotted in local_classes:
                    return f"{module}.{dotted}"
                return dotted
            if isinstance(value, ast.IfExp):
                return value_type(value.body) or value_type(value.orelse)
            return None

        for stmt in ast.walk(init):
            if isinstance(stmt, ast.AnnAssign):
                target = stmt.target
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    note(
                        target.attr,
                        annotation_name(
                            stmt.annotation, imap, module, local_classes
                        ),
                    )
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    note(target.attr, value_type(stmt.value))
        return attrs

    functions: dict[str, Any] = {}
    classes: dict[str, Any] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions[node.name] = fn_entry(node)
        elif isinstance(node, ast.ClassDef):
            bases: list[str] = []
            for base in node.bases:
                name = annotation_name(base, imap, module, local_classes)
                if name is not None:
                    bases.append(name)
            methods = {
                s.name: fn_entry(s)
                for s in node.body
                if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            classes[node.name] = {
                "line": node.lineno,
                "bases": bases,
                "methods": methods,
                "attrs": class_attrs(node),
            }
    return {
        "module": module,
        "functions": functions,
        "classes": classes,
        "reexports": reexports,
    }


class ProjectIndex:
    """All project definitions, addressable by qualified name.

    Function qualnames are ``module.func`` / ``module.Class.method``;
    class qualnames are ``module.Class``.
    """

    def __init__(self, facts_by_rel: dict[str, dict[str, Any]]) -> None:
        #: qualname -> {"rel", "line", "params", "kwonly", "anns", "ret",
        #:              "static", "cls" (class qualname or None)}
        self.functions: dict[str, dict[str, Any]] = {}
        #: class qualname -> {"rel", "bases", "attrs", "methods": {name}}
        self.classes: dict[str, dict[str, Any]] = {}
        self.modules: set[str] = set()
        #: module -> {local name: dotted target} (import re-exports).
        self.reexports: dict[str, dict[str, str]] = {}
        for rel in sorted(facts_by_rel):
            defs = facts_by_rel[rel]["defs"]
            module = defs["module"]
            self.modules.add(module)
            reexports = defs.get("reexports", {})
            if reexports:
                self.reexports[module] = dict(reexports)
            for name, fn in defs["functions"].items():
                qn = f"{module}.{name}"
                self.functions[qn] = {**fn, "rel": rel, "cls": None}
            for cname, cls in defs["classes"].items():
                cqn = f"{module}.{cname}"
                self.classes[cqn] = {
                    "rel": rel,
                    "bases": list(cls["bases"]),
                    "attrs": dict(cls["attrs"]),
                    "methods": sorted(cls["methods"]),
                }
                for mname, fn in cls["methods"].items():
                    self.functions[f"{cqn}.{mname}"] = {
                        **fn,
                        "rel": rel,
                        "cls": cqn,
                    }

    def resolve_class(self, dotted: str | None) -> str | None:
        if dotted is None:
            return None
        if dotted in self.classes:
            return dotted
        resolved = self.resolve_dotted(dotted)
        if resolved is not None and resolved[0] == "ctor":
            return resolved[1]
        return None

    def method_on(self, class_qn: str, attr: str) -> str | None:
        """Resolve ``<instance of class_qn>.attr()`` walking project bases."""
        seen: set[str] = set()
        stack = [class_qn]
        while stack:
            cqn = stack.pop(0)
            if cqn in seen or cqn not in self.classes:
                continue
            seen.add(cqn)
            qn = f"{cqn}.{attr}"
            if qn in self.functions:
                return qn
            stack.extend(self.classes[cqn]["bases"])
        return None

    def resolve_dotted(self, dotted: str | None) -> tuple[str, str] | None:
        """``("func", qualname)`` or ``("ctor", class qualname)``.

        Accepts ``module.func``, ``module.Class`` (a constructor call) and
        ``module.Class.method``; anything else is external.
        """
        if dotted is None:
            return None
        if dotted in self.functions:
            return ("func", dotted)
        if dotted in self.classes:
            return ("ctor", dotted)
        head, _, attr = dotted.rpartition(".")
        if head in self.classes:
            qn = self.method_on(head, attr)
            if qn is not None:
                return ("func", qn)
        return self._chase_reexport(dotted)

    def _chase_reexport(
        self, dotted: str, depth: int = 0
    ) -> tuple[str, str] | None:
        """Resolve through package re-exports (bounded chase)."""
        if depth >= 5:
            return None
        parts = dotted.split(".")
        for i in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:i])
            exported = self.reexports.get(module)
            if exported is not None and parts[i] in exported:
                target = ".".join([exported[parts[i]], *parts[i + 1 :]])
                if target == dotted:
                    return None
                if target in self.functions:
                    return ("func", target)
                if target in self.classes:
                    return ("ctor", target)
                head, _, attr = target.rpartition(".")
                if head in self.classes:
                    qn = self.method_on(head, attr)
                    if qn is not None:
                        return ("func", qn)
                return self._chase_reexport(target, depth + 1)
            if module in self.modules:
                return None
        return None

    def param_names(self, qn: str, *, bound: bool) -> list[str]:
        """Positional parameter names of ``qn`` as seen by a call site.

        ``bound=True`` drops the ``self``/``cls`` receiver slot of a
        non-static method.
        """
        fn = self.functions[qn]
        params = list(fn["params"])
        if (
            bound
            and fn["cls"] is not None
            and not fn["static"]
            and params
            and params[0] in ("self", "cls")
        ):
            params = params[1:]
        return params


def local_type_env(
    index: ProjectIndex, qn: str, facts_fn: dict[str, Any]
) -> dict[str, str]:
    """Variable -> class-qualname map for one function.

    Sources, in priority order per variable (first clue wins, matching
    extraction order): parameter annotations, ``AnnAssign``, constructor
    assignments, return annotations of resolved callees.  ``self`` binds
    to the defining class.
    """
    env: dict[str, str] = {}
    fn = index.functions[qn]
    if fn["cls"] is not None and not fn["static"]:
        env["self"] = fn["cls"]
    for param, ann in fn["anns"].items():
        cls = index.resolve_class(ann)
        if cls is not None and param not in env:
            env[param] = cls
    for var, clue in facts_fn.get("clues", {}).items():
        if var in env:
            continue
        kind = clue.get("c")
        if kind == "ann":
            cls = index.resolve_class(clue.get("t"))
        elif kind == "ctor":
            resolved = index.resolve_dotted(clue.get("t"))
            if resolved is None:
                cls = None
            elif resolved[0] == "ctor":
                cls = resolved[1]
            else:
                cls = index.resolve_class(
                    index.functions[resolved[1]]["ret"]
                )
        else:
            cls = None
        if cls is not None:
            env[var] = cls
    return env


def resolve_call(
    index: ProjectIndex,
    caller_qn: str,
    record: dict[str, Any],
    type_env: dict[str, str],
) -> tuple[str, str] | None:
    """Resolve one call record to ``("func"|"ctor", qualname)`` or None.

    Method calls go through the receiver's inferred type; attribute types
    of ``self.<attr>`` come from the defining class's ``__init__``
    heuristics.
    """
    target = record["target"]
    kind = target.get("kind")
    if kind == "dotted":
        return index.resolve_dotted(target["name"])
    if kind != "method":
        return None
    recv = target["recv"]
    recv_type: str | None = None
    if recv["r"] == "var":
        recv_type = type_env.get(recv["id"])
    elif recv["r"] == "selfattr":
        own = index.functions[caller_qn]["cls"]
        if own is not None and own in index.classes:
            recv_type = index.resolve_class(
                index.classes[own]["attrs"].get(recv["attr"])
            )
    if recv_type is None:
        return None
    qn = index.method_on(recv_type, target["attr"])
    return ("func", qn) if qn is not None else None


class CallGraph:
    """Resolved adjacency over every project function, sorted throughout."""

    def __init__(
        self,
        index: ProjectIndex,
        facts_by_rel: dict[str, dict[str, Any]],
    ) -> None:
        self.index = index
        #: caller qualname -> sorted tuple of callee qualnames (functions
        #: and constructed classes alike).
        self.calls: dict[str, tuple[str, ...]] = {}
        #: callee qualname -> sorted tuple of caller qualnames.
        self.callers: dict[str, list[str]] = {}
        #: (caller qualname, call index) -> ("func"|"ctor", qualname)
        self.resolved: dict[tuple[str, int], tuple[str, str]] = {}
        self.type_envs: dict[str, dict[str, str]] = {}
        for rel in sorted(facts_by_rel):
            for qn in sorted(facts_by_rel[rel]["functions"]):
                fn_facts = facts_by_rel[rel]["functions"][qn]
                env = local_type_env(index, qn, fn_facts)
                self.type_envs[qn] = env
                out: set[str] = set()
                for record in fn_facts["calls"]:
                    resolved = resolve_call(index, qn, record, env)
                    if resolved is None:
                        continue
                    self.resolved[(qn, record["i"])] = resolved
                    out.add(resolved[1])
                self.calls[qn] = tuple(sorted(out))
        for caller in sorted(self.calls):
            for callee in self.calls[caller]:
                self.callers.setdefault(callee, []).append(caller)

    def entry_points(self) -> tuple[str, ...]:
        """Functions no project call site resolves to, sorted.

        Constructors don't count as callers of ``__init__``; dynamically
        dispatched functions (CLI ``args.func``, pool workers) land here
        by design — they are exactly the frames nothing above can contain.
        """
        return tuple(
            qn
            for qn in sorted(self.index.functions)
            if qn not in self.callers
        )

    def as_dict(self) -> dict[str, Any]:
        """Sorted, diffable JSON document (``repro lint --call-graph``)."""
        functions = {}
        for qn in sorted(self.index.functions):
            fn = self.index.functions[qn]
            functions[qn] = {
                "path": fn["rel"],
                "line": fn["line"],
                "calls": list(self.calls.get(qn, ())),
            }
        return {
            "format_version": CALL_GRAPH_FORMAT_VERSION,
            "functions": functions,
        }
