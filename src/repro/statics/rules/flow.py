"""Whole-program flow rules: RPL008, RPL009, RPL010.

These are the interprocedural upgrades of the per-line determinism rules:
RPL008 follows entropy through calls into persisted documents (where
RPL001 can only flag the source line), RPL009 checks every literal service
frame against :data:`repro.service.protocol.FRAME_SCHEMAS`, and RPL010
proves fault-seam exceptions cannot escape an entry point without an
incident record (the flow-sensitive upgrade of RPL007's per-handler
check).  RPL008/RPL010 are :class:`ProjectRule`\\ s driven by the shared
:class:`repro.statics.dataflow.Project`; RPL009 stays per-file (a frame
literal is checkable where it is written).
"""

from __future__ import annotations

import ast
import re
from typing import Any

from repro.service import protocol as _protocol
from repro.statics.core import Finding, ImportMap, ProjectRule, Rule, SourceFile
from repro.statics.dataflow import EscapeHit, FlowHit

_PROTOCOL_MODULE = "repro.service.protocol"
#: Constant-string frame types are only checked when they look like frame
#: type tags (ALL_CAPS); ``{"type": "gauge"}`` in unrelated service code
#: is not a frame literal.
_TYPE_TAG = re.compile(r"[A-Z][A-Z_]*\Z")


def _render_flow(hit: FlowHit) -> str:
    src_name, src_rel, src_line, _ = hit.source
    sink_name, sink_rel, sink_line, _ = hit.sink
    parts = [f"source {src_name} at {src_rel}:{src_line}"]
    parts.extend(
        f"  -> {rel}:{line}: {desc}" for rel, line, desc in hit.trail
    )
    parts.append(f"sink {sink_name} at {sink_rel}:{sink_line}")
    return "\n".join(parts)


def _render_escape(hit: EscapeHit) -> str:
    origin_rel, origin_line, _ = hit.origin
    parts = [
        f"armed seam '{hit.seam}' at {origin_rel}:{origin_line}"
    ]
    parts.extend(
        f"  -> {rel}:{line}: escapes through call to {callee}()"
        for rel, line, callee in hit.chain
    )
    parts.append(f"reaches entry point {hit.entry}() uncontained")
    return "\n".join(parts)


class DeterminismFlowRule(ProjectRule):
    """RPL008: ambient entropy must not *reach* a persisted document.

    RPL001 flags entropy at the line it is produced; this rule follows the
    value through assignments, container/field structure, and any number
    of project-internal calls, and fires where it crosses into a
    serialization/digest/frame sink.  The finding anchors at the call site
    inside the anchored file — the actionable frame — and carries the full
    hop trail for ``repro lint --explain``.
    """

    code = "RPL008"
    title = "entropy flows into a persisted document"
    rationale = (
        "Wall clocks, unseeded RNG, pids/hostnames/env reaching "
        "json/pickle/digest/frame sinks make persisted artifacts "
        "host- and run-dependent, breaking the byte-determinism contract "
        "even when the source line itself looks innocent."
    )

    def applies_to(self, rel: str) -> bool:
        # Wall-clock measurement is the *point* of benchmarks/; a
        # benchmark report is not a determinism-contract document.
        return not rel.startswith("benchmarks/")

    def check_project(self, project: Any) -> list[Finding]:
        findings: list[Finding] = []
        for hit in project.flow_hits():
            rel, line, col = hit.anchor
            if not self.applies_to(rel):
                continue
            src_name, src_rel, src_line, _ = hit.source
            sink_name, sink_rel, sink_line, _ = hit.sink
            local = src_rel == rel and sink_rel == rel
            where = "" if local else f" via {len(hit.trail)} call hop(s)"
            findings.append(
                Finding(
                    path=rel,
                    line=line,
                    col=col + 1,
                    code=self.code,
                    message=(
                        f"value derived from {src_name} "
                        f"({src_rel}:{src_line}) reaches persisted-document "
                        f"sink {sink_name} ({sink_rel}:{sink_line})"
                        f"{where}; derive it from the run spec or the "
                        "virtual clock instead"
                    ),
                    content=project.line(rel, line),
                    explanation=_render_flow(hit),
                )
            )
        return findings


class FrameConformanceRule(Rule):
    """RPL009: literal frames must match ``protocol.FRAME_SCHEMAS``.

    Every dict literal with a ``"type"`` key, in any module that imports
    the protocol (or in ``protocol.py`` itself), is checked against the
    registry: unknown type, missing required keys, keys outside the
    schema.  ``**splat`` construction skips the missing-required check
    (the splat may supply them) but literal extra keys are still definite
    violations.
    """

    code = "RPL009"
    title = "service frame literal violates the protocol schema"
    rationale = (
        "A malformed frame fails at the peer, at runtime, in a live "
        "session; the schema registry makes the contract checkable where "
        "the frame is written."
    )

    def check(self, src: SourceFile) -> list[Finding]:
        imap = ImportMap(src.tree)
        local_consts = self._module_constants(src.tree)
        if not self._engaged(src, imap):
            return []
        findings: list[Finding] = []
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Dict):
                findings.extend(
                    self._check_dict(src, node, imap, local_consts)
                )
        return findings

    @staticmethod
    def _module_constants(tree: ast.Module) -> dict[str, str]:
        consts: dict[str, str] = {}
        for stmt in tree.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            ):
                consts[stmt.targets[0].id] = stmt.value.value
        return consts

    @staticmethod
    def _engaged(src: SourceFile, imap: ImportMap) -> bool:
        rel = src.rel
        if rel.endswith("service/protocol.py") or rel == "protocol.py":
            return True
        if _PROTOCOL_MODULE in imap.modules.values():
            return True
        for module, symbol in imap.symbols.values():
            if f"{module}.{symbol}" == _PROTOCOL_MODULE:
                return True
            if module == _PROTOCOL_MODULE:
                return True
        return False

    def _frame_type(
        self,
        value: ast.expr,
        imap: ImportMap,
        local_consts: dict[str, str],
    ) -> tuple[str, str] | None:
        """``(type_value, spelled)`` of a frame-type expression.

        ``type_value`` is the runtime string (or ``""`` when the spelling
        names a protocol attribute that does not exist), ``spelled`` is
        how the source wrote it.  ``None`` means "not recognizably a
        frame type" and the dict is skipped.
        """
        if isinstance(value, ast.Constant):
            if isinstance(value.value, str) and _TYPE_TAG.fullmatch(
                value.value
            ):
                return (value.value, repr(value.value))
            return None
        if isinstance(value, ast.Name) and value.id in local_consts:
            return (local_consts[value.id], value.id)
        resolved = imap.resolve(value)
        if resolved is None:
            return None
        if resolved.startswith(_PROTOCOL_MODULE + "."):
            attr = resolved[len(_PROTOCOL_MODULE) + 1 :]
            runtime = getattr(_protocol, attr, None)
            if isinstance(runtime, str):
                return (runtime, f"protocol.{attr}")
            return ("", f"protocol.{attr}")
        return None

    def _check_dict(
        self,
        src: SourceFile,
        node: ast.Dict,
        imap: ImportMap,
        local_consts: dict[str, str],
    ) -> list[Finding]:
        literal_keys: list[str] = []
        type_value: ast.expr | None = None
        has_splat = False
        has_dynamic = False
        for key, value in zip(node.keys, node.values):
            if key is None:
                has_splat = True
            elif isinstance(key, ast.Constant) and isinstance(
                key.value, str
            ):
                literal_keys.append(key.value)
                if key.value == "type":
                    type_value = value
            else:
                has_dynamic = True
        if type_value is None:
            return []
        resolved = self._frame_type(type_value, imap, local_consts)
        if resolved is None:
            return []
        frame_type, spelled = resolved
        schemas = _protocol.FRAME_SCHEMAS
        if frame_type not in schemas:
            return [
                src.finding(
                    self.code,
                    node,
                    f"frame literal has unknown type {spelled} "
                    f"(known: {', '.join(sorted(schemas))})",
                )
            ]
        required, optional = schemas[frame_type]
        findings: list[Finding] = []
        missing = sorted(required - set(literal_keys))
        if missing and not has_splat and not has_dynamic:
            findings.append(
                src.finding(
                    self.code,
                    node,
                    f"{frame_type} frame literal is missing required "
                    f"key(s): {', '.join(missing)}",
                )
            )
        extra = sorted(set(literal_keys) - required - optional)
        if extra:
            findings.append(
                src.finding(
                    self.code,
                    node,
                    f"{frame_type} frame literal has key(s) outside the "
                    f"schema: {', '.join(extra)}",
                )
            )
        return findings


class SeamEscapeRule(ProjectRule):
    """RPL010: armed fault seams must not escape an entry point.

    A seam call (``injector.check(...)`` / ``.mangle(...)``) raises
    :class:`~repro.faults.injector.InjectedFault` when armed.  RPL007
    checks individual handlers; this rule proves the whole call chain: if
    an armed seam's exception can propagate out of a function nobody in
    the project calls (an entry point — CLI command, service handler)
    without crossing a handler that records an incident or quarantines
    the run, the fault disappears into a raw traceback and the run
    quarantine contract is broken.
    """

    code = "RPL010"
    title = "fault seam can escape an entry point unrecorded"
    rationale = (
        "Injected faults that surface as raw tracebacks defeat the "
        "quarantine/incident-stream contract: the run dies without a "
        "failure record, so replay and triage lose the evidence."
    )

    def check_project(self, project: Any) -> list[Finding]:
        findings: list[Finding] = []
        for hit in project.seam_escapes():
            rel, line, col = hit.anchor
            if not self.applies_to(rel):
                continue
            origin_rel, origin_line, _ = hit.origin
            findings.append(
                Finding(
                    path=rel,
                    line=line,
                    col=col + 1,
                    code=self.code,
                    message=(
                        f"fault seam '{hit.seam}' "
                        f"({origin_rel}:{origin_line}) can escape entry "
                        f"point {hit.entry}() without an incident record "
                        "or quarantine; catch it and record the incident"
                    ),
                    content=project.line(rel, line),
                    explanation=_render_escape(hit),
                )
            )
        return findings
