"""RPL003: direct mutation of Node/Cluster state outside the listener core.

PR 6's ``ClusterIndex`` (DESIGN.md 35) mirrors the ``Node`` object graph in
numpy struct-of-arrays, kept in *exact lockstep* via mutation listeners that
only ``cluster/state.py`` fires.  Any write that bypasses the listener —
``node.up = False``, ``node.allocations[job] = share``,
``node.allocations.pop(job)`` — desyncs the mirror: aggregates served from
the arrays (``free``, ``gpu_utilization``, ``placement_of``) silently stop
matching the objects, which the behavioral tests only catch if a golden
happens to cross the desynced query.

All mutations must route through the sanctioned API: ``Node.allocate`` /
``set_allocation`` / ``release``, ``Cluster.apply`` / ``release`` /
``remove_node`` / ``add_node``.
"""

from __future__ import annotations

import ast

from repro.statics.core import Finding, Rule, SourceFile

#: The listener core: the only files allowed to touch mirrored state.
ALLOWED_FILES = (
    "src/repro/cluster/state.py",
    "src/repro/cluster/soa.py",
)

#: Attributes mirrored by (or wired to) the SoA index.  A bare store to any
#: of these bypasses the listener protocol.
_MIRRORED_ATTRS = {
    "up",
    "allocations",
    "_listener",
    "used_gpus",
    "used_cpus",
    "used_mem",
    "alloc_count",
}

#: In-place mutators on the allocations dict.
_DICT_MUTATORS = {"pop", "clear", "update", "setdefault", "popitem"}

#: Listener-protocol internals (state.py's private channel to the mirror).
_PROTOCOL_CALLS = {"_notify", "share_changed", "node_down", "node_up",
                   "append_node"}


class LockstepRule(Rule):
    code = "RPL003"
    title = "Node/Cluster state written outside the mutation-listener core"
    rationale = (
        "The SoA ClusterIndex mirror stays correct only if every Node "
        "mutation fires its listener; route writes through Node.allocate/"
        "set_allocation/release or Cluster.apply/remove_node/add_node "
        "(DESIGN.md 35)."
    )

    def applies_to(self, rel: str) -> bool:
        return rel not in ALLOWED_FILES

    def check(self, src: SourceFile) -> list[Finding]:
        out: list[Finding] = []
        for node in ast.walk(src.tree):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            for target in targets:
                out.extend(self._check_target(src, node, target))
            if isinstance(node, ast.Call):
                out.extend(self._check_call(src, node))
        return out

    def _check_target(
        self, src: SourceFile, stmt: ast.stmt, target: ast.expr
    ) -> list[Finding]:
        # node.up = ... / node.allocations = ... / index.used_gpus = ...
        if (
            isinstance(target, ast.Attribute)
            and target.attr in _MIRRORED_ATTRS
        ):
            return [
                src.finding(
                    self.code,
                    stmt,
                    f"direct write to .{target.attr} bypasses the SoA "
                    "mutation listener; use the Node/Cluster mutation API",
                )
            ]
        # node.allocations[job_id] = ... / del node.allocations[job_id]
        if (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Attribute)
            and target.value.attr == "allocations"
        ):
            return [
                src.finding(
                    self.code,
                    stmt,
                    "subscript write to .allocations bypasses the SoA "
                    "mutation listener; use Node.allocate/set_allocation/"
                    "release",
                )
            ]
        return []

    def _check_call(self, src: SourceFile, node: ast.Call) -> list[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return []
        # node.allocations.pop(...) and friends
        if (
            func.attr in _DICT_MUTATORS
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "allocations"
        ):
            return [
                src.finding(
                    self.code,
                    node,
                    f".allocations.{func.attr}() mutates mirrored state "
                    "behind the listener; use Node.allocate/"
                    "set_allocation/release",
                )
            ]
        # x._notify(...) / listener.share_changed(...) outside the core
        if func.attr in _PROTOCOL_CALLS:
            return [
                src.finding(
                    self.code,
                    node,
                    f".{func.attr}() is the listener protocol's private "
                    "channel; only cluster/state.py and cluster/soa.py "
                    "may drive it",
                )
            ]
        return []
