"""RPL005: memo caches over refittable perf-model state need a version key.

``PerfModelStore`` is *refittable*: an online refit replaces a model's
fitted parameters mid-run and bumps ``model_version(name)``.  Any memo that
caches a store-derived value without consulting a version serves stale
predictions after the refit — exactly the bug class PR 1 centralized the
plan-evaluation engine to kill and PR 5's cache audit re-fixed by hand
(DESIGN.md 32–34).

The rule is a class-level heuristic: a class that (a) reaches into a perf
store and (b) holds a dict whose name says it is a cache/memo must (c) show
*some* version discipline — a ``version``-named key, a version-carrying
value tuple, or a version check anywhere in the class.  ``functools``
caches on store-reading callables are flagged unconditionally: ``lru_cache``
has no invalidation hook at all.
"""

from __future__ import annotations

import ast

from repro.statics.core import Finding, ImportMap, Rule, SourceFile

_STORE_NAMES = {"perf_store", "PerfModelStore"}


def _mentions(tree: ast.AST, predicate) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and predicate(node.id):
            return True
        if isinstance(node, ast.Attribute) and predicate(node.attr):
            return True
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ) and predicate(node.name):
            return True
    return False


def _is_memo_name(name: str) -> bool:
    lowered = name.lower()
    return "cache" in lowered or "memo" in lowered


def _is_dict_init(value: ast.expr | None) -> bool:
    if isinstance(value, ast.Dict):
        return True
    return (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id == "dict"
    )


class CacheSoundnessRule(Rule):
    code = "RPL005"
    title = "store-derived memo without a model_version key"
    rationale = (
        "PerfModelStore refits bump model_version; a memo over store "
        "reads that never consults a version serves stale predictions "
        "after a refit. Key (or value-tag) the memo with model_version, "
        "or route through the versioned PlanEvalEngine (DESIGN.md 32-34)."
    )

    def check(self, src: SourceFile) -> list[Finding]:
        imports = ImportMap(src.tree)
        out: list[Finding] = []
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ClassDef):
                out.extend(self._check_class(src, node))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                out.extend(self._check_functools(src, node, imports))
        return out

    def _check_class(
        self, src: SourceFile, cls: ast.ClassDef
    ) -> list[Finding]:
        if not _mentions(cls, lambda n: n in _STORE_NAMES):
            return []
        if _mentions(cls, lambda n: "version" in n.lower()):
            return []  # some version discipline is visible; trust it
        out: list[Finding] = []
        for node in ast.walk(cls):
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and _is_memo_name(target.attr)
                and _is_dict_init(value)
            ):
                out.append(
                    src.finding(
                        self.code,
                        node,
                        f"memo dict self.{target.attr} in a store-reading "
                        f"class ({cls.name}) shows no model_version "
                        "discipline; stale entries will survive refits",
                    )
                )
        return out

    def _check_functools(
        self,
        src: SourceFile,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        imports: ImportMap,
    ) -> list[Finding]:
        decorated = False
        for dec in fn.decorator_list:
            node = dec.func if isinstance(dec, ast.Call) else dec
            name = imports.resolve(node)
            if name in ("functools.lru_cache", "functools.cache"):
                decorated = True
        if not decorated:
            return []
        if not _mentions(fn, lambda n: n in _STORE_NAMES):
            return []
        return [
            src.finding(
                self.code,
                fn,
                f"lru_cache on {fn.name}() caches across PerfModelStore "
                "refits with no invalidation hook; use the versioned "
                "PlanEvalEngine or a version-keyed memo",
            )
        ]
