"""RPL004/RPL006: serialization round-trips and frozen-spec immutability.

RPL004 guards the document contract: every ``*_to_dict`` writer must have a
``*_from_dict`` reader (a write-only format drifts unnoticed until a reload
is needed), and every raw ``json.dump(s)`` must pass ``allow_nan=False`` —
Python's encoder happily emits ``NaN``/``Infinity``, which is not RFC 8259
and breaks every strict reader.  NaN-bearing statistics must be mapped to
``null`` first, the way ``sim/serialization.py`` does.

RPL006 guards frozen dataclasses: ``object.__setattr__`` is the sanctioned
escape hatch *inside* ``__init__``/``__post_init__`` (normalizing fields at
construction); anywhere else it mutates a value object other code assumes
immutable (specs are hashed into run keys — mutating one after digesting
silently invalidates the key).
"""

from __future__ import annotations

import ast

from repro.statics.core import Finding, ImportMap, Rule, SourceFile

#: Functions in which ``object.__setattr__`` is construction, not mutation.
_CONSTRUCTION_SCOPES = {"__init__", "__post_init__", "__new__", "__setstate__"}


def _pair_name(name: str) -> str | None:
    """The reader expected for a writer name (``None`` when exempt)."""
    if name.startswith("_"):
        return None  # private helpers are inlined by their public caller
    if name == "to_dict":
        return "from_dict"
    if name.endswith("_to_dict"):
        return name[: -len("_to_dict")] + "_from_dict"
    return None


class SerializationContractRule(Rule):
    code = "RPL004"
    title = "serialization-contract drift"
    rationale = (
        "Documents are the unit of exchange: a to_dict without a from_dict "
        "cannot be round-trip tested, and a raw json.dump without "
        "allow_nan=False can emit non-RFC-8259 NaN. Map NaN to null first "
        "(see sim/serialization.py) and keep reader/writer pairs together."
    )

    def check(self, src: SourceFile) -> list[Finding]:
        out: list[Finding] = []
        out.extend(self._check_pairs(src))
        imports = ImportMap(src.tree)
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Call):
                out.extend(self._check_dump(src, node, imports))
        return out

    def _check_pairs(self, src: SourceFile) -> list[Finding]:
        out: list[Finding] = []
        module_defs = {
            n.name
            for n in src.tree.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for node in src.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                expected = _pair_name(node.name)
                if expected and expected not in module_defs:
                    out.append(
                        src.finding(
                            self.code,
                            node,
                            f"{node.name}() has no matching {expected}() "
                            "in this module; writers without readers "
                            "cannot be round-trip tested",
                        )
                    )
            elif isinstance(node, ast.ClassDef):
                methods = {
                    m.name
                    for m in node.body
                    if isinstance(m, (ast.FunctionDef, ast.AsyncFunctionDef))
                }
                for member in node.body:
                    if not isinstance(
                        member, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        continue
                    expected = _pair_name(member.name)
                    if expected and expected not in methods:
                        out.append(
                            src.finding(
                                self.code,
                                member,
                                f"{node.name}.{member.name}() has no "
                                f"matching {expected}() on the class",
                            )
                        )
        return out

    def _check_dump(
        self, src: SourceFile, node: ast.Call, imports: ImportMap
    ) -> list[Finding]:
        name = imports.resolve(node.func)
        if name not in ("json.dump", "json.dumps"):
            return []
        for kw in node.keywords:
            if (
                kw.arg == "allow_nan"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is False
            ):
                return []
        return [
            src.finding(
                self.code,
                node,
                f"{name}() without allow_nan=False can emit non-RFC-8259 "
                "NaN/Infinity; map NaN to null first "
                "(see sim/serialization.py) and pass allow_nan=False",
            )
        ]


class FrozenMutationRule(Rule):
    code = "RPL006"
    title = "frozen dataclass mutated outside construction"
    rationale = (
        "object.__setattr__ outside __init__/__post_init__ mutates a value "
        "object other code hashes, digests, or shares by reference; build "
        "a new instance instead (dataclasses.replace)."
    )

    def check(self, src: SourceFile) -> list[Finding]:
        out: list[Finding] = []
        self._walk(src, src.tree.body, scope=None, out=out)
        return out

    def _walk(
        self,
        src: SourceFile,
        body: list[ast.stmt],
        scope: str | None,
        out: list[Finding],
    ) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._walk(src, node.body, scope=node.name, out=out)
            elif isinstance(node, ast.ClassDef):
                self._walk(src, node.body, scope=None, out=out)
            else:
                for call in ast.walk(node):
                    if (
                        isinstance(call, ast.Call)
                        and isinstance(call.func, ast.Attribute)
                        and call.func.attr == "__setattr__"
                        and isinstance(call.func.value, ast.Name)
                        and call.func.value.id == "object"
                        and scope not in _CONSTRUCTION_SCOPES
                    ):
                        out.append(
                            src.finding(
                                self.code,
                                call,
                                "object.__setattr__ outside __init__/"
                                "__post_init__ mutates a frozen value "
                                "object; use dataclasses.replace or a "
                                "mutable holder",
                            )
                        )
