"""RPL007: broad exception handlers that swallow failures silently.

PR 8's fault-injection subsystem (DESIGN.md 41-43) rests on one invariant:
a failure on a reproducible path is never *absorbed* — it is either
re-raised (and classified by the retry/quarantine machinery) or recorded
as a structured incident on the run's incident stream.  A bare
``except Exception: pass`` defeats both: the chaos harness cannot observe
the seam, the failure table under-counts, and the byte-determinism
contract hides the drift until a golden happens to cross it.

The rule flags every *broad* handler — bare ``except:``, ``Exception``,
``BaseException``, or a tuple containing either — whose body neither
``raise``\\ s nor calls an incident-recording function (any call whose
name contains ``incident``, e.g. ``self._record_incident(...)`` or
``incident_payload(exc)``).  Narrow handlers (``except OutOfMemoryError``)
are normal control flow and pass untouched.
"""

from __future__ import annotations

import ast

from repro.statics.core import Finding, Rule, SourceFile

#: Exception classes whose handlers count as broad.
_BROAD_NAMES = {"Exception", "BaseException"}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    """True for ``except:``, ``except Exception`` and tuples thereof."""
    etype = handler.type
    if etype is None:
        return True
    if isinstance(etype, ast.Name):
        return etype.id in _BROAD_NAMES
    if isinstance(etype, ast.Tuple):
        return any(
            isinstance(el, ast.Name) and el.id in _BROAD_NAMES
            for el in etype.elts
        )
    return False


def _records_or_raises(handler: ast.ExceptHandler) -> bool:
    """True when the handler body re-raises or records an incident."""
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                func = node.func
                name = ""
                if isinstance(func, ast.Name):
                    name = func.id
                elif isinstance(func, ast.Attribute):
                    name = func.attr
                if "incident" in name.lower():
                    return True
    return False


class SwallowedExceptionRule(Rule):
    code = "RPL007"
    title = "broad except swallows the failure without recording an incident"
    rationale = (
        "Fault containment must stay observable: a broad handler on a "
        "reproducible path either re-raises (so the retry/quarantine "
        "machinery classifies it) or records a structured incident "
        "(DESIGN.md 43). Silent absorption hides injected and real "
        "failures alike; narrow the except or call _record_incident/"
        "incident_payload in the handler."
    )

    def applies_to(self, rel: str) -> bool:
        # Benchmarks and examples are demo surfaces, not reproducible
        # paths; their best-effort cleanup handlers are fine.
        return not rel.startswith(("benchmarks/", "examples/"))

    def check(self, src: SourceFile) -> list[Finding]:
        out: list[Finding] = []
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node):
                continue
            if _records_or_raises(node):
                continue
            caught = (
                ast.unparse(node.type) if node.type is not None else "<bare>"
            )
            out.append(
                src.finding(
                    self.code,
                    node,
                    f"broad handler ({caught}) neither re-raises nor "
                    "records an incident; the failure disappears from "
                    "the incident stream",
                )
            )
        return out
