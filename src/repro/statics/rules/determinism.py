"""RPL001/RPL002: nondeterminism sources and iteration-order hazards.

The repo's headline contract is *byte determinism*: the same spec produces
byte-identical persisted documents regardless of executor topology, worker
count, or Python version (CI diffs run documents across 3.10/3.12).  Two
textual patterns break it silently:

* reading ambient entropy — wall clocks, the process-global ``random`` /
  ``numpy.random`` state — instead of deriving a stream from the run's seed
  via :func:`repro.rng.rng_for` (RPL001);
* accumulating floats in an order the language does not pin — ``sum`` over
  a ``set`` or over ``dict.values()``, or iterating an OS directory listing
  unsorted (float addition is not associative; ``os.listdir`` order is
  filesystem-dependent) (RPL002).
"""

from __future__ import annotations

import ast

from repro.statics.core import Finding, ImportMap, Rule, SourceFile

#: Ambient wall clocks: nondeterministic on any path.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}
#: Monotonic/perf timers: still wall-clock entropy, but measuring them is
#: the whole point of ``benchmarks/`` — the rule scopes them out there.
_PERF_TIMERS = {
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
}
#: Seeded-constructor entry points of ``numpy.random`` that are fine —
#: everything else on the module is process-global state.
_NP_RANDOM_OK = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.Philox",
    "numpy.random.bit_generator",
}


class NondeterminismRule(Rule):
    code = "RPL001"
    title = "ambient entropy on a reproducible path"
    rationale = (
        "Persisted documents must be a pure function of the run spec. "
        "Wall clocks and the process-global random state vary per host and "
        "per run; derive randomness from the seed via repro.rng.rng_for "
        "and keep wall-clock timing on the non-persisted perf channel."
    )

    def check(self, src: SourceFile) -> list[Finding]:
        imports = ImportMap(src.tree)
        in_benchmarks = src.rel.startswith("benchmarks/")
        out: list[Finding] = []
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            name = imports.resolve(node.func)
            if name is None:
                continue
            if name in _WALL_CLOCK:
                out.append(
                    src.finding(
                        self.code,
                        node,
                        f"wall-clock {name}() on a reproducible path; "
                        "simulation time is the only clock persisted "
                        "documents may depend on",
                    )
                )
            elif name in _PERF_TIMERS and not in_benchmarks:
                out.append(
                    src.finding(
                        self.code,
                        node,
                        f"{name}() reads the host clock; keep timing on "
                        "the non-persisted perf channel (and suppress "
                        "with the justification) or drop it",
                    )
                )
            elif name == "random" or name.startswith("random."):
                out.append(
                    src.finding(
                        self.code,
                        node,
                        f"{name}() uses the process-global random state; "
                        "derive an isolated stream with "
                        "repro.rng.rng_for(seed, *scope)",
                    )
                )
            elif (
                name.startswith("numpy.random.")
                and name not in _NP_RANDOM_OK
            ):
                out.append(
                    src.finding(
                        self.code,
                        node,
                        f"{name}() draws from numpy's module-level RNG; "
                        "derive an isolated stream with "
                        "repro.rng.rng_for(seed, *scope)",
                    )
                )
        return out


#: Directory-listing calls whose order is filesystem-dependent.
_LISTING_CALLS = {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
#: Method names with the same hazard on ``pathlib.Path`` receivers.
_LISTING_METHODS = {"glob", "rglob", "iterdir"}


class IterationOrderRule(Rule):
    code = "RPL002"
    title = "order-sensitive accumulation over an unordered source"
    rationale = (
        "Float addition is not associative: summing a set, a dict's "
        "values, or an unsorted directory listing makes the last digits "
        "of persisted metrics depend on insertion/filesystem order. "
        "Iterate sorted keys (or sorted paths) instead."
    )

    def check(self, src: SourceFile) -> list[Finding]:
        imports = ImportMap(src.tree)
        sorted_args: set[int] = set()
        for node in ast.walk(src.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("sorted", "list", "tuple", "len", "set")
            ):
                # sorted(...) pins the order; list/tuple/set/len do not
                # accumulate floats, so a listing passed to them is
                # order-benign at this site.
                for arg in node.args:
                    sorted_args.add(id(arg))
        out: list[Finding] = []
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            out.extend(self._check_sum(src, node))
            out.extend(
                self._check_listing(src, node, imports, sorted_args)
            )
        return out

    def _check_sum(self, src: SourceFile, node: ast.Call) -> list[Finding]:
        if not (isinstance(node.func, ast.Name) and node.func.id == "sum"):
            return []
        if not node.args:
            return []
        arg = node.args[0]
        if (
            isinstance(arg, ast.Call)
            and isinstance(arg.func, ast.Attribute)
            and arg.func.attr == "values"
            and not arg.args
            and not arg.keywords
        ):
            return [
                src.finding(
                    self.code,
                    node,
                    "sum over dict.values() accumulates in insertion "
                    "order; sum over sorted keys "
                    "(sum(d[k] for k in sorted(d))) to pin it",
                )
            ]
        is_set_literal = isinstance(arg, (ast.Set, ast.SetComp))
        is_set_call = (
            isinstance(arg, ast.Call)
            and isinstance(arg.func, ast.Name)
            and arg.func.id in ("set", "frozenset")
        )
        if is_set_literal or is_set_call:
            return [
                src.finding(
                    self.code,
                    node,
                    "sum over a set accumulates in hash order; "
                    "sum(sorted(...)) to pin it",
                )
            ]
        return []

    def _check_listing(
        self,
        src: SourceFile,
        node: ast.Call,
        imports: ImportMap,
        sorted_args: set[int],
    ) -> list[Finding]:
        name = imports.resolve(node.func)
        is_listing = name in _LISTING_CALLS
        if (
            not is_listing
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _LISTING_METHODS
            and imports.resolve(node.func) is None  # not e.g. glob.glob
        ):
            is_listing = True
            name = f"<path>.{node.func.attr}"
        if not is_listing or id(node) in sorted_args:
            return []
        return [
            src.finding(
                self.code,
                node,
                f"{name}() order is filesystem-dependent; wrap the "
                "listing in sorted(...) before iterating",
            )
        ]
