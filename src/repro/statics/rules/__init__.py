"""The rule registry: every invariant ``repro lint`` enforces.

Rules are instantiated once and returned sorted by code so runs are
deterministic.  Adding a rule = adding a class here + a fixture file in
``tests/data/statics/`` + a DESIGN.md entry.
"""

from __future__ import annotations

from repro.statics.core import Rule
from repro.statics.rules.caching import CacheSoundnessRule
from repro.statics.rules.contracts import (
    FrozenMutationRule,
    SerializationContractRule,
)
from repro.statics.rules.determinism import (
    IterationOrderRule,
    NondeterminismRule,
)
from repro.statics.rules.flow import (
    DeterminismFlowRule,
    FrameConformanceRule,
    SeamEscapeRule,
)
from repro.statics.rules.lockstep import LockstepRule
from repro.statics.rules.robustness import SwallowedExceptionRule

__all__ = ["all_rules", "rules_by_code"]


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, sorted by code."""
    rules = (
        NondeterminismRule(),
        IterationOrderRule(),
        LockstepRule(),
        SerializationContractRule(),
        CacheSoundnessRule(),
        FrozenMutationRule(),
        SwallowedExceptionRule(),
        DeterminismFlowRule(),
        FrameConformanceRule(),
        SeamEscapeRule(),
    )
    return tuple(sorted(rules, key=lambda r: r.code))


def rules_by_code(codes: list[str] | None = None) -> tuple[Rule, ...]:
    """The registered rules restricted to ``codes`` (all when ``None``)."""
    rules = all_rules()
    if codes is None:
        return rules
    wanted = set(codes)
    unknown = wanted - {r.code for r in rules}
    if unknown:
        raise ValueError(
            f"unknown rule code(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(r.code for r in rules)})"
        )
    return tuple(r for r in rules if r.code in wanted)
