"""The committed findings baseline: the CI gate is zero *new* findings.

The baseline grandfathers pre-existing findings so the gate can be strict
from day one.  Entries are identified by ``(path, code, stripped line
content)`` — stable under unrelated line-number drift — and matched as a
multiset, so two identical offending lines in one file need two entries.

``repro lint --check-baseline`` fails on new findings *and* on stale
entries (a fixed finding whose entry lingers): the baseline always mirrors
the tree exactly, which is what ``tests/test_statics.py``'s self-check
pins.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path

from repro.statics.core import Finding

BASELINE_FORMAT_VERSION = 1

#: Default location, repo-root-relative.
DEFAULT_BASELINE = "LINT_BASELINE.json"


@dataclass(frozen=True, order=True)
class BaselineEntry:
    """One grandfathered finding."""

    path: str
    code: str
    content: str

    def format(self) -> str:
        return f"{self.path}: {self.code} [{self.content}]"


def load_baseline(path: Path) -> Counter:
    """The baseline as an identity multiset (empty if the file is absent)."""
    if not path.exists():
        return Counter()
    data = json.loads(path.read_text(encoding="utf-8"))
    version = data.get("format_version")
    if version != BASELINE_FORMAT_VERSION:
        raise ValueError(
            f"unsupported baseline format version {version!r} "
            f"(expected {BASELINE_FORMAT_VERSION})"
        )
    return Counter(
        BaselineEntry(
            path=e["path"], code=e["code"], content=e["content"]
        )
        for e in data["findings"]
    )


def save_baseline(path: Path, findings: list[Finding]) -> None:
    """Write the current findings as the new baseline."""
    entries = sorted(
        BaselineEntry(path=f.path, code=f.code, content=f.content)
        for f in findings
    )
    doc = {
        "format_version": BASELINE_FORMAT_VERSION,
        "findings": [
            {"path": e.path, "code": e.code, "content": e.content}
            for e in entries
        ],
    }
    path.write_text(
        json.dumps(doc, indent=1, allow_nan=False) + "\n", encoding="utf-8"
    )


def split_against_baseline(
    findings: list[Finding], baseline: Counter
) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
    """``(new, grandfathered, stale)`` of findings vs the baseline multiset."""
    remaining = Counter(baseline)
    new: list[Finding] = []
    grandfathered: list[Finding] = []
    for finding in findings:
        entry = BaselineEntry(
            path=finding.path, code=finding.code, content=finding.content
        )
        if remaining[entry] > 0:
            remaining[entry] -= 1
            grandfathered.append(finding)
        else:
            new.append(finding)
    stale = sorted(remaining.elements())
    return new, grandfathered, stale
