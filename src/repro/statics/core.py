"""Core of the invariant linter: findings, parsed sources, suppressions.

``repro lint`` is an AST-based rule engine over the repo's own source.  It
exists because the contracts the test suite enforces *behaviorally* (byte
determinism across executor topologies and Python versions, SoA/object-graph
lockstep, RFC-8259 documents, versioned memo caches) are broken *textually*:
a single ``time.time()`` on a decision path or a ``sum`` over a ``set`` of
floats compiles, runs, and silently drifts.  Each rule names one invariant
and points at the sanctioned alternative.

Suppression contract
--------------------

A finding may be silenced only inline, on its own line, with a mandatory
written justification::

    t = time.perf_counter()  # repro-lint: disable=RPL001 -- wall-clock perf channel, never persisted

A suppression without a reason, and a suppression that matches no finding,
are themselves findings (``RPL000``): the suppression inventory can never
rot silently.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

#: Code for linter-meta findings (malformed or unused suppressions).
META_CODE = "RPL000"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)"
    r"(?:\s*--\s*(\S.*?))?\s*$"
)
_SUPPRESS_MARKER = re.compile(r"#\s*repro-lint:")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a precise source location.

    ``content`` is the stripped text of the offending line: together with
    ``path`` and ``code`` it forms the *baseline identity* of the finding,
    so grandfathered entries survive unrelated line-number drift.
    """

    path: str  # repo-root-relative, forward slashes
    line: int
    col: int
    code: str
    message: str
    content: str = ""
    #: Optional multi-line taint/escape path for ``--explain``.  Excluded
    #: from ordering and equality so baseline identity and report sort
    #: order are unchanged by explanation wording.
    explanation: str = field(default="", compare=False)

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    @property
    def identity(self) -> tuple[str, str, str]:
        return (self.path, self.code, self.content)


@dataclass(frozen=True)
class Suppression:
    """An inline ``# repro-lint: disable=...`` directive."""

    line: int
    codes: tuple[str, ...]
    reason: str


@dataclass
class SourceFile:
    """One parsed lint target: AST plus the comment-level suppression map."""

    path: Path  # absolute
    rel: str  # root-relative display path (forward slashes)
    text: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    suppressions: dict[int, Suppression] = field(default_factory=dict)
    #: RPL000 findings produced while *parsing* directives (missing reason,
    #: unparseable directive text).
    meta_findings: list[Finding] = field(default_factory=list)

    def line_content(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, code: str, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at an AST node of this file."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=self.rel,
            line=line,
            col=col + 1,
            code=code,
            message=message,
            content=self.line_content(line),
        )


def _scan_suppressions(src: SourceFile) -> None:
    """Populate the line -> Suppression map from comment tokens.

    Tokenizing (rather than regex over raw lines) keeps directives inside
    string literals from being honored as suppressions.
    """
    try:
        tokens = tokenize.generate_tokens(io.StringIO(src.text).readline)
        comments = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except tokenize.TokenError:  # pragma: no cover - tree already parsed
        comments = []
    for line, comment in comments:
        if not _SUPPRESS_MARKER.search(comment):
            continue
        match = _SUPPRESS_RE.search(comment)
        if not match:
            src.meta_findings.append(
                Finding(
                    path=src.rel,
                    line=line,
                    col=1,
                    code=META_CODE,
                    message=(
                        "malformed repro-lint directive (expected "
                        "'# repro-lint: disable=RPLxxx -- reason')"
                    ),
                    content=src.line_content(line),
                )
            )
            continue
        codes = tuple(
            sorted({c.strip() for c in match.group(1).split(",")})
        )
        reason = (match.group(2) or "").strip()
        if not reason:
            src.meta_findings.append(
                Finding(
                    path=src.rel,
                    line=line,
                    col=1,
                    code=META_CODE,
                    message=(
                        f"suppression of {', '.join(codes)} has no written "
                        "justification (append ' -- <reason>')"
                    ),
                    content=src.line_content(line),
                )
            )
            continue  # a reasonless suppression does not suppress
        src.suppressions[line] = Suppression(
            line=line, codes=codes, reason=reason
        )


def parse_source(path: Path, rel: str) -> SourceFile | Finding:
    """Parse one file; a syntax error is returned as an RPL000 finding."""
    text = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        return Finding(
            path=rel,
            line=exc.lineno or 1,
            col=(exc.offset or 0) or 1,
            code=META_CODE,
            message=f"file does not parse: {exc.msg}",
            content="",
        )
    src = SourceFile(
        path=path, rel=rel, text=text, tree=tree, lines=text.splitlines()
    )
    _scan_suppressions(src)
    return src


class Rule:
    """Base class: one invariant, one ``RPLxxx`` code.

    Subclasses set ``code``/``title``/``rationale`` and implement
    :meth:`check`.  ``applies_to`` lets a rule scope itself out of targets
    where its invariant does not hold by design (e.g. wall-clock timing is
    the *point* of ``benchmarks/``).
    """

    code: str = "RPL999"
    title: str = ""
    rationale: str = ""

    def applies_to(self, rel: str) -> bool:
        return True

    def check(self, src: SourceFile) -> list[Finding]:  # pragma: no cover
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule that needs the whole program, not one file.

    Project rules run after every target parses, against the shared
    :class:`repro.statics.dataflow.Project` (call graph + interprocedural
    summaries).  They emit ordinary :class:`Finding`\\ s — ``applies_to``
    filters which files their findings may *anchor* in, and the engine
    routes each finding back through that file's suppression map, so the
    baseline/suppression contract is identical to per-file rules.
    """

    def check(self, src: SourceFile) -> list[Finding]:
        return []

    def check_project(
        self, project: "object"
    ) -> list[Finding]:  # pragma: no cover
        raise NotImplementedError


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
class ImportMap:
    """Local-name resolution for import aliases in one module.

    Maps ``_time`` -> ``time`` (``import time as _time``) and
    ``perf_counter`` -> ``("time", "perf_counter")``
    (``from time import perf_counter``), so rules match the *imported
    thing*, not the spelling at the call site.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.modules: dict[str, str] = {}
        self.symbols: dict[str, tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.modules[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.symbols[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )

    def resolve(self, node: ast.expr) -> str | None:
        """Fully-qualified dotted name of an expression, if importable.

        ``_time.perf_counter`` -> ``"time.perf_counter"``;
        ``np.random.exponential`` -> ``"numpy.random.exponential"``;
        ``from datetime import datetime; datetime.now`` ->
        ``"datetime.datetime.now"``.  Returns ``None`` for expressions not
        rooted in an imported name (locals, attributes of ``self``, ...).
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.reverse()
        base = node.id
        if base in self.modules:
            root = self.modules[base]
        elif base in self.symbols:
            module, symbol = self.symbols[base]
            root = f"{module}.{symbol}"
        else:
            return None
        return ".".join([root, *parts]) if parts else root
