"""The lint engine: collect files, run rules, apply suppressions, report.

Everything is deterministic by construction: files are visited in sorted
order, rules in code order, findings sorted by location — the same tree
produces the same report on every host (the linter holds itself to the
repo's own byte-determinism bar).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.statics.baseline import (
    BaselineEntry,
    split_against_baseline,
)
from repro.statics.core import (
    META_CODE,
    Finding,
    ProjectRule,
    Rule,
    SourceFile,
    parse_source,
)
from repro.statics.dataflow import Project
from repro.statics.rules import all_rules

#: Default lint targets, repo-root-relative.  ``tests/`` is deliberately
#: out: tests mutate state directly and smuggle NaN on purpose.
DEFAULT_TARGETS = ("src/repro", "examples", "benchmarks")


def repo_root() -> Path:
    """The repository root (this file lives at src/repro/statics/...)."""
    return Path(__file__).resolve().parents[3]


def collect_files(root: Path, targets: tuple[str, ...]) -> list[Path]:
    """Every ``.py`` file under the targets, sorted for determinism."""
    out: set[Path] = set()
    for target in targets:
        path = (root / target).resolve()
        if path.is_file():
            out.add(path)
        elif path.is_dir():
            out.update(
                p for p in sorted(path.rglob("*.py")) if p.is_file()
            )
    return sorted(out)


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    new: list[Finding] = field(default_factory=list)
    grandfathered: list[Finding] = field(default_factory=list)
    stale: list[BaselineEntry] = field(default_factory=list)
    suppressed: int = 0
    files_scanned: int = 0
    #: Findings silenced by inline suppressions (kept for ``--explain``).
    silenced: list[Finding] = field(default_factory=list)
    #: The whole-program context, when any :class:`ProjectRule` ran
    #: (exposes the call graph and taint paths to the CLI).
    project: Any = None

    @property
    def gate_failures(self) -> int:
        """What the CI gate counts: new findings plus stale baseline rot."""
        return len(self.new) + len(self.stale)

    def as_dict(self) -> dict:
        """JSON-friendly report (the CI artifact; one-way, hence not
        to_dict — there is no reason to reload a report)."""
        def as_row(f: Finding) -> dict:
            return {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "code": f.code,
                "message": f.message,
                "content": f.content,
            }
        return {
            "files_scanned": self.files_scanned,
            "suppressed": self.suppressed,
            "new": [as_row(f) for f in self.new],
            "grandfathered": [as_row(f) for f in self.grandfathered],
            "stale_baseline": [
                {"path": e.path, "code": e.code, "content": e.content}
                for e in self.stale
            ],
        }


def lint_file(src: SourceFile, rules: tuple[Rule, ...]) -> tuple[list[Finding], int]:
    """``(findings, suppressed_count)`` for one parsed file.

    Per-file rules only — project rules need the whole tree and are run
    by :func:`run_lint`; their findings flow through
    :func:`apply_suppressions` exactly like these.
    """
    raw: list[Finding] = []
    for rule in rules:
        if isinstance(rule, ProjectRule) or not rule.applies_to(src.rel):
            continue
        raw.extend(rule.check(src))
    findings, silenced = apply_suppressions(src, raw)
    return findings, len(silenced)


def apply_suppressions(
    src: SourceFile, raw: list[Finding]
) -> tuple[list[Finding], list[Finding]]:
    """``(active, silenced)`` after the file's suppression map.

    Suppressions are honored per (line, code); every suppression must earn
    its keep — one that silences nothing becomes an RPL000 finding, so the
    inline inventory can never rot silently.  Silenced findings are
    returned (not discarded) so ``--explain`` can still show the taint
    path behind a justified suppression.
    """
    findings: list[Finding] = list(src.meta_findings)
    used: set[tuple[int, str]] = set()
    silenced: list[Finding] = []
    for finding in sorted(raw):
        directive = src.suppressions.get(finding.line)
        if directive is not None and finding.code in directive.codes:
            used.add((finding.line, finding.code))
            silenced.append(finding)
            continue
        findings.append(finding)
    for line in sorted(src.suppressions):
        directive = src.suppressions[line]
        for code in directive.codes:
            if (line, code) not in used:
                findings.append(
                    Finding(
                        path=src.rel,
                        line=line,
                        col=1,
                        code=META_CODE,
                        message=(
                            f"suppression of {code} matches no finding "
                            "on this line; delete it"
                        ),
                        content=src.line_content(line),
                    )
                )
    return sorted(findings), silenced


def run_lint(
    *,
    root: Path | None = None,
    targets: tuple[str, ...] = DEFAULT_TARGETS,
    rules: tuple[Rule, ...] | None = None,
    baseline: Counter | None = None,
    project_targets: tuple[str, ...] | None = None,
    cache_path: Path | None = None,
) -> LintReport:
    """Lint the targets and split findings against the baseline.

    Two phases: every target parses first, then per-file rules run, then
    project rules run once over the whole-program context built from
    ``project_targets`` (default: the lint targets themselves; a subset
    run can widen this so cross-file call resolution still sees the full
    tree).  Project findings are kept only when they anchor in a scanned
    file, and pass through that file's suppression map like any other
    finding.  ``cache_path`` enables the content-hash-keyed per-file
    facts cache (warm runs re-extract only changed files).
    """
    root = (root or repo_root()).resolve()
    rules = rules if rules is not None else all_rules()
    file_rules = tuple(r for r in rules if not isinstance(r, ProjectRule))
    project_rules = tuple(r for r in rules if isinstance(r, ProjectRule))
    report = LintReport()
    srcs: dict[str, SourceFile] = {}
    raw_by_rel: dict[str, list[Finding]] = {}
    for path in collect_files(root, targets):
        try:
            rel = path.relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        parsed = parse_source(path, rel)
        report.files_scanned += 1
        if isinstance(parsed, Finding):  # syntax error
            report.findings.append(parsed)
            continue
        srcs[rel] = parsed
        raw: list[Finding] = []
        for rule in file_rules:
            if rule.applies_to(rel):
                raw.extend(rule.check(parsed))
        raw_by_rel[rel] = raw
    if project_rules:
        project = Project.build(
            root,
            collect_files(root, project_targets or targets),
            cache_path=cache_path,
        )
        report.project = project
        for rule in project_rules:
            for finding in rule.check_project(project):
                if finding.path in srcs and rule.applies_to(finding.path):
                    raw_by_rel[finding.path].append(finding)
    for rel in sorted(raw_by_rel):
        findings, silenced = apply_suppressions(srcs[rel], raw_by_rel[rel])
        report.findings.extend(findings)
        report.silenced.extend(silenced)
        report.suppressed += len(silenced)
    report.findings.sort()
    report.new, report.grandfathered, report.stale = split_against_baseline(
        report.findings, baseline if baseline is not None else Counter()
    )
    return report
