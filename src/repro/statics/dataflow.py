"""Interprocedural dataflow: per-function summaries to fixpoint.

The engine answers one question for the flow rules (``rules/flow.py``):
*can a value produced here reach a sink over there, through any number of
calls?*  It does so in two phases:

1. **Extraction** (per file, cacheable): each function body compiles to a
   small JSON-able IR — assignment/return ops over *expression taint
   templates*, call records with resolved-or-pending targets, entropy
   sources, and fault-seam calls with their lexical containment.  The IR
   is a pure function of the file bytes, so a content-hash-keyed cache
   (``--summary-cache``) lets warm runs skip re-extraction of unchanged
   files entirely.
2. **Solving** (global, always recomputed — it is the cheap part): a
   worklist fixpoint interprets each function's IR against the current
   summaries of its callees (resolved via :mod:`repro.statics.callgraph`),
   producing per-function summaries — which params/returns carry taint,
   which params reach sinks — plus concrete source→sink hits with a
   reconstructed hop trail for ``--explain``.

The abstract value lattice is deliberately modest (the "soundness
bargain", DESIGN.md): per-variable whole-object taint plus one level of
field sensitivity (constructor keywords, ``x.attr`` loads/stores), tuple
element tracking across literal returns, flow- and path-insensitive,
context-insensitive.  Known false-negative shapes are documented with the
rules; everything tracked is tracked deterministically — sorted worklists,
first-wins trails — so reports are byte-identical across runs and hosts.
"""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path
from typing import Any, Iterator

from repro.statics.callgraph import (
    CallGraph,
    ProjectIndex,
    extract_defs,
)
from repro.statics.core import ImportMap

#: Bump when the IR shape or the source/sink inventory changes: cached
#: facts are only reused when this matches.
FACTS_FORMAT_VERSION = 1

SUMMARY_CACHE_FORMAT_VERSION = 1

# ----------------------------------------------------------------------
# Taint inventory (RPL008)
# ----------------------------------------------------------------------
#: Calls whose return value is ambient entropy: wall clocks (including the
#: perf timers RPL001 exempts in benchmarks/ — a *flow* into a persisted
#: document is a bug wherever it starts), process identity, host identity.
SOURCE_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "os.getpid",
    "os.getppid",
    "os.urandom",
    "os.getenv",
    "socket.gethostname",
    "platform.node",
    "platform.uname",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_hex",
    "secrets.token_bytes",
    "secrets.token_urlsafe",
    "secrets.randbelow",
}
#: Module prefixes treated as sources wholesale (process-global RNG).
SOURCE_PREFIXES = ("random.", "numpy.random.")
#: Exceptions to the prefixes: seeded constructors are deterministic.
SOURCE_PREFIX_OK = {
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.Philox",
    "numpy.random.bit_generator",
}
#: Ambient attribute reads (no call involved).
SOURCE_ATTRS = {"os.environ"}
#: Persisted-document sinks by resolved dotted name: serialization and
#: digest entry points.
SINK_CALLS = {
    "json.dump",
    "json.dumps",
    "pickle.dump",
    "pickle.dumps",
    "hashlib.sha1",
    "hashlib.sha256",
    "hashlib.sha512",
    "hashlib.md5",
    "hashlib.blake2b",
    "hashlib.new",
    "repro.service.protocol.encode_frame",
}
#: Method-attr sinks used when the receiver cannot be resolved to a
#: project function (resolved calls flow through summaries instead).
SINK_METHOD_ATTRS = {"encode_frame", "append_meta", "save_failure", "write_spec"}
#: Builtins whose return is order/entropy-free regardless of arguments.
SANITIZERS = {"len", "isinstance", "type", "hasattr", "callable"}

#: Handler body calls that count as recording an incident / quarantining.
_RECORDING_MARKERS = ("incident", "quarantine", "save_failure", "error_frame")
#: Receiver spellings that mark a ``.check()``/``.mangle()`` call as a
#: fault seam.
_SEAM_ATTRS = ("check", "mangle")

_MAX_TRAIL = 16
_MAX_ELEM_DEPTH = 3


def _dotted_of(node: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_source_call(dotted: str) -> bool:
    if dotted in SOURCE_CALLS:
        return True
    if dotted in SOURCE_PREFIX_OK:
        return False
    return dotted.startswith(SOURCE_PREFIXES)


# ----------------------------------------------------------------------
# Extraction: AST -> per-function IR
# ----------------------------------------------------------------------
class _FunctionExtractor:
    """Compile one function body to the dataflow IR (JSON-able dicts)."""

    def __init__(
        self,
        module: str,
        imap: ImportMap,
        local_defs: set[str],
        params: set[str],
    ) -> None:
        self.module = module
        self.imap = imap
        self.local_defs = local_defs
        self.params = params
        self.ops: list[dict[str, Any]] = []
        self.calls: list[dict[str, Any]] = []
        self.seams: list[dict[str, Any]] = []
        self.clues: dict[str, dict[str, Any]] = {}
        self._contained = False

    # -- expression taint templates ------------------------------------
    def _many(self, nodes: list[ast.expr]) -> dict[str, Any]:
        parts = [self._ett(n) for n in nodes]
        parts = [p for p in parts if p["k"] not in ("const", "none")]
        if not parts:
            return {"k": "const"}
        if len(parts) == 1:
            return parts[0]
        return {"k": "many", "xs": parts}

    def _ett(self, node: ast.expr | None) -> dict[str, Any]:
        if node is None:
            return {"k": "const"}
        if isinstance(node, ast.Constant):
            return {"k": "none"} if node.value is None else {"k": "const"}
        if isinstance(node, ast.Name):
            return {"k": "name", "id": node.id}
        if isinstance(node, ast.Attribute):
            resolved = self.imap.resolve(node)
            if resolved in SOURCE_ATTRS:
                return {
                    "k": "src",
                    "name": resolved,
                    "line": node.lineno,
                    "col": node.col_offset,
                }
            if isinstance(node.value, ast.Name):
                return {
                    "k": "attr",
                    "base": node.value.id,
                    "attr": node.attr,
                }
            return self._many([node.value])
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Tuple):
            return {"k": "tup", "xs": [self._ett(e) for e in node.elts]}
        if isinstance(node, (ast.List, ast.Set)):
            return self._many(list(node.elts))
        if isinstance(node, ast.Dict):
            parts = [k for k in node.keys if k is not None]
            parts.extend(node.values)
            return self._many(parts)
        if isinstance(node, ast.BinOp):
            return self._many([node.left, node.right])
        if isinstance(node, ast.UnaryOp):
            return self._ett(node.operand)
        if isinstance(node, ast.BoolOp):
            return self._many(list(node.values))
        if isinstance(node, ast.Compare):
            return self._many([node.left, *node.comparators])
        if isinstance(node, ast.IfExp):
            return self._many([node.body, node.orelse])
        if isinstance(node, ast.JoinedStr):
            return self._many(
                [
                    v.value
                    for v in node.values
                    if isinstance(v, ast.FormattedValue)
                ]
            )
        if isinstance(node, ast.Subscript):
            return self._many([node.value])
        if isinstance(node, ast.Starred):
            return self._ett(node.value)
        if isinstance(node, ast.Await):
            return self._ett(node.value)
        if isinstance(node, ast.NamedExpr):
            value = self._ett(node.value)
            self._assign(node.target, value)
            return value
        if isinstance(
            node, (ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.DictComp)
        ):
            for gen in node.generators:
                self._assign(gen.target, self._ett(gen.iter))
            if isinstance(node, ast.DictComp):
                return self._many([node.key, node.value])
            return self._ett(node.elt)
        if isinstance(node, ast.Lambda):
            return {"k": "const"}
        return {"k": "const"}

    def _call_dotted(self, func: ast.expr) -> str | None:
        """Resolve a callable expression to a dotted name when possible."""
        if isinstance(func, ast.Name):
            if func.id in self.local_defs and func.id not in self.params:
                return f"{self.module}.{func.id}"
            resolved = self.imap.resolve(func)
            return resolved
        resolved = self.imap.resolve(func)
        if resolved is not None:
            return resolved
        # `Cls.method` / `helper.thing` spelled through a module-local def.
        dotted = _dotted_of(func)
        if dotted is not None:
            head = dotted.split(".", 1)[0]
            if head in self.local_defs and head not in self.params:
                return f"{self.module}.{dotted}"
        return None

    def _call(self, node: ast.Call) -> dict[str, Any]:
        args: list[dict[str, Any]] = []
        star = False
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                star = True
                args.append(self._ett(arg.value))
            else:
                args.append(self._ett(arg))
        kwargs: dict[str, dict[str, Any]] = {}
        splat: list[dict[str, Any]] = []
        for kw in node.keywords:
            if kw.arg is None:
                splat.append(self._ett(kw.value))
            else:
                kwargs[kw.arg] = self._ett(kw.value)

        dotted = self._call_dotted(node.func)
        target: dict[str, Any]
        recv_ett: dict[str, Any] | None = None
        if dotted is not None:
            target = {"kind": "dotted", "name": dotted}
        elif isinstance(node.func, ast.Attribute):
            base = node.func.value
            recv: dict[str, Any]
            if isinstance(base, ast.Name):
                recv = {"r": "var", "id": base.id}
            elif (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
            ):
                recv = {"r": "selfattr", "attr": base.attr}
            else:
                recv = {"r": "other"}
            # The receiver expression itself may nest calls/sources
            # (``hashlib.sha256(x).hexdigest()``): walk it so they are
            # recorded, and keep the template for receiver taint.
            recv_ett = self._ett(base)
            target = {"kind": "method", "attr": node.func.attr, "recv": recv}
        elif isinstance(node.func, ast.Name):
            target = {"kind": "name", "name": node.func.id}
        else:
            recv_ett = self._ett(node.func)
            target = {"kind": "unknown"}

        record: dict[str, Any] = {
            "i": len(self.calls),
            "line": node.lineno,
            "col": node.col_offset,
            "target": target,
            "args": args,
            "kwargs": kwargs,
            "splat": splat,
            "star": star,
            "contained": self._contained,
        }
        if recv_ett is not None and recv_ett["k"] not in ("const", "none"):
            record["recv_ett"] = recv_ett
        if dotted is not None:
            if _is_source_call(dotted):
                record["source"] = dotted
            elif dotted in SINK_CALLS:
                record["sink"] = dotted
        elif target["kind"] == "name" and target["name"] in SANITIZERS:
            record["sanitizer"] = True
        if (
            target["kind"] == "method"
            and target["attr"] in SINK_METHOD_ATTRS
        ):
            record["sink_attr"] = target["attr"]
        if (
            target["kind"] == "method"
            and target["attr"] in _SEAM_ATTRS
            and self._injectorish(target["recv"])
        ):
            seam = "?"
            if node.args and isinstance(node.args[0], ast.Constant):
                if isinstance(node.args[0].value, str):
                    seam = node.args[0].value
            self.seams.append(
                {
                    "line": node.lineno,
                    "col": node.col_offset,
                    "seam": seam,
                    "recv": target["recv"],
                    "contained": self._contained,
                }
            )
        self.calls.append(record)
        return {"k": "call", "i": record["i"]}

    @staticmethod
    def _injectorish(recv: dict[str, Any]) -> bool:
        if recv["r"] == "var":
            return "injector" in recv["id"].lower()
        if recv["r"] == "selfattr":
            return "injector" in recv["attr"].lower()
        return False

    # -- statements ----------------------------------------------------
    def _target(self, node: ast.expr) -> dict[str, Any]:
        if isinstance(node, ast.Name):
            return {"t": "n", "id": node.id}
        if isinstance(node, ast.Attribute) and isinstance(
            node.value, ast.Name
        ):
            return {"t": "f", "id": node.value.id, "attr": node.attr}
        if isinstance(node, ast.Subscript):
            return self._target(node.value)
        if isinstance(node, (ast.Tuple, ast.List)):
            ids: list[str | None] = []
            for elt in node.elts:
                if isinstance(elt, ast.Starred):
                    elt = elt.value
                ids.append(elt.id if isinstance(elt, ast.Name) else None)
            return {"t": "u", "ids": ids}
        return {"t": "x"}

    def _assign(self, target: ast.expr, value: dict[str, Any]) -> None:
        self.ops.append(
            {"op": "as", "t": [self._target(target)], "v": value}
        )

    def _note_clue(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            if stmt.target.id not in self.clues:
                from repro.statics.callgraph import annotation_name

                name = annotation_name(
                    stmt.annotation, self.imap, self.module, self.local_defs
                )
                if name is not None:
                    self.clues[stmt.target.id] = {"c": "ann", "t": name}
            return
        if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
            return
        target = stmt.targets[0]
        if not isinstance(target, ast.Name) or target.id in self.clues:
            return
        value = stmt.value
        if isinstance(value, ast.IfExp):
            # `x = A(...) if cond else None` — either branch that is a
            # constructor call supplies the type clue.
            for branch in (value.body, value.orelse):
                if isinstance(branch, ast.Call):
                    value = branch
                    break
        if isinstance(value, ast.Call):
            dotted = self._call_dotted(value.func)
            if dotted is not None:
                self.clues[target.id] = {"c": "ctor", "t": dotted}

    def _is_containing(self, node: ast.Try) -> bool:
        for handler in node.handlers:
            if self._broad_or_injected(handler.type) and (
                self._records_or_converts(handler.body)
            ):
                return True
        return False

    @staticmethod
    def _broad_or_injected(type_node: ast.expr | None) -> bool:
        if type_node is None:
            return True
        if isinstance(type_node, ast.Tuple):
            return any(
                _FunctionExtractor._broad_or_injected(e)
                for e in type_node.elts
            )
        name = _dotted_of(type_node)
        if name is None:
            return False
        tail = name.rsplit(".", 1)[-1]
        return tail in ("Exception", "BaseException") or tail.startswith(
            "Injected"
        )

    @staticmethod
    def _records_or_converts(body: list[ast.stmt]) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    name = _dotted_of(node.func)
                    tail = (
                        name.rsplit(".", 1)[-1].lower()
                        if name is not None
                        else ""
                    )
                    if any(m in tail for m in _RECORDING_MARKERS):
                        return True
                elif isinstance(node, ast.Raise) and isinstance(
                    node.exc, ast.Call
                ):
                    return True
        return False

    def walk(self, body: list[ast.stmt], contained: bool) -> None:
        for stmt in body:
            self._contained = contained
            if isinstance(
                stmt,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                continue  # nested scope: out of this function's frame
            self._note_clue(stmt)
            if isinstance(stmt, ast.Try):
                inner = contained or self._is_containing(stmt)
                self.walk(stmt.body, inner)
                for handler in stmt.handlers:
                    self.walk(handler.body, contained)
                self.walk(stmt.orelse, contained)
                self.walk(stmt.finalbody, contained)
            elif isinstance(stmt, (ast.If, ast.While)):
                self.ops.append({"op": "ev", "v": self._ett(stmt.test)})
                self.walk(stmt.body, contained)
                self.walk(stmt.orelse, contained)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._assign(stmt.target, self._ett(stmt.iter))
                self.walk(stmt.body, contained)
                self.walk(stmt.orelse, contained)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    ctx = self._ett(item.context_expr)
                    if item.optional_vars is not None:
                        self._assign(item.optional_vars, ctx)
                    else:
                        self.ops.append({"op": "ev", "v": ctx})
                self.walk(stmt.body, contained)
            elif isinstance(stmt, ast.Assign):
                value = self._ett(stmt.value)
                self.ops.append(
                    {
                        "op": "as",
                        "t": [self._target(t) for t in stmt.targets],
                        "v": value,
                    }
                )
            elif isinstance(stmt, ast.AugAssign):
                value = self._many([stmt.target, stmt.value])
                self._assign(stmt.target, value)
            elif isinstance(stmt, ast.AnnAssign):
                if stmt.value is not None:
                    self._assign(stmt.target, self._ett(stmt.value))
            elif isinstance(stmt, ast.Return):
                self.ops.append({"op": "ret", "v": self._ett(stmt.value)})
            elif isinstance(stmt, ast.Expr):
                self.ops.append({"op": "ev", "v": self._ett(stmt.value)})
            elif isinstance(stmt, ast.Assert):
                self.ops.append(
                    {"op": "ev", "v": self._many([stmt.test])}
                )
            elif isinstance(stmt, ast.Raise):
                parts = [e for e in (stmt.exc, stmt.cause) if e is not None]
                if parts:
                    self.ops.append({"op": "ev", "v": self._many(parts)})
            elif isinstance(stmt, ast.Match):
                self.ops.append({"op": "ev", "v": self._ett(stmt.subject)})
                for case in stmt.cases:
                    self.walk(case.body, contained)
            # Pass/Break/Continue/Import/Global/Nonlocal/Delete: no flow.
        self._contained = contained


def extract_file_facts(tree: ast.Module, rel: str) -> dict[str, Any]:
    """The complete facts document of one file (defs + function IRs)."""
    defs = extract_defs(tree, rel)
    module = defs["module"]
    imap = ImportMap(tree)
    local_defs = set(defs["functions"]) | set(defs["classes"])
    functions: dict[str, dict[str, Any]] = {}

    def extract_fn(
        qn: str, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        args = node.args
        params = {
            a.arg
            for a in args.posonlyargs + args.args + args.kwonlyargs
        }
        ex = _FunctionExtractor(module, imap, local_defs, params)
        ex.walk(node.body, False)
        functions[qn] = {
            "line": node.lineno,
            "ops": ex.ops,
            "calls": ex.calls,
            "seams": ex.seams,
            "clues": ex.clues,
        }

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            extract_fn(f"{module}.{node.name}", node)
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    extract_fn(f"{module}.{node.name}.{sub.name}", sub)
    return {"defs": defs, "functions": functions}


# ----------------------------------------------------------------------
# Abstract values
# ----------------------------------------------------------------------
#: Atom keys: ("s", name, rel, line, col) — a real entropy source;
#: ("p", qualname, index) — "flows from parameter <index> of <qualname>".
Atom = tuple
#: A trail is a tuple of hops: (rel, line, description).
Trail = tuple


class AVal:
    """One abstract value: whole-object atoms, field atoms, tuple elems."""

    __slots__ = ("atoms", "fields", "elems")

    def __init__(self) -> None:
        self.atoms: dict[Atom, Trail] = {}
        self.fields: dict[str, dict[Atom, Trail]] = {}
        self.elems: list["AVal"] | None = None

    def is_empty(self) -> bool:
        return not self.atoms and not self.fields and self.elems is None

    def flat(self) -> dict[Atom, Trail]:
        """Every atom reachable anywhere in the value (first-wins)."""
        out: dict[Atom, Trail] = dict(self.atoms)
        for atoms in self.fields.values():
            for atom, trail in atoms.items():
                out.setdefault(atom, trail)
        if self.elems is not None:
            for elem in self.elems:
                for atom, trail in elem.flat().items():
                    out.setdefault(atom, trail)
        return out

    def merge(self, other: "AVal") -> None:
        _merge_atoms(self.atoms, other.atoms)
        for name, atoms in other.fields.items():
            _merge_atoms(self.fields.setdefault(name, {}), atoms)
        if other.elems is not None:
            if self.elems is None and not self.atoms and not self.fields:
                self.elems = [_copy_aval(e) for e in other.elems]
            elif self.elems is not None and len(self.elems) == len(
                other.elems
            ):
                for mine, theirs in zip(self.elems, other.elems):
                    mine.merge(theirs)
            else:  # arity mismatch: collapse to whole-object taint
                _merge_atoms(self.atoms, other.flat())

    def sig(self) -> tuple:
        """Structure signature for change detection (trails excluded)."""
        return (
            frozenset(self.atoms),
            tuple(
                (name, frozenset(self.fields[name]))
                for name in sorted(self.fields)
                if self.fields[name]
            ),
            None
            if self.elems is None
            else tuple(e.sig() for e in self.elems),
        )


def _merge_atoms(dst: dict[Atom, Trail], src: dict[Atom, Trail]) -> None:
    for atom, trail in src.items():
        dst.setdefault(atom, trail)


def _copy_aval(val: AVal) -> AVal:
    out = AVal()
    out.merge(val)
    return out


def _from_atoms(atoms: dict[Atom, Trail]) -> AVal:
    out = AVal()
    out.atoms.update(atoms)
    return out


def _extend_trail(trail: Trail, hop: tuple) -> Trail:
    if len(trail) >= _MAX_TRAIL:
        return trail
    return trail + (hop,)


# ----------------------------------------------------------------------
# Hits (solver output consumed by the rules)
# ----------------------------------------------------------------------
class FlowHit:
    """One concrete source→sink flow, anchored where it is actionable."""

    __slots__ = ("source", "sink", "anchor", "trail")

    def __init__(
        self,
        source: tuple[str, str, int, int],
        sink: tuple[str, str, int, int],
        anchor: tuple[str, int, int],
        trail: Trail,
    ) -> None:
        self.source = source  # (name, rel, line, col)
        self.sink = sink  # (name, rel, line, col)
        self.anchor = anchor  # (rel, line, col)
        self.trail = trail

    def sort_key(self) -> tuple:
        return (self.anchor, self.source, self.sink)


class EscapeHit:
    """One fault seam whose exception can escape an entry point."""

    __slots__ = ("entry", "seam", "origin", "anchor", "chain")

    def __init__(
        self,
        entry: str,
        seam: str,
        origin: tuple[str, int, int],
        anchor: tuple[str, int, int],
        chain: tuple,
    ) -> None:
        self.entry = entry  # entry-point qualname
        self.seam = seam  # seam name ("worker-crash", ...)
        self.origin = origin  # (rel, line, col) of the armed call
        self.anchor = anchor  # (rel, line, col) in the entry function
        self.chain = chain  # hops origin -> entry

    def sort_key(self) -> tuple:
        return (self.anchor, self.entry, self.seam, self.origin)


# ----------------------------------------------------------------------
# The solver
# ----------------------------------------------------------------------
class _Summary:
    __slots__ = ("ret", "param_sinks")

    def __init__(self) -> None:
        self.ret = AVal()
        #: param index -> {(sink name, rel, line, col): inner trail}
        self.param_sinks: dict[int, dict[tuple, Trail]] = {}

    def sig(self) -> tuple:
        return (
            self.ret.sig(),
            tuple(
                (i, frozenset(self.param_sinks[i]))
                for i in sorted(self.param_sinks)
                if self.param_sinks[i]
            ),
        )


class FlowSolver:
    """Worklist fixpoint over the project call graph."""

    def __init__(
        self,
        index: ProjectIndex,
        graph: CallGraph,
        fn_facts: dict[str, dict[str, Any]],
    ) -> None:
        self.index = index
        self.graph = graph
        self.fn_facts = fn_facts
        self.summaries: dict[str, _Summary] = {
            qn: _Summary() for qn in fn_facts
        }
        self._hits: dict[tuple, FlowHit] = {}
        self._solved = False

    # -- public API ----------------------------------------------------
    def solve(self) -> None:
        if self._solved:
            return
        order = sorted(self.fn_facts)
        pending = list(order)
        queued = set(order)
        budget = 50 * max(1, len(order))
        while pending and budget:
            budget -= 1
            qn = pending.pop(0)
            queued.discard(qn)
            if self._interpret(qn):
                for caller in self.graph.callers.get(qn, ()):
                    if caller in self.fn_facts and caller not in queued:
                        pending.append(caller)
                        queued.add(caller)
        self._solved = True

    def flow_hits(self) -> list[FlowHit]:
        self.solve()
        return sorted(self._hits.values(), key=FlowHit.sort_key)

    # -- interpretation ------------------------------------------------
    def _all_params(self, qn: str) -> list[str]:
        fn = self.index.functions[qn]
        return list(fn["params"]) + list(fn["kwonly"])

    def _interpret(self, qn: str) -> bool:
        facts = self.fn_facts[qn]
        rel = self.index.functions[qn]["rel"]
        params = self._all_params(qn)
        before = self.summaries[qn].sig()
        summary = _Summary()
        summary.param_sinks = {
            i: dict(v) for i, v in self.summaries[qn].param_sinks.items()
        }
        env: dict[str, AVal] = {}
        for i, name in enumerate(params):
            env[name] = _from_atoms({("p", qn, i): ()})
        fields: dict[tuple[str, str], dict[Atom, Trail]] = {}
        state = (qn, rel, env, fields, summary)
        for _ in range(10):
            changed = False
            snapshot = (
                {k: v.sig() for k, v in env.items()},
                {k: frozenset(v) for k, v in fields.items()},
                summary.sig(),
            )
            for op in facts["ops"]:
                self._exec_op(op, state)
            after = (
                {k: v.sig() for k, v in env.items()},
                {k: frozenset(v) for k, v in fields.items()},
                summary.sig(),
            )
            changed = snapshot != after
            if not changed:
                break
        self.summaries[qn] = summary
        return summary.sig() != before

    def _exec_op(self, op: dict[str, Any], state: tuple) -> None:
        qn, rel, env, fields, summary = state
        val = self._eval(op["v"], state)
        kind = op["op"]
        if kind == "ret":
            summary.ret.merge(val)
            return
        if kind != "as":
            return
        for target in op["t"]:
            t = target["t"]
            if t == "n":
                slot = env.setdefault(target["id"], AVal())
                slot.merge(val)
            elif t == "f":
                _merge_atoms(
                    fields.setdefault((target["id"], target["attr"]), {}),
                    val.flat(),
                )
            elif t == "u":
                ids = target["ids"]
                if val.elems is not None and len(val.elems) == len(ids):
                    parts: list[AVal] = val.elems
                else:
                    parts = [_from_atoms(val.flat()) for _ in ids]
                for name, part in zip(ids, parts):
                    if name is not None:
                        env.setdefault(name, AVal()).merge(part)

    def _eval(self, ett: dict[str, Any], state: tuple) -> AVal:
        qn, rel, env, fields, summary = state
        kind = ett["k"]
        if kind in ("const", "none"):
            return AVal()
        if kind == "src":
            return _from_atoms(
                {("s", ett["name"], rel, ett["line"], ett["col"]): ()}
            )
        if kind == "name":
            found = env.get(ett["id"])
            out = AVal()
            if found is not None:
                out.merge(found)
            for (base, attr), atoms in fields.items():
                if base == ett["id"]:
                    _merge_atoms(out.fields.setdefault(attr, {}), atoms)
            return out
        if kind == "attr":
            out = AVal()
            stored = fields.get((ett["base"], ett["attr"]))
            if stored:
                _merge_atoms(out.atoms, stored)
            base = env.get(ett["base"])
            if base is not None:
                # Whole-object taint reaches every attribute; a tracked
                # constructor field contributes only its own atoms.
                _merge_atoms(out.atoms, base.atoms)
                field_atoms = base.fields.get(ett["attr"])
                if field_atoms:
                    _merge_atoms(out.atoms, field_atoms)
            return out
        if kind == "many":
            out = AVal()
            for part in ett["xs"]:
                _merge_atoms(out.atoms, self._eval(part, state).flat())
            return out
        if kind == "tup":
            out = AVal()
            out.elems = [self._eval(part, state) for part in ett["xs"]]
            return out
        if kind == "call":
            record = self.fn_facts[qn]["calls"][ett["i"]]
            return self._eval_call(record, state)
        return AVal()

    # -- calls ---------------------------------------------------------
    def _arg_map(
        self,
        callee: str,
        record: dict[str, Any],
        arg_vals: list[AVal],
        kw_vals: dict[str, AVal],
        extra: list[AVal],
    ) -> dict[int, AVal]:
        """Call-site values by callee parameter index (best effort)."""
        callee_params = self._all_params(callee)
        bound = record["target"]["kind"] == "method"
        fn = self.index.functions[callee]
        skip = (
            1
            if bound
            and fn["cls"] is not None
            and not fn["static"]
            and callee_params
            and callee_params[0] in ("self", "cls")
            else 0
        )
        argmap: dict[int, AVal] = {}
        if record["star"] or extra:
            # *args/**kwargs at the call site: smear everything everywhere.
            smear = AVal()
            for val in arg_vals + list(kw_vals.values()) + extra:
                _merge_atoms(smear.atoms, val.flat())
            for i in range(len(callee_params)):
                argmap[i] = smear
            return argmap
        for j, val in enumerate(arg_vals):
            i = j + skip
            if i < len(callee_params):
                argmap[i] = val
        for name, val in kw_vals.items():
            if name in callee_params:
                argmap[callee_params.index(name)] = val
        return argmap

    def _eval_call(self, record: dict[str, Any], state: tuple) -> AVal:
        qn, rel, env, fields, summary = state
        arg_vals = [self._eval(a, state) for a in record["args"]]
        kw_vals = {
            name: self._eval(v, state)
            for name, v in record["kwargs"].items()
        }
        extra = [self._eval(v, state) for v in record["splat"]]
        recv_val = (
            self._eval(record["recv_ett"], state)
            if "recv_ett" in record
            else None
        )

        if "source" in record:
            return _from_atoms(
                {
                    (
                        "s",
                        record["source"],
                        rel,
                        record["line"],
                        record["col"],
                    ): ()
                }
            )
        if record.get("sanitizer"):
            return AVal()

        resolved = self.graph.resolved.get((qn, record["i"]))
        if resolved is not None and resolved[0] == "func":
            callee = resolved[1]
            if callee in self.fn_facts:
                argmap = self._arg_map(
                    callee, record, arg_vals, kw_vals, extra
                )
                self._apply_param_sinks(
                    callee, argmap, record, state
                )
                hop = (rel, record["line"], f"through {callee}()")
                return self._substitute(
                    self.summaries[callee].ret, callee, argmap, hop
                )
        if resolved is not None and resolved[0] == "ctor":
            out = AVal()
            for name, val in kw_vals.items():
                _merge_atoms(out.fields.setdefault(name, {}), val.flat())
            for val in arg_vals + extra:
                _merge_atoms(out.atoms, val.flat())
            return out

        sink_name = record.get("sink")
        if sink_name is None and "sink_attr" in record:
            sink_name = f".{record['sink_attr']}"
        everything = AVal()
        for val in arg_vals + list(kw_vals.values()) + extra:
            _merge_atoms(everything.atoms, val.flat())
        if sink_name is not None:
            sink = (sink_name, rel, record["line"], record["col"])
            self._register_sink_hits(
                sink, (), everything.atoms, record, state
            )
        # An unresolved method's return carries its receiver's taint too
        # (``tainted.encode()``), but the receiver is not an *argument* —
        # it does not count toward the sink above.
        if recv_val is not None:
            _merge_atoms(everything.atoms, recv_val.flat())
        return everything

    def _apply_param_sinks(
        self,
        callee: str,
        argmap: dict[int, AVal],
        record: dict[str, Any],
        state: tuple,
    ) -> None:
        qn, rel, env, fields, summary = state
        callee_sinks = self.summaries[callee].param_sinks
        hop = (rel, record["line"], f"into {callee}()")
        for idx in sorted(callee_sinks):
            val = argmap.get(idx)
            if val is None:
                continue
            for sink, inner in sorted(callee_sinks[idx].items()):
                atoms = {
                    atom: _extend_trail(trail, hop) + inner
                    for atom, trail in val.flat().items()
                }
                self._register_sink_hits(
                    sink, (), atoms, record, state
                )

    def _register_sink_hits(
        self,
        sink: tuple,
        inner: Trail,
        atoms: dict[Atom, Trail],
        record: dict[str, Any],
        state: tuple,
    ) -> None:
        """Tainted data reaches ``sink``: real atoms become hits anchored
        at this call site; parameter atoms extend this function's own
        ``param_sinks`` summary."""
        qn, rel, env, fields, summary = state
        anchor = (rel, record["line"], record["col"])
        for atom in sorted(atoms, key=repr):
            trail = atoms[atom]
            if atom[0] == "s":
                _, name, src_rel, src_line, src_col = atom
                key = (atom, sink, anchor)
                if key not in self._hits:
                    self._hits[key] = FlowHit(
                        source=(name, src_rel, src_line, src_col),
                        sink=sink,
                        anchor=anchor,
                        trail=trail + inner,
                    )
            elif atom[0] == "p" and atom[1] == qn:
                summary.param_sinks.setdefault(atom[2], {}).setdefault(
                    sink, trail + inner
                )

    def _substitute(
        self,
        val: AVal,
        callee: str,
        argmap: dict[int, AVal],
        hop: tuple,
        depth: int = 0,
    ) -> AVal:
        out = AVal()

        def subst_atoms(
            src: dict[Atom, Trail], dst: dict[Atom, Trail]
        ) -> None:
            for atom, trail in src.items():
                if atom[0] == "p" and atom[1] == callee:
                    arg = argmap.get(atom[2])
                    if arg is None:
                        continue
                    for a, t in arg.flat().items():
                        dst.setdefault(a, _extend_trail(t, hop))
                else:
                    dst.setdefault(atom, _extend_trail(trail, hop))

        subst_atoms(val.atoms, out.atoms)
        for name, atoms in val.fields.items():
            subst_atoms(atoms, out.fields.setdefault(name, {}))
        if val.elems is not None and depth < _MAX_ELEM_DEPTH:
            out.elems = [
                self._substitute(e, callee, argmap, hop, depth + 1)
                for e in val.elems
            ]
        elif val.elems is not None:
            for elem in val.elems:
                subst_atoms(elem.flat(), out.atoms)
        return out

    # -- seam escapes (RPL010) -----------------------------------------
    def seam_escapes(self) -> list[EscapeHit]:
        """Entry-point escapes of armed fault seams, fully propagated."""
        self.solve()
        # qn -> {(origin rel, line, col, seam): (cond param | None, chain)}
        esc: dict[str, dict[tuple, tuple]] = {qn: {} for qn in self.fn_facts}
        for qn in sorted(self.fn_facts):
            params = set(self._all_params(qn))
            for seam in self.fn_facts[qn]["seams"]:
                if seam["contained"]:
                    continue
                cond = None
                recv = seam["recv"]
                if recv["r"] == "var" and recv["id"] in params:
                    cond = recv["id"]
                key = (
                    self.index.functions[qn]["rel"],
                    seam["line"],
                    seam["col"],
                    seam["seam"],
                )
                esc[qn][key] = (cond, ())
        for _ in range(100):
            changed = False
            for qn in sorted(self.fn_facts):
                rel = self.index.functions[qn]["rel"]
                params = set(self._all_params(qn))
                for record in self.fn_facts[qn]["calls"]:
                    if record["contained"]:
                        continue
                    resolved = self.graph.resolved.get((qn, record["i"]))
                    if resolved is None or resolved[0] != "func":
                        continue
                    callee = resolved[1]
                    for key, (cond_g, chain_g) in sorted(
                        esc.get(callee, {}).items()
                    ):
                        cond_new = self._escape_cond(
                            qn, params, callee, cond_g, record
                        )
                        if cond_new == "disarmed":
                            continue
                        chain = chain_g + (
                            (rel, record["line"], callee),
                        )
                        if len(chain) > _MAX_TRAIL:
                            chain = chain_g
                        existing = esc[qn].get(key)
                        if existing is None:
                            esc[qn][key] = (cond_new, chain)
                            changed = True
                        elif (
                            existing[0] is not None and cond_new is None
                        ):
                            esc[qn][key] = (None, existing[1])
                            changed = True
            if not changed:
                break
        hits: list[EscapeHit] = []
        for qn in self.graph.entry_points():
            if qn not in esc or not esc[qn]:
                continue
            for key in sorted(esc[qn]):
                cond, chain = esc[qn][key]
                origin_rel, origin_line, origin_col, seam = key
                if chain:
                    anchor = (chain[-1][0], chain[-1][1], 0)
                else:
                    anchor = (origin_rel, origin_line, origin_col)
                hits.append(
                    EscapeHit(
                        entry=qn,
                        seam=seam,
                        origin=(origin_rel, origin_line, origin_col),
                        anchor=anchor,
                        chain=chain,
                    )
                )
        return sorted(hits, key=EscapeHit.sort_key)

    def _escape_cond(
        self,
        caller: str,
        caller_params: set[str],
        callee: str,
        cond_g: str | None,
        record: dict[str, Any],
    ) -> str | None:
        """Arming condition after crossing one call edge.

        Returns the caller param the escape is conditional on, ``None``
        for unconditionally armed, or ``"disarmed"`` when the call site
        omits (or passes a literal ``None`` for) the callee's gating
        parameter.
        """
        if cond_g is None:
            return None
        callee_params = self._all_params(callee)
        if cond_g not in callee_params:
            return None
        if record["star"] or record["splat"]:
            return None  # smeared: assume armed
        idx = callee_params.index(cond_g)
        fn = self.index.functions[callee]
        bound = record["target"]["kind"] == "method"
        skip = (
            1
            if bound
            and fn["cls"] is not None
            and not fn["static"]
            and callee_params
            and callee_params[0] in ("self", "cls")
            else 0
        )
        arg_ett: dict[str, Any] | None = None
        j = idx - skip
        if 0 <= j < len(record["args"]):
            arg_ett = record["args"][j]
        if cond_g in record["kwargs"]:
            arg_ett = record["kwargs"][cond_g]
        if arg_ett is None or arg_ett["k"] == "none":
            return "disarmed"
        if (
            arg_ett["k"] == "name"
            and arg_ett["id"] in caller_params
        ):
            return arg_ett["id"]
        return None


# ----------------------------------------------------------------------
# The project: files + facts + graph + solver, with the summary cache
# ----------------------------------------------------------------------
def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def load_summary_cache(path: Path) -> dict[str, Any]:
    """Cached per-file facts ({} on any mismatch — the cache is advisory)."""
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    if not isinstance(doc, dict):
        return {}
    if doc.get("format_version") != SUMMARY_CACHE_FORMAT_VERSION:
        return {}
    if doc.get("facts_version") != FACTS_FORMAT_VERSION:
        return {}
    files = doc.get("files")
    return files if isinstance(files, dict) else {}


def save_summary_cache(path: Path, files: dict[str, Any]) -> None:
    doc = {
        "format_version": SUMMARY_CACHE_FORMAT_VERSION,
        "facts_version": FACTS_FORMAT_VERSION,
        "files": {rel: files[rel] for rel in sorted(files)},
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(doc, sort_keys=True, allow_nan=False) + "\n",
        encoding="utf-8",
    )


class Project:
    """Whole-program context shared by every project-scoped rule."""

    def __init__(
        self,
        facts_by_rel: dict[str, dict[str, Any]],
        lines_by_rel: dict[str, list[str]],
        *,
        cache_hits: int = 0,
        cache_misses: int = 0,
    ) -> None:
        self.facts_by_rel = facts_by_rel
        self._lines = lines_by_rel
        self.cache_hits = cache_hits
        self.cache_misses = cache_misses
        self.index = ProjectIndex(facts_by_rel)
        self.graph = CallGraph(self.index, facts_by_rel)
        fn_facts: dict[str, dict[str, Any]] = {}
        for rel in sorted(facts_by_rel):
            fn_facts.update(facts_by_rel[rel]["functions"])
        self._solver = FlowSolver(self.index, self.graph, fn_facts)

    @classmethod
    def build(
        cls,
        root: Path,
        files: list[Path],
        *,
        cache_path: Path | None = None,
    ) -> "Project":
        """Extract (or cache-load) facts for every file and assemble.

        Files that fail to parse are skipped here; the per-file lint path
        already reports them as RPL000 syntax findings.
        """
        cached = (
            load_summary_cache(cache_path) if cache_path is not None else {}
        )
        facts_by_rel: dict[str, dict[str, Any]] = {}
        lines_by_rel: dict[str, list[str]] = {}
        store: dict[str, Any] = {}
        hits = misses = 0
        for path in files:
            try:
                rel = path.relative_to(root).as_posix()
            except ValueError:
                rel = path.as_posix()
            try:
                data = path.read_bytes()
            except OSError:
                continue
            text = data.decode("utf-8", errors="replace")
            lines_by_rel[rel] = text.splitlines()
            digest = _sha256(data)
            entry = cached.get(rel)
            if (
                isinstance(entry, dict)
                and entry.get("sha256") == digest
                and isinstance(entry.get("facts"), dict)
            ):
                facts_by_rel[rel] = entry["facts"]
                store[rel] = entry
                hits += 1
                continue
            try:
                tree = ast.parse(text)
            except SyntaxError:
                continue
            facts = extract_file_facts(tree, rel)
            facts_by_rel[rel] = facts
            store[rel] = {"sha256": digest, "facts": facts}
            misses += 1
        if cache_path is not None:
            save_summary_cache(cache_path, store)
        return cls(
            facts_by_rel,
            lines_by_rel,
            cache_hits=hits,
            cache_misses=misses,
        )

    # -- queries -------------------------------------------------------
    def line(self, rel: str, line: int) -> str:
        lines = self._lines.get(rel, [])
        if 1 <= line <= len(lines):
            return lines[line - 1].strip()
        return ""

    def flow_hits(self) -> list[FlowHit]:
        return self._solver.flow_hits()

    def seam_escapes(self) -> list[EscapeHit]:
        return self._solver.seam_escapes()

    def call_graph_dict(self) -> dict[str, Any]:
        return self.graph.as_dict()

    def iter_rels(self) -> Iterator[str]:
        return iter(sorted(self.facts_by_rel))
