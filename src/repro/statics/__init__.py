"""``repro.statics`` — the repo's AST-based invariant linter (``repro lint``).

Static enforcement of the contracts the test suite can only check
behaviorally:

===== ==================================================================
code  invariant
===== ==================================================================
RPL001 no ambient entropy (wall clocks, global RNG) on reproducible paths
RPL002 no order-sensitive accumulation over unordered sources
RPL003 Node/Cluster state mutates only through the SoA listener core
RPL004 to_dict/from_dict pairing; json.dump(s) must pass allow_nan=False
RPL005 store-derived memo caches must show model_version discipline
RPL006 object.__setattr__ on frozen specs only during construction
===== ==================================================================

(Plus ``RPL000``: the linter's own hygiene — malformed, reasonless, or
unused suppressions.)  See DESIGN.md item 40 and ``tests/test_statics.py``.
"""

from repro.statics.baseline import (
    DEFAULT_BASELINE,
    BaselineEntry,
    load_baseline,
    save_baseline,
    split_against_baseline,
)
from repro.statics.core import (
    META_CODE,
    Finding,
    ImportMap,
    Rule,
    SourceFile,
    parse_source,
)
from repro.statics.engine import (
    DEFAULT_TARGETS,
    LintReport,
    collect_files,
    lint_file,
    repo_root,
    run_lint,
)
from repro.statics.rules import all_rules, rules_by_code

__all__ = [
    "BaselineEntry",
    "DEFAULT_BASELINE",
    "DEFAULT_TARGETS",
    "Finding",
    "ImportMap",
    "LintReport",
    "META_CODE",
    "Rule",
    "SourceFile",
    "all_rules",
    "collect_files",
    "lint_file",
    "load_baseline",
    "parse_source",
    "repo_root",
    "rules_by_code",
    "run_lint",
    "save_baseline",
    "split_against_baseline",
]
