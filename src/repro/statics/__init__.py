"""``repro.statics`` — the repo's AST-based invariant linter (``repro lint``).

Static enforcement of the contracts the test suite can only check
behaviorally.  RPL001–007 are per-file rules; RPL008–010 are
whole-program rules driven by the project call graph
(:mod:`repro.statics.callgraph`) and the interprocedural dataflow engine
(:mod:`repro.statics.dataflow`):

===== ==================================================================
code  invariant
===== ==================================================================
RPL001 no ambient entropy (wall clocks, global RNG) on reproducible paths
RPL002 no order-sensitive accumulation over unordered sources
RPL003 Node/Cluster state mutates only through the SoA listener core
RPL004 to_dict/from_dict pairing; json.dump(s) must pass allow_nan=False
RPL005 store-derived memo caches must show model_version discipline
RPL006 object.__setattr__ on frozen specs only during construction
RPL007 no silently swallowed exceptions on incident-bearing paths
RPL008 no entropy *flow* into persisted documents, through any calls
RPL009 literal service frames conform to protocol.FRAME_SCHEMAS
RPL010 armed fault seams cannot escape an entry point unrecorded
===== ==================================================================

(Plus ``RPL000``: the linter's own hygiene — malformed, reasonless, or
unused suppressions.)  See DESIGN.md items 40 and 47, and
``tests/test_statics.py``.
"""

from repro.statics.baseline import (
    DEFAULT_BASELINE,
    BaselineEntry,
    load_baseline,
    save_baseline,
    split_against_baseline,
)
from repro.statics.callgraph import CallGraph, ProjectIndex
from repro.statics.core import (
    META_CODE,
    Finding,
    ImportMap,
    ProjectRule,
    Rule,
    SourceFile,
    parse_source,
)
from repro.statics.dataflow import Project
from repro.statics.engine import (
    DEFAULT_TARGETS,
    LintReport,
    apply_suppressions,
    collect_files,
    lint_file,
    repo_root,
    run_lint,
)
from repro.statics.rules import all_rules, rules_by_code

__all__ = [
    "BaselineEntry",
    "CallGraph",
    "DEFAULT_BASELINE",
    "DEFAULT_TARGETS",
    "Finding",
    "ImportMap",
    "LintReport",
    "META_CODE",
    "Project",
    "ProjectIndex",
    "ProjectRule",
    "Rule",
    "SourceFile",
    "all_rules",
    "apply_suppressions",
    "collect_files",
    "lint_file",
    "load_baseline",
    "parse_source",
    "repo_root",
    "rules_by_code",
    "run_lint",
    "save_baseline",
    "split_against_baseline",
]
