"""Physical units and constants used throughout the library.

All quantities in the library are plain floats in SI base units:

* time      — seconds
* memory    — bytes
* bandwidth — bytes / second
* work      — training samples (a job's progress unit)

The helpers here exist so call sites read as ``4 * GiB`` or
``seconds(minutes=5)`` instead of raw magic numbers.
"""

from __future__ import annotations

#: Decimal byte multiples (used for marketing-style bandwidths, e.g. 100 GB/s).
KB = 1e3
MB = 1e6
GB = 1e9
TB = 1e12

#: Binary byte multiples (used for device memory sizes, e.g. 80 GiB HBM).
KiB = 1024.0
MiB = 1024.0**2
GiB = 1024.0**3
TiB = 1024.0**4

#: Time multiples, in seconds.
MS = 1e-3
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 24 * HOUR

#: Bytes per element for the numeric formats that appear in the memory model.
BYTES_FP16 = 2
BYTES_FP32 = 4
#: Adam keeps an fp32 master copy plus two fp32 moments per parameter.
ADAM_STATE_BYTES_PER_PARAM = 3 * BYTES_FP32


def seconds(*, hours: float = 0.0, minutes: float = 0.0, secs: float = 0.0) -> float:
    """Build a duration in seconds from mixed components."""
    return hours * HOUR + minutes * MINUTE + secs


def fmt_bytes(num_bytes: float) -> str:
    """Render a byte count as a short human-readable string (binary units)."""
    if num_bytes < 0:
        return "-" + fmt_bytes(-num_bytes)
    for unit, name in ((TiB, "TiB"), (GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB")):
        if num_bytes >= unit:
            return f"{num_bytes / unit:.2f} {name}"
    return f"{num_bytes:.0f} B"


def fmt_duration(secs: float) -> str:
    """Render a duration as ``1h23m``, ``4m10s`` or ``12.3s``."""
    if secs < 0:
        return "-" + fmt_duration(-secs)
    if secs >= HOUR:
        hours = int(secs // HOUR)
        minutes = int((secs - hours * HOUR) // MINUTE)
        return f"{hours}h{minutes:02d}m"
    if secs >= MINUTE:
        minutes = int(secs // MINUTE)
        rem = secs - minutes * MINUTE
        return f"{minutes}m{rem:02.0f}s"
    return f"{secs:.1f}s"
