"""Resource shapes and interconnect environment for performance prediction.

The performance model does not need a full placement — only its *shape*: how
many GPUs, spread over how many nodes (which decides whether DP/PP traffic
crosses the slow inter-node links), the smallest per-node share (which bounds
TP) and how many CPUs the job holds (which scales the ZeRO-Offload optimizer).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.placement import Placement
from repro.cluster.topology import ClusterSpec


@dataclass(frozen=True)
class Interconnect:
    """Bandwidth environment (paper Table 1, "Environment" row)."""

    intra_bw: float  # NVLink, bytes/s
    inter_bw: float  # cross-node RDMA, bytes/s
    pcie_bw: float  # host <-> device, bytes/s

    @staticmethod
    def from_cluster(spec: ClusterSpec) -> "Interconnect":
        return Interconnect(
            intra_bw=spec.node.intra_bw,
            inter_bw=spec.inter_bw,
            pcie_bw=spec.node.pcie_bw,
        )


@dataclass(frozen=True)
class ResourceShape:
    """Shape of a job's allocation, as seen by the performance model."""

    gpus: int
    num_nodes: int
    min_gpus_per_node: int
    cpus: int

    def __post_init__(self) -> None:
        if self.gpus < 0 or self.cpus < 0:
            raise ValueError(f"negative resources in shape: {self}")
        if self.gpus > 0 and self.num_nodes < 1:
            raise ValueError(f"GPUs without nodes: {self}")

    @property
    def spans_nodes(self) -> bool:
        return self.num_nodes > 1

    @staticmethod
    def from_placement(placement: Placement) -> "ResourceShape":
        total = placement.total
        return ResourceShape(
            gpus=total.gpus,
            num_nodes=max(placement.num_nodes, 1 if total.gpus else 0),
            min_gpus_per_node=placement.min_gpus_per_node,
            cpus=total.cpus,
        )

    @staticmethod
    def packed(
        gpus: int, *, node_size: int = 8, cpus: int | None = None
    ) -> "ResourceShape":
        """Canonical densely packed shape: whole nodes first.

        Used by sensitivity curves to evaluate hypothetical GPU counts before
        a concrete placement exists.  ``cpus`` defaults to one per GPU.
        """
        if gpus <= 0:
            return ResourceShape(gpus=0, num_nodes=0, min_gpus_per_node=0, cpus=0)
        full_nodes, rem = divmod(gpus, node_size)
        num_nodes = full_nodes + (1 if rem else 0)
        min_share = rem if rem else min(gpus, node_size)
        return ResourceShape(
            gpus=gpus,
            num_nodes=num_nodes,
            min_gpus_per_node=min_share,
            cpus=cpus if cpus is not None else gpus,
        )

    def with_cpus(self, cpus: int) -> "ResourceShape":
        return ResourceShape(
            gpus=self.gpus,
            num_nodes=self.num_nodes,
            min_gpus_per_node=self.min_gpus_per_node,
            cpus=cpus,
        )
