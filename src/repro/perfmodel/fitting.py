"""Fitting the performance model from profiled samples (paper §4.3).

The paper fits the 7-tuple of parameters by minimizing the root mean squared
logarithmic error (RMSLE) between predicted and measured iteration times over
a handful of sampled test runs — at least seven points, at least three of
which use ZeRO-Offload (otherwise ``k_opt_off``/``k_off``/``k_swap`` are not
observable).

We search in log-parameter space with ``scipy.optimize.least_squares`` (the
parameters span many orders of magnitude) from a few deterministic restarts,
keeping the best solution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import least_squares

from repro.errors import FittingError
from repro.models.specs import ModelSpec
from repro.perfmodel.components import compute_breakdown
from repro.perfmodel.model import PerfModel
from repro.perfmodel.params import PARAM_BOUNDS, PerfParams
from repro.perfmodel.shape import Interconnect, ResourceShape
from repro.plans.plan import ExecutionPlan
from repro.rng import rng_for

#: The paper's minimum sample budget.
MIN_SAMPLES = 7
MIN_OFFLOAD_SAMPLES = 3


@dataclass(frozen=True)
class ThroughputSample:
    """One measured configuration: (plan, shape, batch) -> samples/second."""

    plan: ExecutionPlan
    shape: ResourceShape
    global_batch: int
    throughput: float

    @property
    def iter_time(self) -> float:
        return self.global_batch / self.throughput


@dataclass(frozen=True)
class FitReport:
    """Diagnostics of one fitting run."""

    rmsle: float
    num_samples: int
    num_offload_samples: int
    per_sample_error: tuple[float, ...]  # relative |pred - meas| / meas

    @property
    def max_error(self) -> float:
        return max(self.per_sample_error) if self.per_sample_error else 0.0

    @property
    def avg_error(self) -> float:
        if not self.per_sample_error:
            return 0.0
        return float(np.mean(self.per_sample_error))


def _predict_iter_times(
    model: ModelSpec,
    env: Interconnect,
    t_fwd_ref: float,
    params: PerfParams,
    samples: list[ThroughputSample],
) -> np.ndarray:
    return np.array(
        [
            compute_breakdown(
                model=model,
                plan=s.plan,
                shape=s.shape,
                env=env,
                params=params,
                t_fwd_ref=t_fwd_ref,
                global_batch=s.global_batch,
            ).t_iter
            for s in samples
        ]
    )


def fit_perf_model(
    model: ModelSpec,
    env: Interconnect,
    t_fwd_ref: float,
    samples: list[ThroughputSample],
    *,
    restarts: int = 4,
    seed: int = 0,
    strict: bool = True,
) -> tuple[PerfModel, FitReport]:
    """Fit :class:`PerfParams` to measured samples; return model + report.

    Args:
        strict: Enforce the paper's sampling requirements (>= 7 samples,
            >= 3 with ZeRO-Offload).  Disable for online refits on arbitrary
            runtime measurements.

    Raises:
        FittingError: On insufficient samples (strict mode) or solver failure.
    """
    n_off = sum(1 for s in samples if s.plan.uses_offload)
    if strict:
        if len(samples) < MIN_SAMPLES:
            raise FittingError(
                f"need >= {MIN_SAMPLES} samples to fit, got {len(samples)}"
            )
        if n_off < MIN_OFFLOAD_SAMPLES:
            raise FittingError(
                f"need >= {MIN_OFFLOAD_SAMPLES} ZeRO-Offload samples, got {n_off}"
            )
    if not samples:
        raise FittingError("cannot fit with zero samples")
    for s in samples:
        if s.throughput <= 0:
            raise FittingError(f"non-positive measured throughput in sample {s}")

    measured_log = np.log([s.iter_time for s in samples])
    names = PerfParams.names()
    lo = np.log([PARAM_BOUNDS[n][0] for n in names])
    hi = np.log([PARAM_BOUNDS[n][1] for n in names])

    def residuals(x: np.ndarray) -> np.ndarray:
        params = PerfParams.from_vector(list(np.exp(x)))
        pred = _predict_iter_times(model, env, t_fwd_ref, params, samples)
        return np.log(np.maximum(pred, 1e-12)) - measured_log

    rng = rng_for(seed, "perfmodel-fit", model.name)
    starts = [np.log(np.array(PerfParams().as_vector()))]
    for _ in range(max(restarts - 1, 0)):
        starts.append(lo + rng.random(len(names)) * (hi - lo))

    best_x: np.ndarray | None = None
    best_cost = np.inf
    for x0 in starts:
        x0c = np.clip(x0, lo, hi)
        try:
            result = least_squares(
                residuals, x0c, bounds=(lo, hi), method="trf", max_nfev=2000
            )
        except Exception as exc:  # pragma: no cover - scipy internal failure
            raise FittingError(f"least-squares solver failed: {exc}") from exc
        if result.cost < best_cost:
            best_cost = result.cost
            best_x = result.x
    assert best_x is not None

    params = PerfParams.from_vector(list(np.exp(best_x)))
    fitted = PerfModel(model=model, env=env, t_fwd_ref=t_fwd_ref, params=params)
    pred = _predict_iter_times(model, env, t_fwd_ref, params, samples)
    meas = np.array([s.iter_time for s in samples])
    rel_err = np.abs(pred - meas) / meas
    rmsle = float(np.sqrt(np.mean((np.log(pred) - measured_log) ** 2)))
    report = FitReport(
        rmsle=rmsle,
        num_samples=len(samples),
        num_offload_samples=n_off,
        per_sample_error=tuple(float(e) for e in rel_err),
    )
    return fitted, report


def prediction_errors(
    perf: PerfModel, samples: list[ThroughputSample]
) -> list[float]:
    """Relative throughput prediction errors on held-out samples (Table 2)."""
    errors = []
    for s in samples:
        pred = perf.throughput(s.plan, s.shape, s.global_batch)
        errors.append(abs(pred - s.throughput) / s.throughput)
    return errors
