"""Continuous (online) performance-model refitting — paper §4.3.

    "The model can also be updated online using metrics collected in real
    training runs when the prediction error exceeds a threshold.  By
    continuously updating the model, Rubick could fix potential prediction
    errors and the impact of such errors on scheduling decisions."

:class:`OnlineRefitter` watches realized throughput observations per model
type, compares them with the current fitted model's prediction, and — once
the error on a fresh observation exceeds ``error_threshold`` — refits the
model over the union of the original profiling samples and the accumulated
runtime observations (non-strict fitting: runtime observations need not
include ZeRO-Offload runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.models.specs import ModelSpec
from repro.perfmodel.fitting import ThroughputSample, fit_perf_model
from repro.perfmodel.model import PerfModel
from repro.perfmodel.shape import ResourceShape
from repro.plans.plan import ExecutionPlan


@dataclass
class RefitEvent:
    """Record of one online refit (for observability and tests)."""

    model_name: str
    trigger_error: float
    num_samples: int
    rmsle_after: float


@dataclass
class OnlineRefitter:
    """Tracks observations and refits per-model performance models.

    Attributes:
        error_threshold: Relative throughput error that triggers a refit.
        max_observations: Sliding-window cap on retained runtime samples per
            model (oldest observations age out — clusters drift).
        min_new_samples: Observations that must accumulate between refits,
            preventing refit thrash on a single noisy reading.
    """

    error_threshold: float = 0.10
    max_observations: int = 64
    min_new_samples: int = 3
    seed: int = 0
    _observations: dict[str, list[ThroughputSample]] = field(default_factory=dict)
    _base_samples: dict[str, list[ThroughputSample]] = field(default_factory=dict)
    _since_refit: dict[str, int] = field(default_factory=dict)
    events: list[RefitEvent] = field(default_factory=list)

    def register_profiling_samples(
        self, model: ModelSpec, samples: list[ThroughputSample]
    ) -> None:
        """Keep the offline profiling set; refits always include it (it is
        the only source of ZeRO-Offload coverage for many models)."""
        self._base_samples[model.name] = list(samples)

    def observe(
        self,
        perf: PerfModel,
        model: ModelSpec,
        plan: ExecutionPlan,
        shape: ResourceShape,
        global_batch: int,
        realized_throughput: float,
    ) -> PerfModel:
        """Record one realized-throughput observation; maybe refit.

        Returns the (possibly refitted) performance model — callers should
        store the result back.
        """
        if realized_throughput <= 0:
            return perf
        predicted = perf.throughput(plan, shape, global_batch)
        error = abs(predicted - realized_throughput) / realized_throughput

        window = self._observations.setdefault(model.name, [])
        window.append(
            ThroughputSample(
                plan=plan,
                shape=shape,
                global_batch=global_batch,
                throughput=realized_throughput,
            )
        )
        if len(window) > self.max_observations:
            del window[: len(window) - self.max_observations]
        self._since_refit[model.name] = self._since_refit.get(model.name, 0) + 1

        if error <= self.error_threshold:
            return perf
        if self._since_refit[model.name] < self.min_new_samples:
            return perf
        return self._refit(perf, model, error)

    def _refit(self, perf: PerfModel, model: ModelSpec, error: float) -> PerfModel:
        samples = list(self._base_samples.get(model.name, []))
        samples.extend(self._observations.get(model.name, []))
        # Deduplicate identical configurations, keeping the newest reading.
        deduped: dict[tuple, ThroughputSample] = {}
        for s in samples:
            deduped[(s.plan, s.shape, s.global_batch)] = s
        samples = list(deduped.values())
        if len(samples) < 4:
            return perf  # not enough signal to move the 7-parameter fit
        refitted, report = fit_perf_model(
            model,
            perf.env,
            perf.t_fwd_ref,
            samples,
            strict=False,
            seed=self.seed,
        )
        self._since_refit[model.name] = 0
        self.events.append(
            RefitEvent(
                model_name=model.name,
                trigger_error=error,
                num_samples=len(samples),
                rmsle_after=report.rmsle,
            )
        )
        return refitted

    def observation_count(self, model: ModelSpec) -> int:
        return len(self._observations.get(model.name, ()))
