"""The fitted performance model: predicts throughput for any (plan, shape).

One :class:`PerfModel` exists per *model type* (paper §3: the model "can also
be reused across multiple jobs of the same model type").  It combines

* one profiled constant — ``t_fwd_ref``, the framework-profiler forward time
  per sample (paper §4.1 obtains ``T_fwd`` from DeepSpeed's profiler), and
* the seven fitted :class:`~repro.perfmodel.params.PerfParams`,

and evaluates the closed form of `repro.perfmodel.components` with ideal
effects.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.models.specs import ModelSpec
from repro.perfmodel.components import IterBreakdown, compute_breakdown
from repro.perfmodel.params import PerfParams
from repro.perfmodel.shape import Interconnect, ResourceShape
from repro.plans.plan import ExecutionPlan


@dataclass(frozen=True)
class PerfModel:
    """Throughput predictor for one model type."""

    model: ModelSpec
    env: Interconnect
    t_fwd_ref: float
    params: PerfParams = PerfParams()

    def __post_init__(self) -> None:
        if self.t_fwd_ref <= 0:
            raise ValueError("t_fwd_ref (profiled forward time) must be positive")

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def breakdown(
        self, plan: ExecutionPlan, shape: ResourceShape, global_batch: int
    ) -> IterBreakdown:
        """Full component breakdown of the predicted iteration time."""
        return compute_breakdown(
            model=self.model,
            plan=plan,
            shape=shape,
            env=self.env,
            params=self.params,
            t_fwd_ref=self.t_fwd_ref,
            global_batch=global_batch,
        )

    def iter_time(
        self, plan: ExecutionPlan, shape: ResourceShape, global_batch: int
    ) -> float:
        """Predicted seconds per training iteration (paper Eq. 1)."""
        return self.breakdown(plan, shape, global_batch).t_iter

    def throughput(
        self, plan: ExecutionPlan, shape: ResourceShape, global_batch: int
    ) -> float:
        """Predicted training throughput in samples/second (``b / T_iter``)."""
        return global_batch / self.iter_time(plan, shape, global_batch)

    # ------------------------------------------------------------------
    # Updates (continuous refitting support)
    # ------------------------------------------------------------------
    def with_params(self, params: PerfParams) -> "PerfModel":
        return replace(self, params=params)
