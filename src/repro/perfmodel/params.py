"""Fittable performance-model parameters (paper Table 1, "Fittable" row).

The seven parameters are:

* ``k_bwd``      — backward/forward compute ratio.
* ``k_sync``     — overlap degree of backward pass and DP gradient sync.
* ``k_opt``      — optimizer seconds per parameter (GPU update path).
* ``k_opt_off``  — optimizer seconds per parameter per CPU (offloaded update).
* ``k_off``      — overlap degree of gradient sync and offload traffic.
* ``k_swap``     — overlap degree of optimizer step and offload traffic.
* ``k_const``    — constant per-iteration overhead (launch, dataloader, glue).

Fitting needs at least seven samples, three of which must exercise
ZeRO-Offload (paper §4.3): ``k_opt_off``/``k_off``/``k_swap`` are only
observable under that strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass(frozen=True)
class PerfParams:
    """One point in the 7-dimensional fittable parameter space."""

    k_bwd: float = 2.0
    k_sync: float = 2.0
    k_opt: float = 5e-11
    k_opt_off: float = 2e-9
    k_off: float = 2.0
    k_swap: float = 2.0
    k_const: float = 0.05

    def as_vector(self) -> list[float]:
        return [getattr(self, f.name) for f in fields(self)]

    @staticmethod
    def names() -> list[str]:
        return [f.name for f in fields(PerfParams)]

    @staticmethod
    def from_vector(values: list[float] | tuple[float, ...]) -> "PerfParams":
        names = PerfParams.names()
        if len(values) != len(names):
            raise ValueError(f"expected {len(names)} values, got {len(values)}")
        return PerfParams(**dict(zip(names, (float(v) for v in values))))


#: Lower/upper bounds per parameter, used by the fitter (log-space search).
PARAM_BOUNDS: dict[str, tuple[float, float]] = {
    "k_bwd": (0.3, 6.0),
    "k_sync": (1.0, 32.0),
    "k_opt": (1e-13, 1e-8),
    "k_opt_off": (1e-12, 1e-6),
    "k_off": (1.0, 32.0),
    "k_swap": (1.0, 32.0),
    "k_const": (1e-4, 10.0),
}
