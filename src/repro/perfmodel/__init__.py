"""Performance model for reconfigurable DL training (paper §4)."""

from repro.perfmodel.components import (
    Effects,
    IDEAL_EFFECTS,
    IterBreakdown,
    comm_volume_dp,
    comm_volume_pp,
    comm_volume_tp,
    compute_breakdown,
    forward_pass_time,
    offload_volume,
)
from repro.perfmodel.fitting import (
    FitReport,
    MIN_OFFLOAD_SAMPLES,
    MIN_SAMPLES,
    ThroughputSample,
    fit_perf_model,
    prediction_errors,
)
from repro.perfmodel.model import PerfModel
from repro.perfmodel.online import OnlineRefitter, RefitEvent
from repro.perfmodel.overlap import overlap
from repro.perfmodel.params import PARAM_BOUNDS, PerfParams
from repro.perfmodel.shape import Interconnect, ResourceShape

__all__ = [
    "Effects",
    "FitReport",
    "IDEAL_EFFECTS",
    "Interconnect",
    "IterBreakdown",
    "MIN_OFFLOAD_SAMPLES",
    "MIN_SAMPLES",
    "OnlineRefitter",
    "PARAM_BOUNDS",
    "PerfModel",
    "RefitEvent",
    "PerfParams",
    "ResourceShape",
    "ThroughputSample",
    "comm_volume_dp",
    "comm_volume_pp",
    "comm_volume_tp",
    "compute_breakdown",
    "fit_perf_model",
    "forward_pass_time",
    "offload_volume",
    "overlap",
    "prediction_errors",
]
