"""The overlap-combining function of paper §4.3.

``f_overlap^k(x, y) = (x^k + y^k)^(1/k)`` models two pipeline-able time spans
sharing a window: ``k = 1`` gives no overlap (``x + y``); ``k → ∞`` tends to
perfect overlap (``max(x, y)``).  The degree ``k`` is a fittable parameter
(the definition is borrowed from Pollux [38], as the paper notes).
"""

from __future__ import annotations

import numpy as np

#: k at (or beyond) which we switch to the exact max() limit to avoid
#: floating-point overflow in x**k.
_MAX_K = 64.0


def overlap(k: float, x: float, y: float) -> float:
    """Combined duration of spans ``x`` and ``y`` with overlap degree ``k``.

    Accepts ``k >= 1``; zero-length spans short-circuit (the combination of a
    span with nothing is the span itself, for any k).
    """
    if k < 1.0:
        raise ValueError(f"overlap degree k must be >= 1, got {k}")
    if x <= 0.0:
        return max(y, 0.0)
    if y <= 0.0:
        return max(x, 0.0)
    if k >= _MAX_K:
        return max(x, y)
    # Factor out the larger span for numerical stability:
    # (x^k + y^k)^(1/k) = hi * (1 + (lo/hi)^k)^(1/k)
    hi, lo = (x, y) if x >= y else (y, x)
    ratio = lo / hi
    return hi * float(np.power(1.0 + np.power(ratio, k), 1.0 / k))
