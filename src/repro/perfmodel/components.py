"""Iteration-time component formulas (paper §4.1–§4.3).

``compute_breakdown`` assembles the per-iteration time ``T_iter`` from the
paper's components::

    T_iter = T_cc + T_oo + k_const                         (Eq. 1)
    T_cc   = forward/backward compute + DP/TP/PP communication, with the DP
             gradient sync overlapped into the backward pass (k_sync)
    T_oo   = optimizer (+ offload traffic overlapped via k_off / k_swap)

The same code path serves two masters:

* the **fitted performance model** (`repro.perfmodel.model.PerfModel`) calls
  it with ideal :class:`Effects` — exactly the paper's closed form;
* the **synthetic testbed** (`repro.oracle`) calls it with perturbing
  effects (GPU efficiency roll-off, pipeline-bubble jitter, network
  congestion, CPU-scaling roll-off), which is what makes fitting non-trivial
  and yields honest Table-2-style prediction errors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.specs import ModelSpec
from repro.perfmodel.overlap import overlap
from repro.perfmodel.params import PerfParams
from repro.perfmodel.shape import Interconnect, ResourceShape
from repro.plans.plan import ExecutionPlan, ZeroStage
from repro.units import BYTES_FP16


class Effects:
    """Hook points where the real system deviates from the ideal closed form.

    The base class is the identity (ideal hardware); the synthetic testbed
    subclasses it.  Each hook returns a multiplier (>= 1 slows things down)
    or an adjusted value.
    """

    def fwd_time(self, ideal: float, mbs: int, tp: int) -> float:
        """Forward-pass time adjustment (kernel efficiency vs. micro-batch)."""
        del mbs, tp
        return ideal

    def bubble_factor(self, pp: int, micro_batches: int) -> float:
        """Multiplier on the pipeline (m + p - 1) span (stage imbalance)."""
        del pp, micro_batches
        return 1.0

    def bandwidth(self, nominal: float, num_nodes: int, kind: str) -> float:
        """Achievable bandwidth for a communication kind ('dp'/'tp'/'pp'/'pcie')."""
        del num_nodes, kind
        return nominal

    def cpu_update_time(self, ideal: float, cpus_per_rank: float) -> float:
        """Offloaded optimizer-step adjustment (CPU scaling roll-off)."""
        del cpus_per_rank
        return ideal


IDEAL_EFFECTS = Effects()


@dataclass(frozen=True)
class IterBreakdown:
    """All component times (seconds) for one training iteration."""

    t_fwd: float  # total forward span per iteration
    t_bwd: float  # total backward span per iteration (incl. GC recompute)
    t_comm_dp: float
    t_comm_tp: float
    t_comm_pp: float
    t_opt: float
    t_off: float
    t_cc: float
    t_oo: float
    t_iter: float

    @property
    def throughput_denominator(self) -> float:
        return self.t_iter

    def as_dict(self) -> dict[str, float]:
        return {
            "t_fwd": self.t_fwd,
            "t_bwd": self.t_bwd,
            "t_comm_dp": self.t_comm_dp,
            "t_comm_tp": self.t_comm_tp,
            "t_comm_pp": self.t_comm_pp,
            "t_opt": self.t_opt,
            "t_off": self.t_off,
            "t_cc": self.t_cc,
            "t_oo": self.t_oo,
            "t_iter": self.t_iter,
        }


# ----------------------------------------------------------------------
# Communication volumes (paper §4.1, bytes per iteration)
# ----------------------------------------------------------------------
def comm_volume_dp(model: ModelSpec, plan: ExecutionPlan) -> float:
    """Ring-AllReduce gradient traffic per GPU: ``P · 2(d-1) / (d·t·p)``.

    Deviation from the paper (recorded in DESIGN.md): the paper applies the
    plain-DP rule unchanged to the ZeRO series, but ZeRO-2 physically pays a
    reduce-scatter for gradients *plus* an all-gather for the updated fp16
    parameters — twice the volume.  Without that term ZeRO-DP spuriously
    dominates 3D parallelism at multi-node scale, contradicting the paper's
    own Fig. 7.  (ZeRO-Offload moves the parameter round-trip over PCIe,
    which ``offload_volume`` accounts for.)
    """
    if plan.dp <= 1:
        return 0.0
    p_bytes = BYTES_FP16 * model.param_count
    volume = p_bytes * 2.0 * (plan.dp - 1) / (plan.dp * plan.tp * plan.pp)
    if plan.zero == ZeroStage.ZERO_DP:
        volume *= 2.0
    return volume


def comm_volume_tp(model: ModelSpec, plan: ExecutionPlan, global_batch: int) -> float:
    """TP activation traffic: ``4·2·(t-1)·b·s·h·l / (d·t)`` elements (fp16).

    Four collectives per layer across forward+backward; not divided by ``p``
    because TP communication across pipeline stages serializes (paper §4.1).
    """
    if plan.tp <= 1:
        return 0.0
    elems = (
        4.0
        * 2.0
        * (plan.tp - 1)
        * global_batch
        * model.seq_len
        * model.hidden_size
        * model.num_layers
        / (plan.dp * plan.tp)
    )
    return BYTES_FP16 * elems


def comm_volume_pp(model: ModelSpec, plan: ExecutionPlan, global_batch: int) -> float:
    """PP stage-boundary traffic: ``2·p·b·s·h / (d·t)`` elements (fp16)."""
    if plan.pp <= 1:
        return 0.0
    elems = (
        2.0
        * plan.pp
        * global_batch
        * model.seq_len
        * model.hidden_size
        / (plan.dp * plan.tp)
    )
    return BYTES_FP16 * elems


def offload_volume(model: ModelSpec, plan: ExecutionPlan) -> float:
    """Per-rank PCIe traffic for ZeRO-Offload: gradients down + params up.

    The paper gives ``P/d`` per direction without mixed precision; with fp16
    transfers both directions that is ``2 · 2P / d`` bytes.
    """
    if not plan.uses_offload:
        return 0.0
    return 2.0 * BYTES_FP16 * model.param_count / plan.dp


# ----------------------------------------------------------------------
# Component times
# ----------------------------------------------------------------------
def forward_pass_time(
    model: ModelSpec,
    plan: ExecutionPlan,
    global_batch: int,
    t_fwd_ref: float,
    effects: Effects = IDEAL_EFFECTS,
) -> float:
    """Forward time for one *pass* (one micro-batch through the whole model).

    ``t_fwd_ref`` is the profiled forward time for one sample through the
    full (unsharded) model on one GPU — the framework-profiler measurement of
    paper §4.1, scaled linearly to the per-GPU batch and tensor shard.
    """
    mbs = plan.micro_batch_size(global_batch)
    ideal = t_fwd_ref * mbs / plan.tp
    return effects.fwd_time(ideal, mbs, plan.tp)


def compute_breakdown(
    model: ModelSpec,
    plan: ExecutionPlan,
    shape: ResourceShape,
    env: Interconnect,
    params: PerfParams,
    t_fwd_ref: float,
    global_batch: int,
    effects: Effects = IDEAL_EFFECTS,
) -> IterBreakdown:
    """Assemble ``T_iter`` for (model, plan, shape) under ``params``.

    The caller guarantees the plan matches the shape (``plan.num_gpus ==
    shape.gpus``); memory feasibility is checked elsewhere (`repro.plans.memory`).
    """
    t_pass_fwd = forward_pass_time(model, plan, global_batch, t_fwd_ref, effects)

    # Backward pass per micro-batch; GC recomputes a forward on top.
    t_pass_bwd = params.k_bwd * t_pass_fwd
    if plan.gc:
        t_pass_bwd += t_pass_fwd

    # --- Communication times ------------------------------------------
    dp_kind_nodes = shape.num_nodes
    b_dp = env.inter_bw if shape.spans_nodes else env.intra_bw
    b_pp = env.inter_bw if shape.spans_nodes else env.intra_bw
    b_tp = env.intra_bw  # TP stays intra-node by construction
    t_comm_dp = comm_volume_dp(model, plan) / effects.bandwidth(
        b_dp, dp_kind_nodes, "dp"
    )
    t_comm_tp = comm_volume_tp(model, plan, global_batch) / effects.bandwidth(
        b_tp, dp_kind_nodes, "tp"
    )
    t_comm_pp = comm_volume_pp(model, plan, global_batch) / effects.bandwidth(
        b_pp, dp_kind_nodes, "pp"
    )

    # --- Combine compute + communication (T_cc) ------------------------
    if plan.pp > 1:
        # 1F1B pipeline: (m + p - 1) sequential micro-slots per phase.
        slots = (plan.micro_batches + plan.pp - 1) * effects.bubble_factor(
            plan.pp, plan.micro_batches
        )
        t_fwd_total = (t_pass_fwd / plan.pp) * slots
        t_bwd_total = (t_pass_bwd / plan.pp) * slots
        t_cc = (
            t_fwd_total
            + overlap(params.k_sync, t_bwd_total, t_comm_dp)
            + t_comm_tp
            + t_comm_pp
        )
    else:
        # GA: a-1 local accumulation passes, last pass overlaps the sync.
        a = plan.ga_steps
        t_fwd_total = a * t_pass_fwd
        t_bwd_total = a * t_pass_bwd
        if plan.uses_offload:
            # Gradient sync participates in T_oo instead (see below), so the
            # compute part is plain forward+backward.
            t_cc = t_fwd_total + t_bwd_total + t_comm_tp
        else:
            # Paper §4.1 (GA): T_cc = a·T_fwd + (a-1)·T_bwd
            #                        + f_overlap^{k_sync}(T_bwd, T_comm_dp);
            # with a == 1 this reduces to the 3D-parallel combination.
            t_cc = (
                a * t_pass_fwd
                + (a - 1) * t_pass_bwd
                + overlap(params.k_sync, t_pass_bwd, t_comm_dp)
                + t_comm_tp
            )

    # --- Optimizer and offloading (T_oo) --------------------------------
    if plan.uses_offload:
        cpus_per_rank = max(shape.cpus / plan.dp, 0.5)
        t_opt_ideal = params.k_opt_off * model.param_count / (plan.dp * cpus_per_rank)
        t_opt = effects.cpu_update_time(t_opt_ideal, cpus_per_rank)
        b_pcie = effects.bandwidth(env.pcie_bw, shape.num_nodes, "pcie")
        t_off = offload_volume(model, plan) / b_pcie
        # Fig. 5 shows offload traffic split across two overlap windows:
        # gradients stream out against the DP sync, parameters stream back
        # against the CPU optimizer step.  We split T_off evenly.
        t_oo = overlap(params.k_off, t_comm_dp, t_off / 2.0) + overlap(
            params.k_swap, t_opt, t_off / 2.0
        )
    else:
        t_off = 0.0
        if plan.zero == ZeroStage.ZERO_DP:
            t_opt = params.k_opt * model.param_count / plan.dp
        else:
            t_opt = params.k_opt * model.param_count / (plan.tp * plan.pp)
        t_oo = t_opt

    t_iter = t_cc + t_oo + params.k_const
    return IterBreakdown(
        t_fwd=t_fwd_total,
        t_bwd=t_bwd_total,
        t_comm_dp=t_comm_dp,
        t_comm_tp=t_comm_tp,
        t_comm_pp=t_comm_pp,
        t_opt=t_opt,
        t_off=t_off,
        t_cc=t_cc,
        t_oo=t_oo,
        t_iter=t_iter,
    )
