"""Synthetic training-loss process for the accuracy-preservation experiments."""

from repro.training.loss import (
    LossCurveConfig,
    PLAN_NOISE_SCALE,
    SEED_NOISE_SCALE,
    expected_loss,
    max_loss_difference,
    relative_difference_curve,
    simulate_loss,
    simulate_reconfigured_loss,
)

__all__ = [
    "LossCurveConfig",
    "PLAN_NOISE_SCALE",
    "SEED_NOISE_SCALE",
    "expected_loss",
    "max_loss_difference",
    "relative_difference_curve",
    "simulate_loss",
    "simulate_reconfigured_loss",
]
