"""Synthetic training-loss process for the accuracy experiments (Fig. 9, Tab. 3).

The paper's claim is *statistical*: because Rubick keeps the global batch size
fixed across reconfigurations, switching plans/resources perturbs the loss
trajectory no more than changing the random seed does.  We reproduce the
claim with a synthetic loss process that encodes the same structure:

* the expected curve is a power-law decay determined only by (model, global
  batch, step) — the quantities reconfiguration preserves;
* seed changes re-draw the entire stochastic gradient-noise path (an AR(1)
  perturbation, matching the strong step-to-step correlation of real loss
  curves);
* plan changes re-draw only a *numerics* path with a much smaller amplitude —
  the floating-point non-determinism of different parallel reduction orders —
  so reconfigured curves stay inside the seed-variation envelope by
  construction of the physics being modeled, not by fiat on the outputs.

This is the documented substitution for real GPU training (DESIGN.md): the
evaluation exercises the same comparison pipeline (relative-difference curves
and max train/val/test deltas) the paper runs on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.specs import ModelSpec
from repro.plans.plan import ExecutionPlan
from repro.rng import rng_for

#: Relative amplitude of seed-level gradient noise on the loss.
SEED_NOISE_SCALE = 0.035
#: Relative amplitude of plan-level numerics noise (reduction order, fused
#: kernels) — roughly an order of magnitude below gradient noise.
PLAN_NOISE_SCALE = 0.006
#: AR(1) correlation of the noise paths (loss curves are smooth).
AR_COEFF = 0.95

#: Generalization-gap offsets of the evaluation splits.
_SPLIT_OFFSETS = {"train": 0.0, "validation": 0.04, "test": 0.06}


@dataclass(frozen=True)
class LossCurveConfig:
    """Configuration of one simulated training run."""

    model: ModelSpec
    global_batch: int
    seed: int = 0
    steps: int = 3000

    @property
    def initial_loss(self) -> float:
        # Cross-entropy starts near ln(vocab) for LMs; a smaller constant
        # stands in for vision models.
        if self.model.is_language_model:
            return float(np.log(self.model.vocab_size))
        return float(np.log(1000.0))

    @property
    def floor_loss(self) -> float:
        """Irreducible loss; larger models reach lower floors."""
        return 1.2 + 0.8 / np.log10(max(self.model.param_count, 10.0))

    @property
    def decay_exponent(self) -> float:
        """Power-law loss-curve exponent; mildly batch-dependent."""
        return 0.28 + 0.04 * np.log2(max(self.global_batch, 1)) / 10.0


def _ar1_path(rng: np.random.Generator, steps: int, scale: float) -> np.ndarray:
    """Smooth AR(1) noise path with stationary std ``scale``."""
    innovations = rng.normal(0.0, scale * np.sqrt(1 - AR_COEFF**2), size=steps)
    path = np.empty(steps)
    acc = rng.normal(0.0, scale)
    for i in range(steps):
        acc = AR_COEFF * acc + innovations[i]
        path[i] = acc
    return path


def expected_loss(config: LossCurveConfig) -> np.ndarray:
    """Noise-free expected loss trajectory (depends only on model/batch/step)."""
    steps = np.arange(1, config.steps + 1, dtype=float)
    span = config.initial_loss - config.floor_loss
    warmup = 25.0
    return config.floor_loss + span * ((steps + warmup) / warmup) ** (
        -config.decay_exponent
    )


def simulate_reconfigured_loss(
    config: LossCurveConfig,
    plan_schedule: list[tuple[int, ExecutionPlan]],
    *,
    split: str = "train",
) -> np.ndarray:
    """Loss for a run whose plan changes at the given steps.

    ``plan_schedule`` is ``[(start_step, plan), ...]`` with ascending start
    steps; the first entry must start at 0.  Because Rubick preserves the
    global batch across reconfigurations, only the small numerics-noise path
    switches at each boundary; the gradient-noise path is a function of the
    seed alone.
    """
    if not plan_schedule or plan_schedule[0][0] != 0:
        raise ValueError("plan_schedule must start at step 0")
    if split not in _SPLIT_OFFSETS:
        raise ValueError(f"unknown split {split!r}")
    base = expected_loss(config)
    seed_rng = rng_for(config.seed, "loss-seed", config.model.name)
    seed_noise = _ar1_path(seed_rng, config.steps, SEED_NOISE_SCALE)
    plan_noise = np.empty(config.steps)
    boundaries = [s for s, _ in plan_schedule[1:]] + [config.steps]
    for (start, plan), end in zip(plan_schedule, boundaries):
        if not 0 <= start < end <= config.steps:
            raise ValueError("plan_schedule steps must ascend within the run")
        rng = rng_for(config.seed, "loss-plan", config.model.name, repr(plan), start)
        plan_noise[start:end] = _ar1_path(rng, end - start, PLAN_NOISE_SCALE)
    curve = base * (1.0 + seed_noise + plan_noise)
    if split == "train":
        return curve
    eval_rng = rng_for(config.seed, "loss-eval", config.model.name, split)
    eval_noise = _ar1_path(eval_rng, config.steps, 0.01)
    return curve * (1.0 + _SPLIT_OFFSETS[split]) * (1.0 + eval_noise)


def simulate_loss(
    config: LossCurveConfig,
    plan: ExecutionPlan,
    *,
    split: str = "train",
) -> np.ndarray:
    """Simulated loss trajectory for a single-plan run."""
    return simulate_reconfigured_loss(config, [(0, plan)], split=split)


def max_loss_difference(
    reference: np.ndarray, other: np.ndarray, *, tail_fraction: float = 1.0
) -> float:
    """Max absolute pointwise loss difference (optionally over the curve tail)."""
    if reference.shape != other.shape:
        raise ValueError("curves must align")
    start = int(len(reference) * (1.0 - tail_fraction))
    return float(np.max(np.abs(reference[start:] - other[start:])))


def relative_difference_curve(
    reference: np.ndarray, other: np.ndarray
) -> np.ndarray:
    """Pointwise loss difference vs. a reference run (the curves of Fig. 9)."""
    if reference.shape != other.shape:
        raise ValueError("curves must align")
    return other - reference
