"""Reporting utilities for benches, examples and EXPERIMENTS.md."""

from repro.analysis.report import (
    NO_DATA,
    format_series,
    format_table,
    normalize_to_first,
    ratio,
    span_cell,
)

__all__ = [
    "NO_DATA",
    "format_series",
    "format_table",
    "normalize_to_first",
    "ratio",
    "span_cell",
]
