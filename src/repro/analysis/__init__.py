"""Reporting utilities for benches, examples and EXPERIMENTS.md."""

from repro.analysis.report import (
    format_series,
    format_table,
    normalize_to_first,
    ratio,
    span_cell,
)

__all__ = [
    "format_series",
    "format_table",
    "normalize_to_first",
    "ratio",
    "span_cell",
]
