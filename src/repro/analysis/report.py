"""ASCII reporting helpers used by the benchmarks and examples.

Every benchmark regenerates a paper table/figure as text; these helpers keep
the formatting consistent (fixed-width tables, normalized "1×/2.6×" ratio
columns, simple sparkline-style series for figures).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    rule_before: set[int] | frozenset[int] | None = None,
) -> str:
    """Render a fixed-width table.

    ``rule_before`` — row indices before which to repeat the separator
    rule, visually grouping consecutive rows (e.g. per workload scenario).
    """
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for i, row in enumerate(str_rows):
        if rule_before and i in rule_before:
            lines.append(sep)
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


#: How NaN statistics render: "no data" (e.g. the JCT of a tenant with no
#: completed jobs), never a numeric that could read as an instant 0.0.
NO_DATA = "—"


def _cell(value: object) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return NO_DATA
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def span_cell(
    mean: float, lo: float, hi: float, *, fmt: str = "{:.2f}"
) -> str:
    """A mean with its min–max spread, e.g. ``1.23 [1.10, 1.31]``.

    Collapses to the bare mean when the spread is degenerate (single seed)
    and to :data:`NO_DATA` when the statistic is NaN (empty subset).
    """
    if math.isnan(mean):
        return NO_DATA
    if fmt.format(lo) == fmt.format(hi):
        return fmt.format(mean)
    return f"{fmt.format(mean)} [{fmt.format(lo)}, {fmt.format(hi)}]"


def perf_footer(perf_rows: Iterable[dict]) -> str:
    """One-line perf summary appended under sweep tables.

    ``perf_rows`` are the sweep runner's per-executed-run timing rows
    (:func:`repro.experiments.runner.run_perf`): scheduler wall time per
    invocation, steady-state rounds short-circuited, and simulator
    event-loop rounds per wall second.  Resumed runs carry no timing, so the
    footer reports over the runs this invocation actually executed.
    """
    rows = [r for r in perf_rows if r.get("sim_wall_seconds", 0.0) > 0.0]
    if not rows:
        return "perf: no runs executed in this invocation (all resumed)"
    invocations = sum(r.get("policy_invocations", 0) for r in rows)
    skips = sum(r.get("policy_skips", 0) for r in rows)
    policy_wall = sum(r.get("policy_wall_seconds", 0.0) for r in rows)
    sim_rounds = sum(r.get("sim_rounds", 0) for r in rows)
    sim_wall = sum(r.get("sim_wall_seconds", 0.0) for r in rows)
    per_invocation = 1000.0 * policy_wall / invocations if invocations else 0.0
    events = sim_rounds / sim_wall if sim_wall > 0 else 0.0
    return (
        f"perf: scheduler {per_invocation:.2f} ms/invocation · "
        f"{skips} steady-state rounds short-circuited · "
        f"simulator {events:.0f} events/s "
        f"({len(rows)} runs executed)"
    )


def ratio(value: float, reference: float) -> str:
    """Paper-style normalized ratio, e.g. ``(2.6x)`` (reference prints 1x)."""
    if reference <= 0:
        return "(n/a)"
    return f"({value / reference:.2f}x)"


def format_series(
    xs: Sequence[object],
    ys: Sequence[float],
    *,
    label: str = "",
    width: int = 40,
) -> str:
    """Render a (x, y) series as labeled rows with proportional bars."""
    if len(xs) != len(ys):
        raise ValueError("series lengths differ")
    top = max((abs(y) for y in ys), default=1.0) or 1.0
    lines = [label] if label else []
    for x, y in zip(xs, ys):
        bar = "#" * max(int(round(width * abs(y) / top)), 0)
        lines.append(f"  {str(x):>12s} | {y:10.3f} | {bar}")
    return "\n".join(lines)


def normalize_to_first(values: Sequence[float]) -> list[float]:
    """Normalize a list so the first element becomes 1 (paper's 1× anchor)."""
    if not values:
        return []
    anchor = values[0]
    if anchor == 0:
        return [0.0 for _ in values]
    return [v / anchor for v in values]
