"""ASCII reporting helpers used by the benchmarks and examples.

Every benchmark regenerates a paper table/figure as text; these helpers keep
the formatting consistent (fixed-width tables, normalized "1×/2.6×" ratio
columns, simple sparkline-style series for figures).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render a fixed-width table."""
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def span_cell(
    mean: float, lo: float, hi: float, *, fmt: str = "{:.2f}"
) -> str:
    """A mean with its min–max spread, e.g. ``1.23 [1.10, 1.31]``.

    Collapses to the bare mean when the spread is degenerate (single seed).
    """
    if fmt.format(lo) == fmt.format(hi):
        return fmt.format(mean)
    return f"{fmt.format(mean)} [{fmt.format(lo)}, {fmt.format(hi)}]"


def ratio(value: float, reference: float) -> str:
    """Paper-style normalized ratio, e.g. ``(2.6x)`` (reference prints 1x)."""
    if reference <= 0:
        return "(n/a)"
    return f"({value / reference:.2f}x)"


def format_series(
    xs: Sequence[object],
    ys: Sequence[float],
    *,
    label: str = "",
    width: int = 40,
) -> str:
    """Render a (x, y) series as labeled rows with proportional bars."""
    if len(xs) != len(ys):
        raise ValueError("series lengths differ")
    top = max((abs(y) for y in ys), default=1.0) or 1.0
    lines = [label] if label else []
    for x, y in zip(xs, ys):
        bar = "#" * max(int(round(width * abs(y) / top)), 0)
        lines.append(f"  {str(x):>12s} | {y:10.3f} | {bar}")
    return "\n".join(lines)


def normalize_to_first(values: Sequence[float]) -> list[float]:
    """Normalize a list so the first element becomes 1 (paper's 1× anchor)."""
    if not values:
        return []
    anchor = values[0]
    if anchor == 0:
        return [0.0 for _ in values]
    return [v / anchor for v in values]
