"""Per-run fault injection and deterministic error payloads.

A :class:`FaultInjector` is created once per run (by the sweep runner) and
threaded through every instrumented layer.  Each seam call site does one
of two things:

* ``injector.check(seam)`` — count the invocation and raise when a plan
  rule matches (``worker-crash`` → :class:`InjectedCrash`, ``worker-hang``
  → :class:`InjectedHang`, everything else → :class:`InjectedFault`);
* ``injector.mangle(seam, text)`` — count the invocation and return a
  corrupted payload when a rule matches (used by the ``store-record``
  seam to emit a torn, truncated run document).

Occurrence counters live on the injector, not the attempt, so a rule with
``times=(1,)`` fires on attempt 1 and the retry sails through — the
harness models transient faults without any randomness.

The module also owns the deterministic error-payload helpers shared by
quarantine records and incident streams: :func:`traceback_digest` hashes
only stable frame coordinates (file basename, function, line), never
memory addresses or absolute paths, and :func:`incident_payload` turns an
exception into a JSON-stable dict.
"""

from __future__ import annotations

import hashlib
import traceback
from collections import Counter
from typing import Any

from repro.errors import InjectedCrash, InjectedFault, InjectedHang
from repro.faults.plan import FaultPlan


def traceback_digest(exc: BaseException) -> str:
    """A short, deterministic fingerprint of an exception's traceback.

    Hashes the exception type plus the ``basename:function:lineno`` chain
    of its traceback frames — stable across processes, output directories
    and repeated invocations (unlike the formatted traceback, which embeds
    absolute paths).
    """
    parts = [type(exc).__name__]
    for frame in traceback.extract_tb(exc.__traceback__):
        name = frame.filename.replace("\\", "/").rsplit("/", 1)[-1]
        parts.append(f"{name}:{frame.name}:{frame.lineno}")
    payload = "|".join(parts)
    return hashlib.sha256(payload.encode()).hexdigest()[:12]


def incident_payload(exc: BaseException) -> dict[str, Any]:
    """The JSON-stable error payload shared by incidents and quarantine."""
    return {
        "error": type(exc).__name__,
        "message": str(exc),
        "traceback_digest": traceback_digest(exc),
    }


class FaultInjector:
    """Counts seam invocations for one run and fires matching rules."""

    def __init__(self, plan: FaultPlan, run_key: str):
        self.plan = plan
        self.run_key = run_key
        self._counts: Counter[str] = Counter()

    def _bump(self, seam: str) -> int:
        self._counts[seam] += 1
        return self._counts[seam]

    def _matching(self, seam: str, occurrence: int):
        for rule in self.plan.rules:
            if rule.seam == seam and rule.matches(self.run_key, occurrence):
                return rule
        return None

    def check(self, seam: str) -> None:
        """Count one invocation of ``seam``; raise if a rule matches."""
        occurrence = self._bump(seam)
        rule = self._matching(seam, occurrence)
        if rule is None:
            return
        message = (
            f"injected fault: seam={seam} occurrence={occurrence} "
            f"plan={self.plan.name}"
        )
        if seam == "worker-crash":
            raise InjectedCrash(message, seam=seam, occurrence=occurrence)
        if seam == "worker-hang":
            raise InjectedHang(message, seam=seam, occurrence=occurrence)
        raise InjectedFault(message, seam=seam, occurrence=occurrence)

    def mangle(self, seam: str, text: str) -> str:
        """Count one invocation of ``seam``; corrupt ``text`` on a match.

        Corruption is a deterministic truncation to half length — the torn
        write a crashed ``write_text`` would leave behind.
        """
        occurrence = self._bump(seam)
        if self._matching(seam, occurrence) is None:
            return text
        return text[: max(1, len(text) // 2)]
