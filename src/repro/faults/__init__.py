"""Seeded, deterministic fault injection (the robustness harness).

``FaultPlan`` + ``FaultInjector`` describe and fire failures at named
seams across the stack; the sweep runner, run store and simulator expose
those seams and contain the damage (retries, quarantine, incidents).
"""

from repro.faults.injector import (
    FaultInjector,
    incident_payload,
    traceback_digest,
)
from repro.faults.plan import (
    FILE_PREFIX,
    NO_FAULTS,
    NO_FAULTS_NAME,
    PLAN_FORMAT_VERSION,
    SEAMS,
    FaultPlan,
    FaultRule,
    fault_plan_from_dict,
    fault_plan_to_dict,
    fault_rule_from_dict,
    fault_rule_to_dict,
    known_fault_plan_names,
    list_fault_plans,
    load_fault_plan,
    register_fault_plan,
    resolve_fault_plan,
    save_fault_plan,
)

__all__ = [
    "FILE_PREFIX",
    "NO_FAULTS",
    "NO_FAULTS_NAME",
    "PLAN_FORMAT_VERSION",
    "SEAMS",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "fault_plan_from_dict",
    "fault_plan_to_dict",
    "fault_rule_from_dict",
    "fault_rule_to_dict",
    "incident_payload",
    "known_fault_plan_names",
    "list_fault_plans",
    "load_fault_plan",
    "register_fault_plan",
    "resolve_fault_plan",
    "save_fault_plan",
    "traceback_digest",
]
