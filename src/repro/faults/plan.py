"""Deterministic fault plans: *what* fails, *where*, and *when*.

The robustness harness (DESIGN.md) treats failures as first-class inputs,
the way ``repro.cluster.dynamics`` treats capacity churn: a frozen,
serializable :class:`FaultPlan` lives behind a named registry and is
resolved by ``repro sweep --faults <name>`` (or ``file:<path>`` for a JSON
plan document).  A plan is a set of :class:`FaultRule` values, each naming

* a **seam** — one of the instrumented failure points in :data:`SEAMS`
  (worker crash/hang mid-run, torn or truncated run documents, an
  interrupted store publish, policy exceptions mid-round, perf-model fit
  failure, trace-build failure);
* a **run_key glob** — which runs of the sweep the rule applies to; and
* **occurrence indices** — the 1-based invocation counts of that seam at
  which the fault fires.  Counts accumulate across retry attempts of the
  same run, so a rule with ``times=(1,)`` fails the first attempt and lets
  the retry succeed, while ``times=(1, 2, 3, ...)`` poisons the run
  permanently.

Everything is deterministic by construction: no randomness, no clocks.
The same plan applied to the same sweep produces byte-identical quarantine
records and incident streams, and the empty plan (``none``) leaves every
output byte-identical to a sweep with no fault plumbing at all.

Fault plans are *execution-level* inputs: they are deliberately NOT part
of :class:`~repro.experiments.spec.RunSpec` identity, so a run key never
changes because chaos was enabled — a quarantined run re-runs cleanly
under an empty plan with the same key.
"""

from __future__ import annotations

import fnmatch
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import FaultPlanError

#: Instrumented failure points.  The strings are the serialization format
#: and the vocabulary of ``FaultInjector.check``/``mangle`` call sites.
SEAMS = (
    "worker-crash",    # sweep worker dies mid-run (before sim.run)
    "worker-hang",     # sweep worker hangs (classified like a timeout)
    "store-publish",   # crash between tmp write and os.replace
    "store-record",    # torn write: the run document is truncated
    "policy-round",    # policy raises mid-scheduling-round
    "perfmodel-fit",   # performance-model fitting fails
    "trace-build",     # trace adapter / workload construction fails
)

#: The plan name meaning "no faults" (always registered).
NO_FAULTS_NAME = "none"

#: Prefix of dynamically-resolved plan-file names.
FILE_PREFIX = "file:"

PLAN_FORMAT_VERSION = 1


@dataclass(frozen=True)
class FaultRule:
    """Fire a fault at a seam, for matching runs, at given occurrences.

    ``run_match`` is an ``fnmatch``-style glob over run keys (case
    sensitive); ``times`` are 1-based occurrence indices of the seam
    *within one run* (counted across retry attempts).
    """

    seam: str
    run_match: str = "*"
    times: tuple[int, ...] = (1,)
    detail: str = ""

    def __post_init__(self) -> None:
        if self.seam not in SEAMS:
            raise FaultPlanError(
                f"unknown fault seam {self.seam!r}; known: {SEAMS}"
            )
        times = tuple(sorted(set(int(t) for t in self.times)))
        if not times:
            raise FaultPlanError(
                f"fault rule for seam {self.seam!r} needs at least one "
                "occurrence index"
            )
        if times[0] < 1:
            raise FaultPlanError(
                f"fault occurrence indices are 1-based, got {times[0]}"
            )
        object.__setattr__(self, "times", times)

    def matches(self, run_key: str, occurrence: int) -> bool:
        return occurrence in self.times and fnmatch.fnmatchcase(
            run_key, self.run_match
        )

    def describe(self) -> str:
        times = ",".join(str(t) for t in self.times)
        out = f"{self.seam} @ {times} for {self.run_match!r}"
        if self.detail:
            out += f" ({self.detail})"
        return out


@dataclass(frozen=True)
class FaultPlan:
    """A named, frozen set of fault rules.

    The plan's :attr:`digest` is stable across processes and Python
    versions (sha256 over the canonical JSON form), so tests and CI can
    pin exactly which chaos ran.
    """

    name: str
    rules: tuple[FaultRule, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise FaultPlanError("fault plan needs a non-empty name")
        object.__setattr__(self, "rules", tuple(self.rules))

    @property
    def digest(self) -> str:
        payload = json.dumps(
            fault_plan_to_dict(self), sort_keys=True, allow_nan=False
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:8]

    def injector(self, run_key: str):
        """A per-run :class:`~repro.faults.injector.FaultInjector`.

        Returns ``None`` for the empty plan so zero-fault execution takes
        exactly the pre-harness code path (no seam bookkeeping at all).
        """
        if not self.rules:
            return None
        from repro.faults.injector import FaultInjector

        return FaultInjector(self, run_key)

    def describe(self) -> str:
        if not self.rules:
            return "no faults"
        return "; ".join(rule.describe() for rule in self.rules)


# ----------------------------------------------------------------------
# (De)serialization
# ----------------------------------------------------------------------
def fault_rule_to_dict(rule: FaultRule) -> dict[str, Any]:
    data: dict[str, Any] = {
        "seam": rule.seam,
        "run_match": rule.run_match,
        "times": list(rule.times),
    }
    if rule.detail:
        data["detail"] = rule.detail
    return data


def fault_rule_from_dict(data: dict[str, Any]) -> FaultRule:
    try:
        return FaultRule(
            seam=str(data["seam"]),
            run_match=str(data.get("run_match", "*")),
            times=tuple(int(t) for t in data.get("times", (1,))),
            detail=str(data.get("detail", "")),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise FaultPlanError(f"malformed fault rule {data!r}: {exc}")


def fault_plan_to_dict(plan: FaultPlan) -> dict[str, Any]:
    data: dict[str, Any] = {
        "name": plan.name,
        "rules": [fault_rule_to_dict(r) for r in plan.rules],
    }
    if plan.description:
        data["description"] = plan.description
    return data


def fault_plan_from_dict(data: dict[str, Any]) -> FaultPlan:
    try:
        return FaultPlan(
            name=str(data["name"]),
            rules=tuple(
                fault_rule_from_dict(r) for r in data.get("rules", ())
            ),
            description=str(data.get("description", "")),
        )
    except (KeyError, TypeError) as exc:
        raise FaultPlanError(f"malformed fault plan {data!r}: {exc}")


def load_fault_plan(path: str | Path) -> FaultPlan:
    """Load a ``file:<path>`` JSON fault-plan document."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise FaultPlanError(f"cannot read fault plan {path}: {exc}")
    version = data.get("format_version")
    if version != PLAN_FORMAT_VERSION:
        raise FaultPlanError(
            f"{path}: unsupported fault plan format version {version!r} "
            f"(expected {PLAN_FORMAT_VERSION})"
        )
    return fault_plan_from_dict(data)


def save_fault_plan(plan: FaultPlan, path: str | Path) -> None:
    doc = {"format_version": PLAN_FORMAT_VERSION}
    doc.update(fault_plan_to_dict(plan))
    Path(path).write_text(
        json.dumps(doc, sort_keys=True, indent=1, allow_nan=False) + "\n"
    )


# ----------------------------------------------------------------------
# Named-plan registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, FaultPlan] = {}


def register_fault_plan(plan: FaultPlan, *, replace: bool = False) -> FaultPlan:
    """Add a named fault plan (``replace=True`` to overwrite)."""
    if plan.name.startswith(FILE_PREFIX):
        raise FaultPlanError(
            f"{FILE_PREFIX}<path> names are resolved dynamically and "
            "cannot be registered"
        )
    if plan.name in _REGISTRY and not replace:
        raise FaultPlanError(
            f"fault plan {plan.name!r} already registered"
        )
    _REGISTRY[plan.name] = plan
    return plan


def known_fault_plan_names() -> tuple[str, ...]:
    return tuple(_REGISTRY)


def list_fault_plans() -> tuple[tuple[str, FaultPlan], ...]:
    return tuple(_REGISTRY.items())


def resolve_fault_plan(name: str) -> FaultPlan:
    """Look a plan up by name (``file:<path>`` resolves dynamically)."""
    if name.startswith(FILE_PREFIX):
        path = name[len(FILE_PREFIX):]
        if not path:
            raise FaultPlanError(
                f"fault-plan file needs a path: {FILE_PREFIX}<path>"
            )
        return load_fault_plan(path)
    plan = _REGISTRY.get(name)
    if plan is None:
        known = ", ".join(known_fault_plan_names())
        raise FaultPlanError(
            f"unknown fault plan {name!r}; known: {known}, "
            f"or {FILE_PREFIX}<path>"
        )
    return plan


#: Built-in plans.
NO_FAULTS = register_fault_plan(
    FaultPlan(name=NO_FAULTS_NAME, description="no faults (the default)")
)
register_fault_plan(
    FaultPlan(
        name="chaos-smoke",
        description=(
            "small deterministic chaos mix for CI: seed-0 runs crash once "
            "and recover on retry, seed-1 runs exercise torn publishes and "
            "truncated records, seed-2 runs poison their policy rounds and "
            "quarantine permanently"
        ),
        rules=(
            FaultRule(
                "worker-crash", run_match="*-s0-*", times=(1,),
                detail="transient: retry succeeds",
            ),
            FaultRule(
                "store-publish", run_match="rubick-n-*-s1-*", times=(1,),
                detail="tmp written, publish interrupted",
            ),
            FaultRule(
                "store-record", run_match="synergy-*-s1-*", times=(1,),
                detail="torn write: record truncated",
            ),
            FaultRule(
                "policy-round", run_match="*-s2-*", times=(1, 2, 3, 4, 5, 6),
                detail="poison: escalates past retry budget",
            ),
        ),
    )
)
