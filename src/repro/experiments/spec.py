"""Declarative sweep grids: frozen, individually-addressable run specs.

A :class:`SweepSpec` describes a grid of simulations — policies × workload
scenarios × trace variants × seeds × (cluster, load, model-mix) knobs — and
expands into a deterministic tuple of :class:`RunSpec`, one per simulation.
Every RunSpec is a frozen, JSON-round-trippable value object with a stable
``run_key``: the same spec always produces the same keys, across processes
and Python versions, so sweep results are individually addressable on disk
and a crashed sweep can resume by key.

The ``scenario`` axis names a registered workload composition
(``repro.workloads.registry``) or a ``replay:<path>`` adapter source.  The
default scenario is *omitted from the identity digest*, so every pre-axis
run key is unchanged — old sweep directories keep resuming.

Nothing here touches a simulator: specs are pure data.  Workers rebuild
``Simulator``/``SyntheticTestbed`` objects from the spec (see
``repro.experiments.runner``) — simulator state never crosses a process
boundary.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace
from typing import Any

from repro.cluster.dynamics import NO_DYNAMICS_NAME, resolve_dynamics
from repro.cluster.topology import ClusterSpec, NodeSpec
from repro.errors import ClusterDynamicsError, WorkloadError
from repro.scheduler.registry import POLICIES
from repro.sim.workload import WorkloadConfig, with_large_model_share
from repro.units import HOUR
from repro.workloads.registry import (
    DEFAULT_SCENARIO,
    resolve_scenario,
    scenario_workload_config,
)

#: Trace variants of the paper's evaluation (§7.3).
VARIANTS = ("base", "bp", "mt")

SPEC_FORMAT_VERSION = 1


@dataclass(frozen=True)
class RunSpec:
    """One fully-determined simulation: (policy, trace, seed, cluster).

    ``large_model_factor`` and ``load_factor`` default to the neutral 1.0,
    which means "leave the workload untouched" (applying a factor of 1.0
    would still rename the trace and therefore re-draw its arrival stream).
    """

    policy: str
    variant: str = "base"
    seed: int = 0
    num_jobs: int = 80
    span: float = 12 * HOUR
    nodes: int = 8
    gpus_per_node: int = 8
    #: Arrival-rate compression factor (Fig. 10): jobs arrive this much faster.
    load_factor: float = 1.0
    #: Sampling-weight factor for the large catalog models (Fig. 11).
    large_model_factor: float = 1.0
    plan_assignment: str = "random"
    trace_name: str = "base"
    #: When set, the trace is loaded from this JSON file instead of being
    #: generated (variant/load transforms still apply on top).
    trace_path: str | None = None
    #: Named workload composition (``repro.workloads.registry``) or
    #: ``replay:<path>``.  The default is digest-transparent: pre-axis run
    #: keys are unchanged.
    scenario: str = DEFAULT_SCENARIO
    #: Cluster-dynamics profile (``repro.cluster.dynamics``) or
    #: ``file:<path>``.  The empty default means "inherit the scenario's
    #: dynamics (none if it declares none)" and is digest-transparent, so
    #: pre-axis run keys are unchanged; an explicit ``"none"`` overrides a
    #: dynamic scenario back to a static cluster.
    dynamics: str = ""

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; known: {sorted(POLICIES)}"
            )
        if self.variant not in VARIANTS:
            raise ValueError(
                f"unknown trace variant {self.variant!r}; known: {VARIANTS}"
            )
        if self.load_factor <= 0:
            raise ValueError("load_factor must be positive")
        try:
            scenario = resolve_scenario(self.scenario)
        except WorkloadError as exc:
            raise ValueError(str(exc)) from None
        if self.dynamics:
            try:
                resolve_dynamics(self.dynamics)
            except ClusterDynamicsError as exc:
                raise ValueError(str(exc)) from None
        if (
            self.num_jobs <= 0
            and self.trace_path is None
            and not scenario.is_replay
        ):
            raise ValueError("num_jobs must be positive")

    # ------------------------------------------------------------------
    # Derived simulation inputs
    # ------------------------------------------------------------------
    @property
    def cluster(self) -> ClusterSpec:
        return ClusterSpec(
            num_nodes=self.nodes, node=NodeSpec(num_gpus=self.gpus_per_node)
        )

    def workload_config(self) -> WorkloadConfig:
        """The generator config this run's trace derives from.

        Raises :class:`~repro.errors.WorkloadError` for replay scenarios,
        which have no generator (the runner ingests their source instead).
        """
        config = scenario_workload_config(
            resolve_scenario(self.scenario),
            seed=self.seed,
            cluster=self.cluster,
            num_jobs=self.num_jobs,
            span=self.span,
            plan_assignment=self.plan_assignment,
            trace_name=self.trace_name,
        )
        if self.large_model_factor != 1.0:
            config = with_large_model_share(config, self.large_model_factor)
        return config

    @property
    def effective_dynamics(self) -> str:
        """The cluster-dynamics profile this run executes under.

        The empty default inherits the scenario's dynamics (``"none"``
        when the scenario declares none); an explicit name — including
        ``"none"`` itself — overrides the scenario.
        """
        if self.dynamics:
            return self.dynamics
        scenario = resolve_scenario(self.scenario)
        return scenario.dynamics or NO_DYNAMICS_NAME

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        data = asdict(self)
        if not data["dynamics"]:
            # Sparse default: persisted pre-axis run documents stay byte-
            # identical (`from_dict` defaults the missing field back).
            del data["dynamics"]
        return data

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "RunSpec":
        return RunSpec(**data)

    def _digest(self, *, include_policy: bool) -> str:
        payload = self.to_dict()
        if not include_policy:
            payload.pop("policy")
        # Digest-transparent defaults: keys minted before the scenario and
        # dynamics axes existed stay valid (old sweep directories keep
        # resuming).
        if payload.get("scenario") == DEFAULT_SCENARIO:
            payload.pop("scenario")
        if not payload.get("dynamics"):
            payload.pop("dynamics", None)
        canonical = json.dumps(payload, sort_keys=True, allow_nan=False)
        return hashlib.sha256(canonical.encode()).hexdigest()[:8]

    @property
    def run_key(self) -> str:
        """Stable, filesystem-safe identity of this run.

        Human-readable prefix (policy, variant, seed) plus a digest over
        *all* fields, so any knob change produces a fresh key.
        """
        return (
            f"{self.policy}-{self.variant}-s{self.seed}"
            f"-{self._digest(include_policy=True)}"
        )

    @property
    def trace_fingerprint(self) -> str:
        """Identity of the trace alone (everything except the policy).

        Runs sharing a fingerprint replay the exact same trace; the runner
        memoizes trace construction on it.
        """
        return self._digest(include_policy=False)

    @property
    def cell_key(self) -> tuple:
        """Aggregation cell: everything except the seed."""
        no_seed = replace(self, seed=0)
        return (self.policy, no_seed.trace_fingerprint)

    @property
    def trace_label(self) -> str:
        """Short human label of the trace cell (for report tables)."""
        if self.trace_path is not None:
            label = self.trace_path
        elif self.scenario != DEFAULT_SCENARIO:
            label = self.scenario
        else:
            label = self.trace_name
        if self.variant != "base":
            label += f"/{self.variant}"
        if self.load_factor != 1.0:
            label += f"@x{self.load_factor:g}"
        if self.large_model_factor != 1.0:
            label += f" lm*{self.large_model_factor:g}"
        if self.dynamics:
            # Only explicit overrides are labeled; a scenario's own
            # dynamics is already named by the scenario itself.
            label += f" ~{self.dynamics}"
        return label


@dataclass(frozen=True)
class SweepSpec:
    """A declarative grid of runs (the unit `repro sweep` executes).

    Expansion order is the documented nesting — scenario, dynamics,
    variant, load factor, large-model factor, seed, policy — and is
    deterministic: the same spec always yields the same runs in the same
    order.
    """

    policies: tuple[str, ...]
    seeds: tuple[int, ...] = (0,)
    variants: tuple[str, ...] = ("base",)
    scenarios: tuple[str, ...] = (DEFAULT_SCENARIO,)
    #: Cluster-dynamics axis; the empty default inherits each scenario's
    #: own dynamics (see :attr:`RunSpec.dynamics`).
    dynamics: tuple[str, ...] = ("",)
    num_jobs: int = 80
    span: float = 12 * HOUR
    nodes: int = 8
    gpus_per_node: int = 8
    load_factors: tuple[float, ...] = (1.0,)
    large_model_factors: tuple[float, ...] = (1.0,)
    plan_assignment: str = "random"
    trace_name: str = "base"

    def __post_init__(self) -> None:
        # Accept lists for convenience; store canonical tuples.
        for name in (
            "policies", "seeds", "variants", "scenarios", "dynamics",
            "load_factors", "large_model_factors",
        ):
            object.__setattr__(self, name, tuple(getattr(self, name)))
        for group, values in (
            ("policies", self.policies),
            ("seeds", self.seeds),
            ("variants", self.variants),
            ("scenarios", self.scenarios),
            ("dynamics", self.dynamics),
            ("load_factors", self.load_factors),
            ("large_model_factors", self.large_model_factors),
        ):
            if not values:
                # An empty axis would silently expand to a 0-run sweep.
                raise ValueError(f"{group} must have at least one entry")
            if len(set(values)) != len(values):
                raise ValueError(f"duplicate entries in {group}: {values}")

    def expand(self) -> tuple[RunSpec, ...]:
        """The full grid as individually-addressable runs."""
        runs = []
        for scenario in self.scenarios:
            for dyn in self.dynamics:
                for variant in self.variants:
                    for load in self.load_factors:
                        for lm_factor in self.large_model_factors:
                            for seed in self.seeds:
                                for policy in self.policies:
                                    runs.append(
                                        RunSpec(
                                            policy=policy,
                                            variant=variant,
                                            seed=seed,
                                            num_jobs=self.num_jobs,
                                            span=self.span,
                                            nodes=self.nodes,
                                            gpus_per_node=self.gpus_per_node,
                                            load_factor=load,
                                            large_model_factor=lm_factor,
                                            plan_assignment=self.plan_assignment,
                                            trace_name=self.trace_name,
                                            scenario=scenario,
                                            dynamics=dyn,
                                        )
                                    )
        return tuple(runs)

    def to_dict(self) -> dict[str, Any]:
        data = asdict(self)
        if data["dynamics"] == ("",):
            # Sparse default, mirroring RunSpec.to_dict.
            del data["dynamics"]
        data["format_version"] = SPEC_FORMAT_VERSION
        return data

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "SweepSpec":
        data = dict(data)
        data.pop("format_version", None)
        for name in (
            "policies", "seeds", "variants", "scenarios", "dynamics",
            "load_factors", "large_model_factors",
        ):
            if name in data:
                data[name] = tuple(data[name])
        return SweepSpec(**data)
