"""Declarative, process-parallel experiment sweeps.

The substrate every multi-run study (Table 4, Fig. 10/11 and their
descendants) runs on: frozen :class:`SweepSpec`/:class:`RunSpec` grids,
a spawn-safe multiprocessing executor with crash-safe per-run persistence
and resume, and seed-aggregated paper-style reporting.
"""

from repro.experiments.aggregate import (
    CellStats,
    SeedStats,
    aggregate,
    format_failure_table,
    format_sweep_table,
)
from repro.experiments.runner import (
    RunExecution,
    SweepOutcome,
    build_trace,
    default_tenants,
    execute_run,
    run_cluster_events,
    run_sweep,
    simulator_for_run,
)
from repro.experiments.spec import VARIANTS, RunSpec, SweepSpec
from repro.experiments.store import RunStore

__all__ = [
    "CellStats",
    "RunExecution",
    "RunSpec",
    "RunStore",
    "SeedStats",
    "SweepOutcome",
    "SweepSpec",
    "VARIANTS",
    "aggregate",
    "build_trace",
    "default_tenants",
    "execute_run",
    "format_failure_table",
    "format_sweep_table",
    "run_cluster_events",
    "run_sweep",
    "simulator_for_run",
]
