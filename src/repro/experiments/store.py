"""Crash-safe, per-run JSONL persistence for sweeps.

Layout under the sweep output directory::

    out/
      sweep-spec.json     # the SweepSpec that launched the sweep (if any)
      sweep-meta.jsonl    # one line per invocation: wall-clock accounting
      runs/
        <run_key>.jsonl   # one line per completed run: {run, result}

Each run file is written atomically (temp file + ``os.replace``), so a
killed sweep never leaves a half-written result and ``--resume`` can trust
whatever is on disk.  Run files contain only deterministic simulation
output — wall-clock timings live in ``sweep-meta.jsonl`` — so a parallel
sweep's ``runs/`` directory is byte-identical to a serial one.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro.experiments.spec import RunSpec, SweepSpec
from repro.sim.metrics import SimulationResult
from repro.sim.serialization import result_from_dict, result_to_dict

RUN_FORMAT_VERSION = 1


class RunStore:
    """Reads and writes one sweep output directory."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.runs_dir = self.root / "runs"
        self.runs_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Run records
    # ------------------------------------------------------------------
    def path_for(self, run_key: str) -> Path:
        return self.runs_dir / f"{run_key}.jsonl"

    def completed_keys(self) -> set[str]:
        return {p.stem for p in sorted(self.runs_dir.glob("*.jsonl"))}

    def save(self, run: RunSpec, result: SimulationResult) -> Path:
        record = {
            "format_version": RUN_FORMAT_VERSION,
            "run_key": run.run_key,
            "run": run.to_dict(),
            "result": result_to_dict(result),
        }
        path = self.path_for(run.run_key)
        # Atomic publish: concurrent workers each write a private temp file.
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(
            json.dumps(record, sort_keys=True, allow_nan=False) + "\n"
        )
        os.replace(tmp, path)
        return path

    def load_record(self, run_key: str) -> dict[str, Any]:
        line = self.path_for(run_key).read_text()
        record = json.loads(line)
        version = record.get("format_version")
        if version != RUN_FORMAT_VERSION:
            raise ValueError(
                f"unsupported run record version {version!r} "
                f"(expected {RUN_FORMAT_VERSION})"
            )
        return record

    def load(self, run_key: str) -> tuple[RunSpec, SimulationResult]:
        record = self.load_record(run_key)
        return (
            RunSpec.from_dict(record["run"]),
            result_from_dict(record["result"]),
        )

    def load_result(self, run_key: str) -> SimulationResult:
        return self.load(run_key)[1]

    def load_all(self) -> list[tuple[RunSpec, SimulationResult]]:
        return [self.load(key) for key in sorted(self.completed_keys())]

    # ------------------------------------------------------------------
    # Sweep-level metadata
    # ------------------------------------------------------------------
    def write_spec(self, spec: SweepSpec) -> None:
        (self.root / "sweep-spec.json").write_text(
            json.dumps(
                spec.to_dict(), sort_keys=True, indent=1, allow_nan=False
            )
        )

    def append_meta(self, entry: dict[str, Any]) -> None:
        """Append one wall-clock accounting line (kept out of ``runs/``)."""
        with (self.root / "sweep-meta.jsonl").open("a") as fh:
            fh.write(
                json.dumps(entry, sort_keys=True, allow_nan=False) + "\n"
            )
