"""Crash-safe, per-run JSONL persistence for sweeps.

Layout under the sweep output directory::

    out/
      sweep-spec.json     # the SweepSpec that launched the sweep (if any)
      sweep-meta.jsonl    # one line per invocation: wall-clock accounting
      runs/
        <run_key>.jsonl   # one line per completed run: {run, result}
        <run_key>.jsonl.corrupt  # quarantined unreadable record (sidecar)
      failures/
        <run_key>.json    # quarantine record of a run that exhausted retries
      leases/
        <run_key>.lease   # exactly-once dispatch marker ({"pid": ...})

Each run file is written atomically (temp file + ``os.replace``), so a
killed sweep never leaves a half-written result.  ``--resume`` does NOT
trust whatever is on disk: every present record is re-verified loadable,
and an unreadable one (truncated line, bad JSON, version drift) is moved
to a ``.corrupt`` sidecar and re-run instead of crashing the sweep.

Run files contain only deterministic simulation output — wall-clock
timings live in ``sweep-meta.jsonl`` — so a parallel sweep's ``runs/``
directory is byte-identical to a serial one.  Quarantine records under
``failures/`` hold the same contract: no timestamps, pids or absolute
paths, so a chaos sweep repeated with the same plan + seeds is
byte-identical too.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro.errors import CorruptRunRecordError
from repro.experiments.spec import RunSpec, SweepSpec
from repro.sim.metrics import SimulationResult
from repro.sim.serialization import result_from_dict, result_to_dict

RUN_FORMAT_VERSION = 1

FAILURE_FORMAT_VERSION = 1


def build_failure_doc(
    run: RunSpec, attempts: list[dict[str, Any]]
) -> dict[str, Any]:
    """The quarantine record of a run that exhausted its retries.

    ``attempts`` is the deterministic attempt history (attempt index +
    error payload per try); the document carries no wall-clock or process
    identity, so repeated chaos sweeps produce byte-identical quarantine
    records.
    """
    return {
        "format_version": FAILURE_FORMAT_VERSION,
        "run_key": run.run_key,
        "run": run.to_dict(),
        "attempts": attempts,
        "error": attempts[-1]["error"] if attempts else "",
        "message": attempts[-1]["message"] if attempts else "",
    }


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


class RunStore:
    """Reads and writes one sweep output directory."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.runs_dir = self.root / "runs"
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        self.failures_dir = self.root / "failures"
        self.leases_dir = self.root / "leases"

    # ------------------------------------------------------------------
    # Run records
    # ------------------------------------------------------------------
    def path_for(self, run_key: str) -> Path:
        return self.runs_dir / f"{run_key}.jsonl"

    def completed_keys(self) -> set[str]:
        return {p.stem for p in sorted(self.runs_dir.glob("*.jsonl"))}

    def save(
        self, run: RunSpec, result: SimulationResult, *, injector=None
    ) -> Path:
        record = {
            "format_version": RUN_FORMAT_VERSION,
            "run_key": run.run_key,
            "run": run.to_dict(),
            "result": result_to_dict(result),
        }
        text = json.dumps(record, sort_keys=True, allow_nan=False) + "\n"
        if injector is not None:
            # Torn-write seam: a matching rule truncates the document,
            # modelling a worker dying mid-write_text.
            text = injector.mangle("store-record", text)
        path = self.path_for(run.run_key)
        # Atomic publish: concurrent workers each write a private temp file.
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(text)
        if injector is not None:
            # Publish seam: a matching rule dies here, leaving tmp litter
            # behind for the stale-tmp GC to collect.
            injector.check("store-publish")
        os.replace(tmp, path)
        return path

    def load_record(self, run_key: str) -> dict[str, Any]:
        """Load and verify one run record.

        Raises :class:`CorruptRunRecordError` (never a raw decode error)
        on a truncated line, invalid JSON, a non-object document, or
        format-version drift; :class:`FileNotFoundError` passes through so
        "missing" stays distinguishable from "corrupt".
        """
        try:
            line = self.path_for(run_key).read_text()
        except FileNotFoundError:
            raise
        except (OSError, UnicodeDecodeError) as exc:
            raise CorruptRunRecordError(
                f"run record {run_key} is unreadable: {exc}",
                run_key=run_key,
            )
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise CorruptRunRecordError(
                f"run record {run_key} is not valid JSON "
                f"(truncated write?): {exc.msg} at char {exc.pos}",
                run_key=run_key,
            )
        if not isinstance(record, dict):
            raise CorruptRunRecordError(
                f"run record {run_key} is not a JSON object",
                run_key=run_key,
            )
        version = record.get("format_version")
        if version != RUN_FORMAT_VERSION:
            raise CorruptRunRecordError(
                f"run record {run_key} has unsupported version {version!r} "
                f"(expected {RUN_FORMAT_VERSION})",
                run_key=run_key,
            )
        return record

    def load(self, run_key: str) -> tuple[RunSpec, SimulationResult]:
        record = self.load_record(run_key)
        return (
            RunSpec.from_dict(record["run"]),
            result_from_dict(record["result"]),
        )

    def load_result(self, run_key: str) -> SimulationResult:
        return self.load(run_key)[1]

    def load_all(self) -> list[tuple[RunSpec, SimulationResult]]:
        return [self.load(key) for key in sorted(self.completed_keys())]

    def quarantine_record(self, run_key: str) -> Path | None:
        """Move an unreadable run record to a ``.corrupt`` sidecar.

        Returns the sidecar path, or ``None`` when no record exists.  The
        sidecar preserves the torn bytes for post-mortem while freeing the
        run key for re-execution.
        """
        path = self.path_for(run_key)
        if not path.exists():
            return None
        sidecar = path.with_name(path.name + ".corrupt")
        os.replace(path, sidecar)
        return sidecar

    def gc_stale_tmp(self) -> tuple[str, ...]:
        """Remove orphaned atomic-publish temp files.

        A worker dying between ``tmp.write_text`` and ``os.replace``
        leaves ``.{name}.{pid}.tmp`` litter behind forever.  Collect any
        temp file whose owning pid is gone (or is this process — a retry
        reuses the same temp path anyway); leave live foreign workers'
        in-flight files alone.
        """
        removed = []
        for tmp in sorted(self.runs_dir.glob(".*.tmp")):
            parts = tmp.name.rsplit(".", 2)  # ['.<name>', '<pid>', 'tmp']
            pid = None
            if len(parts) == 3 and parts[1].isdigit():
                pid = int(parts[1])
            if pid is not None and pid != os.getpid() and _pid_alive(pid):
                continue
            try:
                tmp.unlink()
            except FileNotFoundError:
                continue
            removed.append(tmp.name)
        return tuple(removed)

    # ------------------------------------------------------------------
    # Quarantined failed runs
    # ------------------------------------------------------------------
    def failure_path_for(self, run_key: str) -> Path:
        return self.failures_dir / f"{run_key}.json"

    def failed_keys(self) -> set[str]:
        if not self.failures_dir.is_dir():
            return set()
        return {p.stem for p in sorted(self.failures_dir.glob("*.json"))}

    def save_failure(
        self, run: RunSpec, attempts: list[dict[str, Any]]
    ) -> dict[str, Any]:
        """Persist a quarantine record for a run that exhausted retries."""
        doc = build_failure_doc(run, attempts)
        self.failures_dir.mkdir(parents=True, exist_ok=True)
        path = self.failure_path_for(run.run_key)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(
            json.dumps(doc, sort_keys=True, allow_nan=False) + "\n"
        )
        os.replace(tmp, path)
        return doc

    def load_failure(self, run_key: str) -> dict[str, Any]:
        return json.loads(self.failure_path_for(run_key).read_text())

    def clear_failure(self, run_key: str) -> None:
        """Drop a stale quarantine record (the run later succeeded)."""
        try:
            self.failure_path_for(run_key).unlink()
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------
    # Run-key leases (exactly-once dispatch)
    # ------------------------------------------------------------------
    def lease_path_for(self, run_key: str) -> Path:
        return self.leases_dir / f"{run_key}.lease"

    def acquire_lease(self, run_key: str) -> bool:
        """Claim a run key for this process.

        Returns ``True`` when this process now holds the lease.  A lease
        held by a dead process (a crashed worker) is stolen; one held by a
        live other process is respected, so a re-dispatched run executes
        exactly once.
        """
        self.leases_dir.mkdir(parents=True, exist_ok=True)
        path = self.lease_path_for(run_key)
        payload = json.dumps({"pid": os.getpid()}, allow_nan=False)  # repro-lint: disable=RPL008 -- lease files are transient ownership markers, deleted on release and never part of a result document
        try:
            with open(path, "x") as fh:
                fh.write(payload)
            return True
        except FileExistsError:
            pass
        try:
            owner = json.loads(path.read_text()).get("pid")
        except (OSError, json.JSONDecodeError, AttributeError):
            owner = None
        if owner == os.getpid():
            return True
        if owner is None or not _pid_alive(int(owner)):
            # Steal a dead worker's lease.
            path.write_text(payload)
            return True
        return False

    def release_lease(self, run_key: str) -> None:
        try:
            self.lease_path_for(run_key).unlink()
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------
    # Sweep-level metadata
    # ------------------------------------------------------------------
    def write_spec(self, spec: SweepSpec) -> None:
        (self.root / "sweep-spec.json").write_text(
            json.dumps(
                spec.to_dict(), sort_keys=True, indent=1, allow_nan=False
            )
        )

    def append_meta(self, entry: dict[str, Any]) -> None:
        """Append one wall-clock accounting line (kept out of ``runs/``)."""
        with (self.root / "sweep-meta.jsonl").open("a") as fh:
            fh.write(
                json.dumps(entry, sort_keys=True, allow_nan=False) + "\n"
            )
