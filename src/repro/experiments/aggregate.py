"""Aggregation of sweep results into paper-style cells.

A *cell* is one (policy, trace) combination; its statistics are computed
across all seeds the sweep ran.  Rendering goes through the same
``analysis.report`` helpers as the Table-4 benchmarks, so sweep reports
read like the paper's tables with a min–max seed spread added.  Sweeps
spanning several workload scenarios render with a leading ``scenario``
column and a rule between scenario groups; single-scenario sweeps keep the
classic table shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table, perf_footer, span_cell
from repro.experiments.spec import RunSpec
from repro.sim.metrics import SimulationResult
from repro.workloads.registry import DEFAULT_SCENARIO


@dataclass(frozen=True)
class SeedStats:
    """Mean and min/max of one metric across seeds."""

    mean: float
    lo: float
    hi: float

    @staticmethod
    def of(values: list[float]) -> "SeedStats":
        if not values:
            return SeedStats(0.0, 0.0, 0.0)
        return SeedStats(
            mean=sum(values) / len(values), lo=min(values), hi=max(values)
        )


#: Neutral default for cells without dynamics statistics.
_ZERO_STATS = SeedStats(0.0, 0.0, 0.0)


@dataclass(frozen=True)
class CellStats:
    """Seed-aggregated metrics of one (policy, trace) cell."""

    policy: str
    trace_label: str
    seeds: tuple[int, ...]
    avg_jct_h: SeedStats
    p99_jct_h: SeedStats
    makespan_h: SeedStats
    sla_violations: SeedStats
    reconfig_gpu_frac: SeedStats
    scenario: str = DEFAULT_SCENARIO
    #: Cluster-dynamics statistics (all zero on static cells).  ``dynamic``
    #: marks that at least one seed actually applied cluster events — the
    #: sweep table only grows its dynamics columns then, so static sweeps
    #: render exactly as before the subsystem existed.
    dynamic: bool = False
    evictions: SeedStats = _ZERO_STATS
    goodput_gpu_h: SeedStats = _ZERO_STATS
    lost_gpu_h: SeedStats = _ZERO_STATS


def aggregate(
    pairs: list[tuple[RunSpec, SimulationResult]]
) -> list[CellStats]:
    """Group (run, result) pairs into cells, first-seen order preserved."""
    grouped: dict[tuple, list[tuple[RunSpec, SimulationResult]]] = {}
    for run, result in pairs:
        grouped.setdefault(run.cell_key, []).append((run, result))
    cells = []
    for members in grouped.values():
        runs = [run for run, _ in members]
        results = [result for _, result in members]
        cells.append(
            CellStats(
                policy=runs[0].policy,
                trace_label=runs[0].trace_label,
                seeds=tuple(run.seed for run in runs),
                avg_jct_h=SeedStats.of([r.avg_jct_hours() for r in results]),
                p99_jct_h=SeedStats.of([r.p99_jct_hours() for r in results]),
                makespan_h=SeedStats.of([r.makespan_hours for r in results]),
                sla_violations=SeedStats.of(
                    [float(len(r.sla_violations())) for r in results]
                ),
                reconfig_gpu_frac=SeedStats.of(
                    [r.reconfig_gpu_hour_fraction for r in results]
                ),
                scenario=runs[0].scenario,
                dynamic=any(r.cluster_events > 0 for r in results),
                evictions=SeedStats.of(
                    [float(r.evictions) for r in results]
                ),
                goodput_gpu_h=SeedStats.of(
                    [r.goodput_gpu_hours for r in results]
                ),
                lost_gpu_h=SeedStats.of(
                    [r.lost_gpu_hours for r in results]
                ),
            )
        )
    return cells


def format_sweep_table(
    cells: list[CellStats],
    *,
    title: str | None = None,
    perf: list[dict] | tuple[dict, ...] | None = None,
) -> str:
    """Render cells as a Table-4-style comparison with seed spreads.

    ``perf`` — the sweep's per-executed-run timing rows
    (``SweepOutcome.perf.values()``); when given, a one-line footer surfaces
    scheduler wall time per invocation and simulator events/s alongside the
    JCT columns.

    Multi-scenario sweeps get a leading ``scenario`` column and a rule
    between scenario groups; single-scenario sweeps render exactly as
    before the scenario axis existed.  Sweeps with at least one dynamic
    cell (cluster events applied) grow goodput/lost/eviction columns;
    fully static sweeps keep the classic shape byte for byte.
    """
    scenarios = {cell.scenario for cell in cells}
    grouped = len(scenarios) > 1
    dynamic = any(cell.dynamic for cell in cells)
    rows = []
    rules = set()
    previous = None
    for cell in cells:
        if grouped and previous is not None and cell.scenario != previous:
            rules.add(len(rows))
        previous = cell.scenario
        # In grouped mode the scenario column already names the trace;
        # repeat only the decorations (variant/load/mix suffixes).
        label = cell.trace_label
        if grouped and label == cell.scenario:
            label = "-"
        elif grouped and label.startswith(cell.scenario):
            label = label[len(cell.scenario):].lstrip("/@ ")
        row = (
            label,
            cell.policy,
            len(cell.seeds),
            span_cell(cell.avg_jct_h.mean, cell.avg_jct_h.lo,
                      cell.avg_jct_h.hi),
            span_cell(cell.p99_jct_h.mean, cell.p99_jct_h.lo,
                      cell.p99_jct_h.hi),
            span_cell(cell.makespan_h.mean, cell.makespan_h.lo,
                      cell.makespan_h.hi, fmt="{:.1f}"),
            span_cell(cell.sla_violations.mean, cell.sla_violations.lo,
                      cell.sla_violations.hi, fmt="{:.0f}"),
            span_cell(100 * cell.reconfig_gpu_frac.mean,
                      100 * cell.reconfig_gpu_frac.lo,
                      100 * cell.reconfig_gpu_frac.hi),
        )
        if dynamic:
            row = (
                *row,
                span_cell(cell.goodput_gpu_h.mean, cell.goodput_gpu_h.lo,
                          cell.goodput_gpu_h.hi, fmt="{:.1f}"),
                span_cell(cell.lost_gpu_h.mean, cell.lost_gpu_h.lo,
                          cell.lost_gpu_h.hi),
                span_cell(cell.evictions.mean, cell.evictions.lo,
                          cell.evictions.hi, fmt="{:.0f}"),
            )
        rows.append((cell.scenario, *row) if grouped else row)
    headers = ["trace", "scheduler", "seeds", "avg JCT h", "p99 JCT h",
               "makespan h", "SLA viol", "reconfig GPU %"]
    if dynamic:
        headers = [*headers, "goodput GPU-h", "lost GPU-h", "evictions"]
    if grouped:
        headers = ["scenario", *headers]
    table = format_table(headers, rows, title=title, rule_before=rules)
    if perf is not None:
        table = f"{table}\n{perf_footer(perf)}"
    return table


def format_failure_table(failures: dict[str, dict]) -> str:
    """Render a sweep's quarantined runs (``SweepOutcome.failures``).

    One row per poisoned run: its key, how many attempts were burned, and
    the final attempt's error class and message — enough to decide between
    re-running and digging into the ``failures/<run_key>.json`` record.
    """
    rows = []
    for key in sorted(failures):
        doc = failures[key]
        message = doc.get("message", "")
        if len(message) > 60:
            message = message[:57] + "..."
        rows.append(
            (
                key,
                len(doc.get("attempts", ())),
                doc.get("error", ""),
                message,
            )
        )
    return format_table(
        ["run", "attempts", "error", "message"],
        rows,
        title="quarantined runs",
    )
