"""Process-parallel sweep execution.

The executor fans :class:`RunSpec` grids out across worker processes with a
``spawn`` multiprocessing context.  Spawn-safety is by construction: only
the frozen RunSpec crosses the process boundary — each worker rebuilds its
own ``SyntheticTestbed``/``Simulator`` from the spec and writes its result
straight to the :class:`RunStore`, so nothing stateful is ever pickled.

Determinism: a run's result depends only on its RunSpec (trace generation,
the testbed, and the simulator are all seeded from it), so a ``--workers N``
sweep produces byte-identical run files to a serial one — enforced by
``tests/test_experiments.py``.

Robustness: each run executes under a guard (``_guarded_run``) that adds a
per-run wall-clock timeout, bounded deterministic retries with a recorded
attempt history, and poison-run quarantine — a run that exhausts its
retries becomes a persisted failure record under ``failures/`` instead of
aborting the sweep.  Run-key leases make a re-dispatched run exactly-once,
and stale atomic-publish temp files are collected at sweep start/end.
Fault plans (``repro.faults``) thread a per-run injector through every
layer; the empty plan takes the pre-harness code path bit for bit.
"""

from __future__ import annotations

import multiprocessing as mp
import signal
import threading
import time
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field, replace

from repro.cluster.dynamics import resolve_dynamics
from repro.errors import CorruptRunRecordError, RunTimeoutError
from repro.experiments.spec import RunSpec, SweepSpec
from repro.experiments.store import RunStore, build_failure_doc
from repro.faults import FaultPlan, incident_payload
from repro.oracle.testbed import SyntheticTestbed
from repro.scheduler.interfaces import SchedulerPolicy, Tenant
from repro.scheduler.registry import make_policy
from repro.sim.engine import EngineConfig, Simulator
from repro.sim.metrics import SimulationResult
from repro.sim.serialization import (
    incident_to_dict,
    load_trace,
    result_from_dict,
    result_to_dict,
)
from repro.sim.trace import Trace
from repro.sim.workload import (
    generate_trace,
    to_best_plan_trace,
    to_multi_tenant_trace,
)
from repro.workloads.registry import resolve_scenario, scenario_trace

#: Per-process memo of *unscaled* traces: runs differing only in policy or
#: load factor share one (moderately expensive) trace construction; the
#: cheap ``scaled_load`` view is applied per run.
_TRACE_CACHE: dict[str, Trace] = {}


def _base_run(run: RunSpec) -> RunSpec:
    """The unscaled run whose trace this run derives from.

    ``dynamics`` is normalized away like ``load_factor``: traces are
    byte-identical across dynamics profiles by design (events never touch
    the generator), so a ``--dynamics none,flaky`` sweep shares one trace
    construction per (scenario, variant, seed) group.
    """
    if run.load_factor == 1.0 and not run.dynamics:
        return run
    return replace(run, load_factor=1.0, dynamics="")


def _trace_memo_key(run: RunSpec) -> str:
    """Memo key of the unscaled trace a run derives from."""
    return _base_run(run).trace_fingerprint


def build_trace(run: RunSpec) -> Trace:
    """Construct (or load) the trace a run replays, deterministically.

    Resolution order: an explicit ``trace_path`` wins; a replay scenario
    ingests its external source through the adapters; otherwise the
    scenario's generator config is expanded (with the scenario's own
    tenant split applied at build time).  Variant and load transforms
    apply on top in every case.
    """
    base_run = _base_run(run)
    key = base_run.trace_fingerprint
    trace = _TRACE_CACHE.get(key)
    if trace is None:
        scenario = resolve_scenario(base_run.scenario)
        if base_run.trace_path is not None:
            trace = load_trace(base_run.trace_path)
        elif scenario.is_replay:
            trace = scenario_trace(
                scenario,
                seed=base_run.seed,
                cluster=base_run.cluster,
                plan_assignment=base_run.plan_assignment,
            )
        else:
            testbed = SyntheticTestbed(base_run.cluster, seed=base_run.seed)
            trace = generate_trace(base_run.workload_config(), testbed)
            # The scenario's own tenant split applies once: when the run
            # *also* asks for the mt variant, the variant's split below
            # honors the scenario's fraction instead of re-splitting.
            if (
                scenario.guaranteed_fraction is not None
                and base_run.variant != "mt"
            ):
                trace = to_multi_tenant_trace(
                    trace,
                    seed=base_run.seed,
                    guaranteed_fraction=scenario.guaranteed_fraction,
                    name=trace.name,
                )
        if base_run.variant == "bp":
            testbed = SyntheticTestbed(base_run.cluster, seed=base_run.seed)
            trace = to_best_plan_trace(trace, testbed, name="bp")
        elif base_run.variant == "mt":
            fraction = scenario.guaranteed_fraction
            trace = to_multi_tenant_trace(
                trace,
                seed=base_run.seed,
                guaranteed_fraction=0.5 if fraction is None else fraction,
                name="mt",
            )
        _TRACE_CACHE[key] = trace
    if run.load_factor != 1.0:
        trace = trace.scaled_load(run.load_factor)
    return trace


def run_cluster_events(run: RunSpec):
    """Expand a run's effective dynamics profile into its event stream.

    The stream is a pure function of (profile, seed, window, cluster) —
    *not* of the realized trace — so every policy in a sweep cell faces
    the identical failure history.  The window is the scenario's span
    override when it has one (``diurnal-3d`` is three days regardless of
    the sweep default), else the run's span.
    """
    dynamics = resolve_dynamics(run.effective_dynamics)
    scenario = resolve_scenario(run.scenario)
    span = scenario.span if scenario.span is not None else run.span
    return dynamics.events(seed=run.seed, span=span, cluster=run.cluster)


def default_tenants(run: RunSpec) -> dict[str, Tenant] | None:
    """Tenant setup implied by the trace variant or scenario split.

    The MT variant (and any scenario with a ``guaranteed_fraction``)
    reproduces the paper's two-tenant experiment: tenant-a holds the
    whole-cluster guaranteed quota, tenant-b runs best-effort.
    """
    scenario = resolve_scenario(run.scenario)
    if run.variant != "mt" and scenario.guaranteed_fraction is None:
        return None
    return {
        "tenant-a": Tenant(name="tenant-a", gpu_quota=run.cluster.total_gpus),
        "tenant-b": Tenant(name="tenant-b", gpu_quota=0),
    }


@dataclass
class RunExecution:
    """An in-process run with its live objects (for CLI stats printing)."""

    run: RunSpec
    result: SimulationResult
    policy: SchedulerPolicy
    sim: Simulator
    trace: Trace
    wall_seconds: float


def simulator_for_run(run: RunSpec, *, injector=None) -> Simulator:
    """The exact engine a batch execution of this spec builds.

    The scheduling service (``repro serve``) constructs its session
    through this same function, which is what makes a streamed replay of
    a run spec byte-identical to ``execute_run`` of the same spec.
    """
    cluster = run.cluster
    return Simulator(
        cluster,
        make_policy(run.policy),
        testbed=SyntheticTestbed(cluster, seed=run.seed),
        config=EngineConfig(seed=run.seed),
        injector=injector,
    )


def execute_run(run: RunSpec, *, injector=None) -> RunExecution:
    """Build everything from the spec and replay the trace once.

    ``injector`` (a per-run :class:`~repro.faults.FaultInjector`) arms the
    worker-level seams: ``worker-hang``/``worker-crash`` model a sweep
    worker dying or stalling mid-run, ``trace-build`` a trace-adapter
    failure.  ``None`` (the default) is the zero-fault fast path.
    """
    start = time.perf_counter()  # repro-lint: disable=RPL001 -- wall-clock perf channel, never persisted (DESIGN.md 28)
    if injector is not None:
        injector.check("worker-hang")
        injector.check("trace-build")
    trace = build_trace(run)
    sim = simulator_for_run(run, injector=injector)
    policy = sim.policy
    if injector is not None:
        injector.check("worker-crash")
    result = sim.run(
        trace,
        tenants=default_tenants(run),
        cluster_events=run_cluster_events(run),
    )
    return RunExecution(
        run=run,
        result=result,
        policy=policy,
        sim=sim,
        trace=trace,
        wall_seconds=time.perf_counter() - start,  # repro-lint: disable=RPL001 -- wall-clock perf channel, never persisted (DESIGN.md 28)
    )


def run_perf(execution: RunExecution) -> dict[str, float]:
    """Wall-clock/speed facts of one executed run (in-memory only).

    Persisted result documents are deterministic by contract, so timing
    travels on this side channel: the sweep runner collects one perf row per
    run *executed in this invocation* (resumed runs have none) and the
    report layer renders them as the sweep-table footer.
    """
    result = execution.result
    return {
        "wall_seconds": execution.wall_seconds,
        "policy_wall_seconds": result.policy_wall_seconds,
        "policy_invocations": result.policy_invocations,
        "policy_skips": result.policy_skips,
        "sim_rounds": result.sim_rounds,
        "sim_wall_seconds": result.sim_wall_seconds,
    }


@contextmanager
def _alarm(seconds: float | None):
    """Bound a block's wall clock with SIGALRM (no-op where unavailable).

    Falls back to unbounded execution when no budget is set, on platforms
    without ``SIGALRM``, or off the main thread (signal handlers can only
    be installed there).
    """
    if (
        not seconds
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_alarm(signum, frame):
        raise RunTimeoutError(
            f"run exceeded its {seconds:g}s wall-clock budget"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def _guarded_run(
    run: RunSpec,
    store: RunStore | None,
    plan: FaultPlan | None,
    max_attempts: int,
    run_timeout: float | None,
):
    """Execute one run with timeout, bounded retries, and quarantine.

    Returns ``(status, execution, failure_doc)`` where status is one of
    ``"ok"`` (executed and persisted), ``"failed"`` (retries exhausted —
    ``failure_doc`` is the quarantine record), or ``"leased"`` (a live
    other process holds the run's lease; nothing was executed).

    The injector is created once per *run*, not per attempt: seam
    occurrence counts accumulate across retries, so a transient rule
    (``times=(1,)``) fires once and the retry recovers.
    """
    if store is not None and not store.acquire_lease(run.run_key):
        return "leased", None, None
    try:
        injector = plan.injector(run.run_key) if plan is not None else None
        attempts: list[dict] = []
        for attempt in range(1, max(1, max_attempts) + 1):
            try:
                with _alarm(run_timeout):
                    execution = execute_run(run, injector=injector)
                if store is not None:
                    store.save(run, execution.result, injector=injector)
                    if injector is not None:
                        # Read-back verification: a torn write (the
                        # store-record seam, or a real partial write)
                        # surfaces here as a failed attempt, not later as
                        # a poisoned --resume.
                        store.load_record(run.run_key)
                    store.clear_failure(run.run_key)
                return "ok", execution, None
            except Exception as exc:
                entry = {"attempt": attempt, **incident_payload(exc)}
                if getattr(exc, "incidents", ()):
                    # A hard simulation failure carries the contained
                    # incidents that preceded it — quarantine keeps them.
                    entry["incidents"] = [
                        incident_to_dict(i) for i in exc.incidents
                    ]
                attempts.append(entry)
                if store is not None and isinstance(
                    exc, CorruptRunRecordError
                ):
                    store.quarantine_record(run.run_key)
        if store is not None:
            doc = store.save_failure(run, attempts)
        else:
            doc = build_failure_doc(run, attempts)
        return "failed", None, doc
    finally:
        if store is not None:
            store.release_lease(run.run_key)


def _pool_run(args):
    """Top-level worker body (must be importable under spawn)."""
    run, out_dir, plan, max_attempts, run_timeout = args
    store = RunStore(out_dir) if out_dir is not None else None
    status, execution, failure = _guarded_run(
        run, store, plan, max_attempts, run_timeout
    )
    if status != "ok":
        return run.run_key, status, None, None, failure
    payload = (
        None if out_dir is not None else result_to_dict(execution.result)
    )
    return run.run_key, status, run_perf(execution), payload, None


@dataclass
class SweepOutcome:
    """Everything a sweep invocation produced (plus resumed prior results)."""

    runs: tuple[RunSpec, ...]
    results: dict[str, SimulationResult] = field(default_factory=dict)
    #: Wall seconds per run *executed in this invocation* only.
    wall_seconds: dict[str, float] = field(default_factory=dict)
    #: Per-run perf rows (see :func:`run_perf`), executed runs only.
    perf: dict[str, dict[str, float]] = field(default_factory=dict)
    #: Run keys skipped because ``--resume`` found them already on disk.
    skipped: tuple[str, ...] = ()
    #: Quarantine records of runs that exhausted their retries, by key.
    failures: dict[str, dict] = field(default_factory=dict)
    total_wall: float = 0.0
    workers: int = 1

    def pairs(self) -> list[tuple[RunSpec, SimulationResult]]:
        """(run, result) in grid order for every run with a result."""
        return [
            (run, self.results[run.run_key])
            for run in self.runs
            if run.run_key in self.results
        ]

    def select(self, **fields) -> list[tuple[RunSpec, SimulationResult]]:
        """Pairs whose RunSpec matches every given field, in grid order."""
        return [
            (run, result)
            for run, result in self.pairs()
            if all(getattr(run, k) == v for k, v in fields.items())
        ]

    def one(self, **fields) -> SimulationResult:
        """The single result matching ``fields`` (raises otherwise)."""
        matches = self.select(**fields)
        if len(matches) != 1:
            raise LookupError(
                f"expected exactly one run matching {fields}, "
                f"found {len(matches)}"
            )
        return matches[0][1]


def run_sweep(
    spec: SweepSpec | tuple[RunSpec, ...] | list[RunSpec],
    *,
    out_dir: str | None = None,
    workers: int = 1,
    resume: bool = False,
    log=None,
    fault_plan: FaultPlan | None = None,
    max_attempts: int = 2,
    run_timeout: float | None = None,
) -> SweepOutcome:
    """Execute a sweep grid, optionally in parallel and/or persisted.

    * ``out_dir`` — when set, every run is persisted through the
      :class:`RunStore` as it completes (crash-safe); when ``None`` the
      sweep is in-memory only (benchmarks).
    * ``workers`` — number of spawn-context worker processes; ``1`` runs
      in-process (and is what ``workers > 1`` must be byte-identical to).
    * ``resume`` — skip runs whose key already has a *loadable* result on
      disk; an unreadable record is quarantined to a ``.corrupt`` sidecar
      and the run re-executes.
    * ``fault_plan`` — a :class:`~repro.faults.FaultPlan` arming the
      injection seams (``None``/empty = zero faults, the fast path).
    * ``max_attempts`` — per-run attempt budget; a run that fails every
      attempt is quarantined under ``failures/`` instead of aborting the
      sweep.
    * ``run_timeout`` — per-run wall-clock budget in seconds (classified
      and retried like any other failure).
    """
    started = time.perf_counter()  # repro-lint: disable=RPL001 -- wall-clock perf channel, never persisted (DESIGN.md 28)
    if isinstance(spec, SweepSpec):
        runs = spec.expand()
    else:
        runs = tuple(spec)
    keys = [run.run_key for run in runs]
    if len(set(keys)) != len(keys):
        raise ValueError("sweep grid contains duplicate run keys")
    if fault_plan is not None and not fault_plan.rules:
        fault_plan = None

    store = RunStore(out_dir) if out_dir is not None else None
    if store is not None and isinstance(spec, SweepSpec):
        store.write_spec(spec)

    def say(message: str) -> None:
        if log is not None:
            log(message)

    if store is not None:
        removed = store.gc_stale_tmp()
        if removed:
            say(f"gc: removed {len(removed)} stale temp file(s)")

    already_done: set[str] = set()
    if store is not None and resume:
        # Trust nothing: every present record must load before its run is
        # skipped.  A truncated/corrupt one moves aside and re-executes.
        for key in sorted(store.completed_keys() & set(keys)):
            try:
                store.load_record(key)
            except CorruptRunRecordError as exc:
                store.quarantine_record(key)
                say(f"resume: quarantined corrupt record ({exc})")
                continue
            already_done.add(key)
    todo = [run for run in runs if run.run_key not in already_done]

    outcome = SweepOutcome(
        runs=runs, skipped=tuple(k for k in keys if k in already_done),
        workers=max(workers, 1),
    )
    if outcome.skipped:
        say(f"resume: {len(outcome.skipped)}/{len(runs)} runs already on disk")

    leased: set[str] = set()
    if workers <= 1 or len(todo) <= 1:
        for run in todo:
            status, execution, failure = _guarded_run(
                run, store, fault_plan, max_attempts, run_timeout
            )
            if status == "leased":
                leased.add(run.run_key)
                say(f"leased elsewhere, skipping {run.run_key}")
                continue
            if status == "failed":
                outcome.failures[run.run_key] = failure
                say(
                    f"quarantined {run.run_key} after "
                    f"{len(failure['attempts'])} attempt(s): "
                    f"{failure['error']}"
                )
                continue
            outcome.results[run.run_key] = execution.result
            outcome.wall_seconds[run.run_key] = execution.wall_seconds
            outcome.perf[run.run_key] = run_perf(execution)
            say(f"done {run.run_key} ({execution.wall_seconds:.1f}s)")
    elif todo:
        ctx = mp.get_context("spawn")
        # Group same-trace runs into contiguous chunks so each worker's
        # per-process trace memo gets hits (results are independent of
        # execution order, so this only affects wall clock).  Chunks never
        # exceed a fingerprint group: larger chunks would trade load
        # balance for no extra memo hits.
        ordered = sorted(todo, key=_trace_memo_key)
        processes = min(workers, len(todo))
        group = min(Counter(map(_trace_memo_key, ordered)).values())
        chunk = max(1, min(-(-len(ordered) // processes), group))
        jobs = [
            (run, out_dir, fault_plan, max_attempts, run_timeout)
            for run in ordered
        ]
        with ctx.Pool(processes=processes) as pool:
            for key, status, perf, payload, failure in pool.imap_unordered(
                _pool_run, jobs, chunksize=chunk
            ):
                if status == "leased":
                    leased.add(key)
                    say(f"leased elsewhere, skipping {key}")
                    continue
                if status == "failed":
                    outcome.failures[key] = failure
                    say(
                        f"quarantined {key} after "
                        f"{len(failure['attempts'])} attempt(s): "
                        f"{failure['error']}"
                    )
                    continue
                outcome.wall_seconds[key] = perf["wall_seconds"]
                outcome.perf[key] = perf
                if payload is not None:
                    outcome.results[key] = result_from_dict(payload)
                say(f"done {key} ({perf['wall_seconds']:.1f}s)")
        if store is not None:
            for run in todo:
                if (
                    run.run_key not in outcome.results
                    and run.run_key not in outcome.failures
                    and run.run_key not in leased
                ):
                    outcome.results[run.run_key] = store.load_result(
                        run.run_key
                    )

    # Resumed runs still participate in aggregation: load them back.
    if store is not None:
        for key in outcome.skipped:
            outcome.results[key] = store.load_result(key)
        store.gc_stale_tmp()

    outcome.total_wall = time.perf_counter() - started  # repro-lint: disable=RPL001 -- wall-clock perf channel, never persisted (DESIGN.md 28)
    if store is not None:
        meta = {
            "workers": outcome.workers,
            "requested_runs": len(runs),
            "executed_runs": len(todo),
            "skipped_runs": len(outcome.skipped),
            "total_wall_seconds": round(outcome.total_wall, 3),
            "run_wall_seconds": {
                k: round(v, 3)
                for k, v in sorted(outcome.wall_seconds.items())
            },
            "run_perf": {
                k: {m: round(v, 4) for m, v in row.items()}
                for k, row in sorted(outcome.perf.items())
            },
        }
        if outcome.failures:
            meta["failed_runs"] = len(outcome.failures)
        if fault_plan is not None:
            meta["fault_plan"] = fault_plan.name
            meta["fault_plan_digest"] = fault_plan.digest
        store.append_meta(meta)  # repro-lint: disable=RPL008 -- sweep meta is the sanctioned wall-clock channel: perf rows are observability-only, excluded from result documents and digests
    return outcome
