"""External-trace adapters: ingest real cluster logs as simulator traces.

The third axis of workload construction: instead of sampling arrivals and
job sizes, replay them from a Philly-style CSV or a Helios-style JSONL log.
Rows carry what such logs carry — a job id, a submission time, a GPU count
and a duration — and the adapter supplies what the paper adds on top of its
down-sampled Microsoft trace (§7.3): a catalog model per job, the
feasibility fix-up ("in case the original GPU number is infeasible for the
model, we use a feasible one and change the duration accordingly to keep
the same GPU hours"), and an initial execution plan.

Model/plan assignment is deterministic per ``(seed, job_id)``, so a replay
trace is reproducible bit-for-bit and independent of row order or skipped
malformed neighbors.  Malformed rows raise :class:`TraceAdapterError`
pointing at the exact ``file:line`` (or are dropped with
``on_error="skip"``).
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path

from repro.cluster.topology import ClusterSpec
from repro.errors import TraceAdapterError
from repro.rng import rng_for
from repro.sim.trace import Trace, TraceJob


@dataclass(frozen=True)
class ColumnMap:
    """Field-name mapping from an external log's schema onto trace fields.

    ``status``/``accept_status`` optionally filter rows to completed jobs
    (the paper evaluates on jobs that ran to completion); a row whose status
    column is missing from the file is kept.
    """

    job_id: str = "job_id"
    submit_time: str = "submit_time"
    gpus: str = "gpus"
    duration: str = "duration"
    status: str = "status"
    accept_status: tuple[str, ...] = ("Pass",)


#: Philly-style CSV columns (Microsoft's published GPU cluster log shape).
PHILLY_COLUMNS = ColumnMap()

#: Helios-style JSONL keys (SenseTime's published GPU cluster log shape).
HELIOS_COLUMNS = ColumnMap(
    job_id="job_name",
    gpus="num_gpu",
    status="state",
    accept_status=("COMPLETED",),
)

#: Accepted textual timestamp layouts (besides plain seconds).
_TIME_FORMATS = ("%Y-%m-%d %H:%M:%S", "%Y-%m-%dT%H:%M:%S")


@dataclass(frozen=True)
class _RawJob:
    """One parsed external row, before model/plan assignment."""

    job_id: str
    submit_time: float
    gpus: int
    duration: float
    line: int


def _parse_time(value) -> float:
    """Seconds from a numeric value or a timestamp string.

    Textual timestamps are interpreted as UTC: replay must be bit-identical
    across machines, and local-time parsing would make inter-arrival gaps
    depend on the host timezone (and swallow/duplicate DST transitions).
    """
    if isinstance(value, (int, float)):
        return float(value)
    text = str(value).strip()
    try:
        return float(text)
    except ValueError:
        pass
    for fmt in _TIME_FORMATS:
        try:
            parsed = datetime.strptime(text, fmt)
            return parsed.replace(tzinfo=timezone.utc).timestamp()
        except ValueError:
            continue
    raise ValueError(f"unparsable timestamp {value!r}")


def _parse_row(
    row: dict, columns: ColumnMap, path: Path, line: int
) -> _RawJob | None:
    """A validated :class:`_RawJob`, or ``None`` for a filtered-out status."""

    def fail(message: str):
        return TraceAdapterError(f"{path}:{line}: {message}")

    status = row.get(columns.status)
    if status is not None and columns.accept_status:
        if str(status).strip() not in columns.accept_status:
            return None
    values = {}
    for field in ("job_id", "submit_time", "gpus", "duration"):
        column = getattr(columns, field)
        if column not in row or row[column] in (None, ""):
            raise fail(f"missing column {column!r}")
        values[field] = row[column]
    try:
        submit = _parse_time(values["submit_time"])
    except ValueError as exc:
        raise fail(str(exc)) from None
    try:
        gpus = int(float(values["gpus"]))
        duration = float(values["duration"])
    except (TypeError, ValueError):
        raise fail(
            f"non-numeric gpus/duration "
            f"({values['gpus']!r}, {values['duration']!r})"
        ) from None
    if gpus < 1:
        raise fail(f"gpus must be >= 1, got {gpus}")
    if duration <= 0.0:
        raise fail(f"duration must be positive, got {duration:g}")
    return _RawJob(
        job_id=str(values["job_id"]).strip(),
        submit_time=submit,
        gpus=gpus,
        duration=duration,
        line=line,
    )


def _collect(rows, columns, path: Path, on_error: str) -> list[_RawJob]:
    if on_error not in ("raise", "skip"):
        raise ValueError(f"on_error must be 'raise' or 'skip', got {on_error!r}")
    jobs: list[_RawJob] = []
    seen: set[str] = set()
    for line, row in rows:
        try:
            raw = _parse_row(row, columns, path, line)
            if raw is None:
                continue
            if raw.job_id in seen:
                raise TraceAdapterError(
                    f"{path}:{line}: duplicate job id {raw.job_id!r}"
                )
        except TraceAdapterError:
            if on_error == "skip":
                continue
            raise
        seen.add(raw.job_id)
        jobs.append(raw)
    if not jobs:
        raise TraceAdapterError(f"{path}: no usable job rows")
    return jobs


def _assemble(
    raw_jobs: list[_RawJob],
    *,
    cluster: ClusterSpec,
    seed: int,
    plan_assignment: str,
    name: str,
    testbed=None,
) -> Trace:
    """Assign models/plans and apply the paper's feasibility fix-up."""
    # Imported here: the generator module imports this package's siblings at
    # module level, so a top-level import would be circular.
    from repro.models.catalog import get_model
    from repro.oracle.testbed import SyntheticTestbed
    from repro.sim.workload import _fix_gpu_request, _pick_plan

    testbed = testbed or SyntheticTestbed(cluster, seed=seed)
    names = _profilable_names(testbed)
    start = min(raw.submit_time for raw in raw_jobs)
    jobs = []
    for raw in sorted(raw_jobs, key=lambda r: (r.submit_time, r.job_id)):
        # Per-job stream keyed on the job id: assignment survives row
        # reordering and skipped neighbors unchanged.
        rng = rng_for(seed, "adapter", name, raw.job_id)
        model = get_model(names[int(rng.integers(len(names)))])
        gpus, plans = _fix_gpu_request(model, raw.gpus, testbed)
        duration = raw.duration
        if gpus != raw.gpus:
            duration *= raw.gpus / gpus  # keep GPU-hours constant
        plan = _pick_plan(plans, model, gpus, testbed, rng, plan_assignment)
        jobs.append(
            TraceJob(
                job_id=raw.job_id,
                model_name=model.name,
                submit_time=raw.submit_time - start,
                requested_gpus=gpus,
                duration=duration,
                initial_plan=plan,
                global_batch=model.global_batch_size,
            )
        )
    return Trace(jobs=tuple(jobs), name=name)


def _profilable_names(testbed) -> list[str]:
    from repro.models.catalog import all_models
    from repro.sim.workload import _can_profile

    return [
        spec.name for spec in all_models() if _can_profile(testbed, spec.name)
    ]


def load_philly_csv(
    path: str | Path,
    *,
    cluster: ClusterSpec,
    seed: int = 0,
    plan_assignment: str = "random",
    columns: ColumnMap = PHILLY_COLUMNS,
    on_error: str = "raise",
    name: str | None = None,
    testbed=None,
) -> Trace:
    """Ingest a Philly-style CSV log as a replayable :class:`Trace`."""
    path = Path(path)
    if not path.exists():
        raise TraceAdapterError(f"{path}: no such trace file")
    with path.open(newline="") as fh:
        reader = csv.DictReader(fh)
        # Header is line 1; data rows start at line 2.
        rows = [(i, row) for i, row in enumerate(reader, start=2)]
    raw_jobs = _collect(rows, columns, path, on_error)
    return _assemble(
        raw_jobs,
        cluster=cluster,
        seed=seed,
        plan_assignment=plan_assignment,
        name=name or f"replay-{path.stem}",
        testbed=testbed,
    )


def load_helios_jsonl(
    path: str | Path,
    *,
    cluster: ClusterSpec,
    seed: int = 0,
    plan_assignment: str = "random",
    columns: ColumnMap = HELIOS_COLUMNS,
    on_error: str = "raise",
    name: str | None = None,
    testbed=None,
) -> Trace:
    """Ingest a Helios-style JSONL log as a replayable :class:`Trace`."""
    path = Path(path)
    if not path.exists():
        raise TraceAdapterError(f"{path}: no such trace file")
    rows = []
    for line, text in enumerate(path.read_text().splitlines(), start=1):
        if not text.strip():
            continue
        try:
            row = json.loads(text)
        except json.JSONDecodeError as exc:
            if on_error == "skip":
                continue
            raise TraceAdapterError(f"{path}:{line}: invalid JSON ({exc.msg})")
        if not isinstance(row, dict):
            if on_error == "skip":
                continue
            raise TraceAdapterError(f"{path}:{line}: row is not an object")
        rows.append((line, row))
    raw_jobs = _collect(rows, columns, path, on_error)
    return _assemble(
        raw_jobs,
        cluster=cluster,
        seed=seed,
        plan_assignment=plan_assignment,
        name=name or f"replay-{path.stem}",
        testbed=testbed,
    )


def load_external_trace(
    path: str | Path,
    *,
    cluster: ClusterSpec,
    seed: int = 0,
    plan_assignment: str = "random",
    on_error: str = "raise",
    testbed=None,
) -> Trace:
    """Dispatch on file extension: ``.csv`` Philly, ``.jsonl`` Helios,
    ``.json`` native (a trace previously saved by ``save_trace``)."""
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".csv":
        return load_philly_csv(
            path, cluster=cluster, seed=seed,
            plan_assignment=plan_assignment, on_error=on_error,
            testbed=testbed,
        )
    if suffix == ".jsonl":
        return load_helios_jsonl(
            path, cluster=cluster, seed=seed,
            plan_assignment=plan_assignment, on_error=on_error,
            testbed=testbed,
        )
    if suffix == ".json":
        from repro.sim.serialization import load_trace

        if not path.exists():
            raise TraceAdapterError(f"{path}: no such trace file")
        return load_trace(path)
    raise TraceAdapterError(
        f"{path}: unsupported trace format {suffix!r} "
        "(expected .csv, .jsonl or .json)"
    )
