"""Job-mix models: what the arriving jobs look like.

The second axis of workload construction (the first is *when* jobs arrive,
``repro.workloads.arrivals``): GPU-request mix, duration distribution, and
model-sampling weights, as one frozen, validated config.  A
:class:`JobMix` maps onto the generator's ``WorkloadConfig`` fields through
the scenario registry; its defaults are exactly the paper's §7.3 trace
statistics, so the default scenario's generator config is unchanged.

Validation lives here too: :func:`validate_gpu_mix` rejects a mix whose
weights do not sum to ~1.0 (numpy's ``choice`` would otherwise silently
sample a renormalized distribution) or whose every entry exceeds the target
cluster — both formerly silent mis-sampling modes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadConfigError
from repro.models.catalog import (
    CATALOG,
    LARGE_MODEL_NAMES,
    scaled_large_model_weights,
)
from repro.units import HOUR, MINUTE

#: GPU-request mix of the Philly trace (small jobs dominate; paper §7.3).
DEFAULT_GPU_MIX: tuple[tuple[int, float], ...] = (
    (1, 0.42),
    (2, 0.15),
    (4, 0.16),
    (8, 0.15),
    (16, 0.07),
    (32, 0.05),
)

#: Tolerance on the gpu-mix weight sum (guards against silently-renormalized
#: sampling, not against honest float rounding).
_MIX_SUM_TOLERANCE = 1e-6


def validate_gpu_mix(
    gpu_mix: tuple[tuple[int, float], ...], cluster=None
) -> None:
    """Reject a malformed GPU-request mix with a precise error.

    * sizes must be positive integers, weights non-negative with at least
      one positive entry;
    * weights must sum to 1.0 within ``1e-6`` — numpy's ``choice`` requires
      normalized probabilities, and pre-validation normalization hid typos
      like a mix summing to 2.0;
    * when ``cluster`` is given, at least one positive-weight size must fit
      the cluster.  (Individual oversized entries are fine: the paper's
      feasibility fix-up clamps them, by design.)
    """
    if not gpu_mix:
        raise WorkloadConfigError("gpu_mix must have at least one entry")
    total = 0.0
    feasible_sizes = []
    for entry in gpu_mix:
        try:
            size, weight = entry
        except (TypeError, ValueError):
            raise WorkloadConfigError(
                f"gpu_mix entries must be (gpus, weight) pairs, got {entry!r}"
            ) from None
        if int(size) != size or size < 1:
            raise WorkloadConfigError(
                f"gpu_mix sizes must be positive integers, got {size!r}"
            )
        if weight < 0.0:
            raise WorkloadConfigError(
                f"gpu_mix weights must be non-negative, got {weight!r} "
                f"for size {size}"
            )
        total += weight
        if weight > 0.0:
            feasible_sizes.append(int(size))
    if not feasible_sizes:
        raise WorkloadConfigError("gpu_mix has no positive-weight entry")
    if abs(total - 1.0) > _MIX_SUM_TOLERANCE:
        raise WorkloadConfigError(
            f"gpu_mix weights must sum to 1.0, got {total:g} "
            "(normalize explicitly instead of relying on silent rescaling)"
        )
    if cluster is not None and min(feasible_sizes) > cluster.total_gpus:
        raise WorkloadConfigError(
            f"every gpu_mix size exceeds the cluster's {cluster.total_gpus} "
            f"GPUs (smallest requested: {min(feasible_sizes)}); no job "
            "could be sampled even after the feasibility fix-up"
        )


@dataclass(frozen=True)
class JobMix:
    """Frozen description of the job population a scenario samples.

    ``model_weights`` are ``(name, weight)`` overrides on the uniform
    catalog sampling (hashable, unlike a dict); ``large_model_factor``
    additionally scales the large models' weights (the Fig. 11 knob).
    Defaults reproduce the paper's trace statistics exactly.
    """

    gpu_mix: tuple[tuple[int, float], ...] = DEFAULT_GPU_MIX
    duration_median: float = 35 * MINUTE
    duration_sigma: float = 1.2
    min_duration: float = 3 * MINUTE
    max_duration: float = 8 * HOUR
    model_weights: tuple[tuple[str, float], ...] = ()
    large_model_factor: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "gpu_mix", tuple((int(g), float(w)) for g, w in self.gpu_mix)
        )
        object.__setattr__(
            self,
            "model_weights",
            tuple((str(n), float(w)) for n, w in self.model_weights),
        )
        validate_gpu_mix(self.gpu_mix)
        if self.duration_median <= 0.0 or self.duration_sigma < 0.0:
            raise WorkloadConfigError(
                "duration_median must be positive and duration_sigma >= 0"
            )
        if not 0.0 < self.min_duration <= self.max_duration:
            raise WorkloadConfigError(
                f"need 0 < min_duration <= max_duration, got "
                f"[{self.min_duration}, {self.max_duration}]"
            )
        if self.large_model_factor < 0.0:
            raise WorkloadConfigError(
                f"large_model_factor must be >= 0, got "
                f"{self.large_model_factor}"
            )
        for name, weight in self.model_weights:
            if name not in CATALOG:
                known = ", ".join(sorted(CATALOG))
                raise WorkloadConfigError(
                    f"unknown model {name!r} in model_weights; known: {known}"
                )
            if weight < 0.0:
                raise WorkloadConfigError(
                    f"model weight for {name!r} must be >= 0, got {weight}"
                )

    def weights_dict(self) -> dict[str, float]:
        """The generator's ``model_weights`` field for this mix.

        Empty (meaning "uniform") when nothing deviates from the default, so
        the default scenario's ``WorkloadConfig`` is field-for-field the
        pre-subsystem one.
        """
        if not self.model_weights and self.large_model_factor == 1.0:
            return {}
        # Per-model overrides first, then the large-model factor scales on
        # top (so a mix can both reweight a model and sweep the factor).
        weights = scaled_large_model_weights(1.0)
        weights.update(dict(self.model_weights))
        for name in LARGE_MODEL_NAMES:
            weights[name] *= self.large_model_factor
        return weights
