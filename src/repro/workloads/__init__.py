"""Workload scenario subsystem: arrivals × job mix × external traces.

Three composable layers generalize the paper's single §7.3 trace shape:

* **arrival processes** (:mod:`repro.workloads.arrivals`) — when jobs
  arrive: the paper's uniform+peaks, Poisson, bursty MMPP, diurnal/weekly
  rhythms, deterministic replay;
* **job mixes** (:mod:`repro.workloads.mix`) — what the jobs look like:
  GPU-size mix, duration distribution, model-sampling weights;
* **external-trace adapters** (:mod:`repro.workloads.adapters`) — replay
  Philly-style CSV / Helios-style JSONL logs with the paper's feasibility
  fix-up applied.

The **scenario registry** (:mod:`repro.workloads.registry`) names
compositions of the three (``paper-12h``, ``diurnal-3d``,
``largemodel-heavy``, ``multitenant-burst``, ``replay:<path>``, …) and is
what the experiment specs, the sweep CLI and ``repro workload`` resolve
against.
"""

from repro.workloads.arrivals import (
    ARRIVAL_KINDS,
    UNIFORM_PEAKS,
    ArrivalProcess,
    DiurnalArrivals,
    FixedArrivals,
    MarkovModulatedArrivals,
    PoissonArrivals,
    UniformPeaksArrivals,
    arrival_from_dict,
    arrival_to_dict,
)
from repro.workloads.mix import DEFAULT_GPU_MIX, JobMix, validate_gpu_mix
from repro.workloads.adapters import (
    HELIOS_COLUMNS,
    PHILLY_COLUMNS,
    ColumnMap,
    load_external_trace,
    load_helios_jsonl,
    load_philly_csv,
)
from repro.workloads.registry import (
    DEFAULT_SCENARIO,
    REPLAY_PREFIX,
    Scenario,
    known_scenario_names,
    list_scenarios,
    register_scenario,
    resolve_scenario,
    scenario_trace,
    scenario_workload_config,
)

__all__ = [
    "ARRIVAL_KINDS",
    "DEFAULT_GPU_MIX",
    "DEFAULT_SCENARIO",
    "HELIOS_COLUMNS",
    "PHILLY_COLUMNS",
    "REPLAY_PREFIX",
    "UNIFORM_PEAKS",
    "ArrivalProcess",
    "ColumnMap",
    "DiurnalArrivals",
    "FixedArrivals",
    "JobMix",
    "MarkovModulatedArrivals",
    "PoissonArrivals",
    "Scenario",
    "UniformPeaksArrivals",
    "arrival_from_dict",
    "arrival_to_dict",
    "known_scenario_names",
    "list_scenarios",
    "load_external_trace",
    "load_helios_jsonl",
    "load_philly_csv",
    "register_scenario",
    "resolve_scenario",
    "scenario_trace",
    "scenario_workload_config",
    "validate_gpu_mix",
]
