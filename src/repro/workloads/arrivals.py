"""Pluggable arrival processes for synthetic workload generation.

The paper's trace uses one arrival shape — a uniform background with two
submission peaks over a 12-hour window (§7.3).  This module generalizes the
*when do jobs arrive* axis into frozen, composable process configs that the
generator (``repro.sim.workload.generate_trace``) samples through a single
``sample(rng, num_jobs, span)`` contract:

* :class:`UniformPeaksArrivals` — the paper's shape (the default instance is
  draw-for-draw identical to the pre-subsystem generator, so the default
  scenario's traces are byte-identical);
* :class:`PoissonArrivals` — memoryless arrivals at the same average rate;
* :class:`MarkovModulatedArrivals` — bursty MMPP-2 arrivals flip-flopping
  between a calm and a burst state;
* :class:`DiurnalArrivals` — day/night (and optionally weekday/weekend)
  submission rhythm over multi-day windows, sampled by thinning;
* :class:`FixedArrivals` — deterministic replay of explicit times.

Every process is deterministic in the generator's RNG stream and returns a
sorted list of floats.  Process configs serialize through
:func:`arrival_to_dict` / :func:`arrival_from_dict` for display and
round-tripping.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Any, ClassVar

from repro.errors import WorkloadConfigError
from repro.units import DAY, HOUR, MINUTE


@dataclass(frozen=True)
class ArrivalProcess:
    """Base class: a deterministic sampler of job submission times."""

    #: Registry key of the concrete process (used for (de)serialization).
    kind: ClassVar[str] = "abstract"

    def sample(self, rng, num_jobs: int, span: float) -> list[float]:
        """Sorted submission times for ``num_jobs`` jobs over ``span``.

        ``rng`` is the generator's shared stream: a process must consume it
        deterministically (same rng state → same times, bit for bit).
        """
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human summary for CLI listings."""
        fields = ", ".join(
            f"{name}={value!r}" for name, value in asdict(self).items()
        )
        return f"{self.kind}({fields})"


@dataclass(frozen=True)
class UniformPeaksArrivals(ArrivalProcess):
    """Uniform background plus Gaussian submission peaks (paper §7.3).

    ``peaks`` entries are ``(center, width, weight)`` fractions of the span;
    ``background`` is the probability mass of the uniform component.  The
    default instance reproduces the pre-subsystem generator exactly: one
    ``random()`` mode draw per job, then one ``uniform``/``normal`` draw.
    """

    kind: ClassVar[str] = "uniform-peaks"

    background: float = 0.5
    peaks: tuple[tuple[float, float, float], ...] = (
        (0.30, 0.08, 0.25),
        (0.70, 0.08, 0.25),
    )

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "peaks", tuple(tuple(p) for p in self.peaks)
        )
        if not 0.0 <= self.background <= 1.0:
            raise WorkloadConfigError(
                f"background mass must be in [0, 1], got {self.background}"
            )
        total = self.background + sum(w for _, _, w in self.peaks)
        if abs(total - 1.0) > 1e-6:
            raise WorkloadConfigError(
                f"background + peak weights must sum to 1.0, got {total:g}"
            )
        for center, width, weight in self.peaks:
            if not 0.0 <= center <= 1.0 or width <= 0.0 or weight < 0.0:
                raise WorkloadConfigError(
                    f"bad peak (center={center}, width={width}, "
                    f"weight={weight}): need 0<=center<=1, width>0, weight>=0"
                )

    def sample(self, rng, num_jobs: int, span: float) -> list[float]:
        times = []
        for _ in range(num_jobs):
            mode = rng.random()
            if mode < self.background or not self.peaks:
                t = rng.uniform(0.0, span)
            else:
                # Walk the cumulative peak weights; the last peak absorbs
                # any floating-point remainder of the mode draw.
                acc = self.background
                center, width, _ = self.peaks[-1]
                for c, w, weight in self.peaks:
                    acc += weight
                    if mode < acc:
                        center, width = c, w
                        break
                t = rng.normal(center * span, width * span)
            times.append(float(min(max(t, 0.0), span)))
        return sorted(times)


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals at the average rate ``num_jobs / span``.

    Inter-arrival gaps are exponential, so the expected last arrival sits at
    the end of the window; individual draws may land slightly past it.
    """

    kind: ClassVar[str] = "poisson"

    def sample(self, rng, num_jobs: int, span: float) -> list[float]:
        scale = span / max(num_jobs, 1)
        times, t = [], 0.0
        for gap in rng.exponential(scale, size=num_jobs):
            t += float(gap)
            times.append(t)
        return times


@dataclass(frozen=True)
class MarkovModulatedArrivals(ArrivalProcess):
    """Bursty MMPP-2 arrivals: exponential sojourns in a calm/burst pair.

    The calm-state rate is solved so the *stationary* average rate equals
    ``num_jobs / span``; the burst state submits ``burst_factor`` times
    faster.  Sojourn times in each state are exponential with the given
    means, so the process produces the heavy-tailed gap distribution real
    cluster logs show (quiet stretches punctuated by submission storms).
    """

    kind: ClassVar[str] = "mmpp"

    burst_factor: float = 8.0
    mean_burst: float = 20 * MINUTE
    mean_calm: float = 2 * HOUR

    def __post_init__(self) -> None:
        if self.burst_factor < 1.0:
            raise WorkloadConfigError(
                f"burst_factor must be >= 1, got {self.burst_factor}"
            )
        if self.mean_burst <= 0.0 or self.mean_calm <= 0.0:
            raise WorkloadConfigError("state sojourn means must be positive")

    def sample(self, rng, num_jobs: int, span: float) -> list[float]:
        stationary_burst = self.mean_burst / (self.mean_burst + self.mean_calm)
        average = num_jobs / max(span, 1e-9)
        calm_rate = average / (
            (1.0 - stationary_burst) + self.burst_factor * stationary_burst
        )
        times: list[float] = []
        t = 0.0
        in_burst = bool(rng.random() < stationary_burst)
        state_end = t + float(
            rng.exponential(self.mean_burst if in_burst else self.mean_calm)
        )
        while len(times) < num_jobs:
            rate = calm_rate * (self.burst_factor if in_burst else 1.0)
            gap = float(rng.exponential(1.0 / rate))
            if t + gap < state_end:
                t += gap
                times.append(t)
            else:
                # The arrival would fall past the state switch: advance to
                # the switch and re-draw in the new state (memorylessness
                # makes discarding the partial gap exact).
                t = state_end
                in_burst = not in_burst
                state_end = t + float(
                    rng.exponential(
                        self.mean_burst if in_burst else self.mean_calm
                    )
                )
        return times


@dataclass(frozen=True)
class DiurnalArrivals(ArrivalProcess):
    """Day/night (and optional weekend) submission rhythm, by thinning.

    Relative intensity is a raised cosine over the 24-hour clock peaking at
    ``peak_hour`` and bottoming at ``night_depth`` of the peak; days 5 and 6
    of each week are additionally scaled by ``weekend_factor``.  Candidates
    are drawn from a homogeneous process at the intensity ceiling and
    accepted with probability ``intensity / ceiling`` until ``num_jobs``
    arrivals land — the overall average rate matches ``num_jobs / span``.
    """

    kind: ClassVar[str] = "diurnal"

    peak_hour: float = 14.0
    night_depth: float = 0.15
    weekend_factor: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.peak_hour < 24.0:
            raise WorkloadConfigError(
                f"peak_hour must be in [0, 24), got {self.peak_hour}"
            )
        if not 0.0 < self.night_depth <= 1.0:
            raise WorkloadConfigError(
                f"night_depth must be in (0, 1], got {self.night_depth}"
            )
        if self.weekend_factor <= 0.0:
            raise WorkloadConfigError(
                f"weekend_factor must be positive, got {self.weekend_factor}"
            )

    def relative_intensity(self, t: float) -> float:
        """Unnormalized intensity at time ``t`` (peak weekday hour = 1.0)."""
        hour = (t / HOUR) % 24.0
        phase = math.cos(2.0 * math.pi * (hour - self.peak_hour) / 24.0)
        level = self.night_depth + (1.0 - self.night_depth) * 0.5 * (
            1.0 + phase
        )
        if int(t // DAY) % 7 >= 5:
            level *= self.weekend_factor
        return level

    def sample(self, rng, num_jobs: int, span: float) -> list[float]:
        # Mean relative intensity over the window (deterministic midpoint
        # grid) fixes the candidate rate so ~num_jobs candidates survive
        # thinning inside the span.
        steps = 288
        grid = [self.relative_intensity((i + 0.5) * span / steps)
                for i in range(steps)]
        mean_level = sum(grid) / steps
        ceiling = max(1.0, self.weekend_factor)
        candidate_rate = (num_jobs / max(span, 1e-9)) * ceiling / mean_level
        times: list[float] = []
        t = 0.0
        budget = 1000 * num_jobs + 1000  # thinning is >= night_depth efficient
        while len(times) < num_jobs:
            budget -= 1
            if budget <= 0:
                raise WorkloadConfigError(
                    "diurnal thinning failed to converge "
                    f"(night_depth={self.night_depth}, "
                    f"weekend_factor={self.weekend_factor})"
                )
            t += float(rng.exponential(1.0 / candidate_rate))
            if rng.random() * ceiling < self.relative_intensity(t):
                times.append(t)
        return times


@dataclass(frozen=True)
class FixedArrivals(ArrivalProcess):
    """Deterministic replay of explicit submission times (ignores the RNG)."""

    kind: ClassVar[str] = "fixed"

    times: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "times", tuple(float(t) for t in self.times)
        )
        if any(t < 0.0 for t in self.times):
            raise WorkloadConfigError("fixed arrival times must be >= 0")

    def sample(self, rng, num_jobs: int, span: float) -> list[float]:
        if num_jobs > len(self.times):
            raise WorkloadConfigError(
                f"fixed arrivals carry {len(self.times)} times, "
                f"{num_jobs} jobs requested"
            )
        return sorted(self.times)[:num_jobs]


#: The paper's default arrival shape (shared instance used as the
#: ``WorkloadConfig.arrival`` default).
UNIFORM_PEAKS = UniformPeaksArrivals()

#: Registered process kinds, for deserialization and CLI listings.
ARRIVAL_KINDS: dict[str, type[ArrivalProcess]] = {
    cls.kind: cls
    for cls in (
        UniformPeaksArrivals,
        PoissonArrivals,
        MarkovModulatedArrivals,
        DiurnalArrivals,
        FixedArrivals,
    )
}


def arrival_to_dict(process: ArrivalProcess) -> dict[str, Any]:
    """Plain-JSON form: the ``kind`` tag plus the process's own fields."""
    data = asdict(process)
    # JSON has no tuples; keep nested sequences as lists uniformly.
    return {"kind": process.kind, **data}


def arrival_from_dict(data: dict[str, Any]) -> ArrivalProcess:
    data = dict(data)
    kind = data.pop("kind", None)
    cls = ARRIVAL_KINDS.get(kind)
    if cls is None:
        known = ", ".join(sorted(ARRIVAL_KINDS))
        raise WorkloadConfigError(
            f"unknown arrival kind {kind!r}; known kinds: {known}"
        )
    return cls(**data)
