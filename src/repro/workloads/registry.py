"""Named workload scenarios: the registry every sweep axis resolves against.

A :class:`Scenario` composes the three workload layers — an arrival process
(``repro.workloads.arrivals``), a job mix (``repro.workloads.mix``), and
optionally an external-trace source (``repro.workloads.adapters``) — under
a stable name that ``RunSpec.scenario`` / ``repro sweep --scenarios`` /
``repro workload`` address.  ``paper-12h`` is the default and maps
field-for-field onto the pre-subsystem generator config, so its traces are
byte-identical to the pre-registry output (golden-tested).

``replay:<path>`` resolves dynamically to an adapter-backed scenario; every
other name must be registered.  Registration is open: downstream code can
:func:`register_scenario` its own compositions.

.. note:: Register custom scenarios at *module import time* (top level of a
   module the run imports), not inside an ``if __name__ == "__main__":``
   guard.  Parallel sweeps spawn fresh worker processes that re-import
   modules but never re-execute the main guard, and resuming or loading a
   persisted ``RunSpec`` in a new process resolves the scenario name again
   — in both cases an unregistered name raises ``unknown scenario``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.dynamics import resolve_dynamics
from repro.errors import ClusterDynamicsError, WorkloadError
from repro.units import DAY
from repro.workloads.arrivals import (
    ArrivalProcess,
    DiurnalArrivals,
    MarkovModulatedArrivals,
    PoissonArrivals,
    UniformPeaksArrivals,
)
from repro.workloads.mix import JobMix

#: The scenario every run uses unless told otherwise (the paper's §7.3
#: down-sampled busiest-12-hours trace shape).
DEFAULT_SCENARIO = "paper-12h"

#: Prefix of dynamically-resolved replay scenarios.
REPLAY_PREFIX = "replay:"


@dataclass(frozen=True)
class Scenario:
    """A named, fully-determined workload composition.

    Exactly one of ``arrival`` (synthesize) or ``source`` (replay an
    external log through an adapter) is set.  ``span``/``num_jobs``
    override the run's window/size when present (e.g. ``diurnal-3d`` spans
    three days regardless of the sweep default); ``guaranteed_fraction``
    applies the paper's two-tenant split at build time.
    """

    name: str
    description: str
    arrival: ArrivalProcess | None = None
    mix: JobMix = field(default_factory=JobMix)
    span: float | None = None
    num_jobs: int | None = None
    guaranteed_fraction: float | None = None
    source: str | None = None
    #: Named cluster-dynamics profile (``repro.cluster.dynamics``) the
    #: scenario runs under; ``None`` means a static cluster.  Runs inherit
    #: it unless ``RunSpec.dynamics`` overrides.
    dynamics: str | None = None

    def __post_init__(self) -> None:
        if (self.arrival is None) == (self.source is None):
            raise WorkloadError(
                f"scenario {self.name!r} must set exactly one of "
                "arrival (synthesize) or source (replay)"
            )
        if self.guaranteed_fraction is not None and not (
            0.0 <= self.guaranteed_fraction <= 1.0
        ):
            raise WorkloadError(
                f"scenario {self.name!r}: guaranteed_fraction must be in "
                f"[0, 1], got {self.guaranteed_fraction}"
            )
        if self.dynamics is not None:
            try:
                resolve_dynamics(self.dynamics)
            except ClusterDynamicsError as exc:
                raise WorkloadError(
                    f"scenario {self.name!r}: {exc}"
                ) from None

    @property
    def is_replay(self) -> bool:
        return self.source is not None


_REGISTRY: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, *, replace: bool = False) -> Scenario:
    """Add a scenario to the registry (``replace=True`` to overwrite)."""
    if scenario.name.startswith(REPLAY_PREFIX):
        raise WorkloadError(
            f"{REPLAY_PREFIX}<path> names are resolved dynamically and "
            "cannot be registered"
        )
    if scenario.name in _REGISTRY and not replace:
        raise WorkloadError(f"scenario {scenario.name!r} already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def list_scenarios() -> tuple[Scenario, ...]:
    """All registered scenarios, in registration order."""
    return tuple(_REGISTRY.values())


def known_scenario_names() -> tuple[str, ...]:
    return tuple(_REGISTRY)


def resolve_scenario(name: str) -> Scenario:
    """Look a scenario up by name (``replay:<path>`` resolves dynamically)."""
    if name.startswith(REPLAY_PREFIX):
        path = name[len(REPLAY_PREFIX):]
        if not path:
            raise WorkloadError("replay scenario needs a path: replay:<path>")
        return Scenario(
            name=name,
            description=f"deterministic replay of {path}",
            source=path,
        )
    scenario = _REGISTRY.get(name)
    if scenario is None:
        known = ", ".join(known_scenario_names())
        raise WorkloadError(
            f"unknown scenario {name!r}; known: {known}, "
            f"or {REPLAY_PREFIX}<path>"
        )
    return scenario


def scenario_workload_config(
    scenario: Scenario,
    *,
    seed: int,
    cluster,
    num_jobs: int,
    span: float,
    plan_assignment: str = "random",
    trace_name: str = "base",
):
    """The generator config a synthesized scenario expands to.

    For :data:`DEFAULT_SCENARIO` the result is field-for-field the
    pre-subsystem ``WorkloadConfig`` (same trace name, so the same RNG
    streams — byte-identical traces).  Other scenarios name their traces
    after themselves, which deliberately derives fresh arrival/mix streams
    per scenario.
    """
    # Imported lazily: repro.sim.workload imports this package's arrivals
    # and mix modules at module level.
    from repro.sim.workload import WorkloadConfig

    if scenario.is_replay:
        raise WorkloadError(
            f"replay scenario {scenario.name!r} has no generator config"
        )
    mix = scenario.mix
    name = trace_name if scenario.name == DEFAULT_SCENARIO else scenario.name
    return WorkloadConfig(
        num_jobs=scenario.num_jobs if scenario.num_jobs is not None else num_jobs,
        span=scenario.span if scenario.span is not None else span,
        seed=seed,
        cluster=cluster,
        gpu_mix=mix.gpu_mix,
        duration_median=mix.duration_median,
        duration_sigma=mix.duration_sigma,
        min_duration=mix.min_duration,
        max_duration=mix.max_duration,
        model_weights=mix.weights_dict(),
        plan_assignment=plan_assignment,
        name=name,
        arrival=scenario.arrival,
        dynamics=scenario.dynamics or "none",
    )


def scenario_trace(
    scenario: Scenario,
    *,
    seed: int,
    cluster,
    num_jobs: int = 80,
    span: float = 12 * 3600.0,
    plan_assignment: str = "random",
    trace_name: str = "base",
    testbed=None,
):
    """Build the trace a scenario describes, deterministically in the seed."""
    from repro.oracle.testbed import SyntheticTestbed
    from repro.sim.workload import generate_trace, to_multi_tenant_trace
    from repro.workloads.adapters import load_external_trace

    if scenario.is_replay:
        trace = load_external_trace(
            scenario.source,
            cluster=cluster,
            seed=seed,
            plan_assignment=plan_assignment,
            testbed=testbed,
        )
    else:
        config = scenario_workload_config(
            scenario,
            seed=seed,
            cluster=cluster,
            num_jobs=num_jobs,
            span=span,
            plan_assignment=plan_assignment,
            trace_name=trace_name,
        )
        testbed = testbed or SyntheticTestbed(cluster, seed=seed)
        trace = generate_trace(config, testbed)
    if scenario.guaranteed_fraction is not None:
        trace = to_multi_tenant_trace(
            trace,
            seed=seed,
            guaranteed_fraction=scenario.guaranteed_fraction,
            name=trace.name,
        )
    return trace


# ----------------------------------------------------------------------
# Built-in scenarios
# ----------------------------------------------------------------------
register_scenario(Scenario(
    name=DEFAULT_SCENARIO,
    description="the paper's §7.3 shape: 12 h, uniform background + two "
                "submission peaks, Philly GPU-size mix",
    arrival=UniformPeaksArrivals(),
))
register_scenario(Scenario(
    name="poisson-12h",
    description="memoryless Poisson arrivals at the same average rate "
                "over the 12 h window",
    arrival=PoissonArrivals(),
))
register_scenario(Scenario(
    name="bursty-mmpp",
    description="Markov-modulated bursts: calm/storm flip-flop with an "
                "8x submission-rate ratio",
    arrival=MarkovModulatedArrivals(),
))
register_scenario(Scenario(
    name="diurnal-3d",
    description="three days of day/night submission rhythm "
                "(peak 14:00, nights at 15%)",
    arrival=DiurnalArrivals(),
    span=3 * DAY,
))
register_scenario(Scenario(
    name="weekly-diurnal",
    description="a full week of diurnal rhythm with quiet weekends (35%)",
    arrival=DiurnalArrivals(weekend_factor=0.35),
    span=7 * DAY,
))
register_scenario(Scenario(
    name="largemodel-heavy",
    description="paper arrivals with the large models' sampling weight "
                "scaled 4x (Fig. 11 extreme)",
    arrival=UniformPeaksArrivals(),
    mix=JobMix(large_model_factor=4.0),
))
register_scenario(Scenario(
    name="multitenant-burst",
    description="bursty MMPP arrivals under the paper's two-tenant split "
                "(50% guaranteed / 50% best-effort)",
    arrival=MarkovModulatedArrivals(),
    guaranteed_fraction=0.5,
))
register_scenario(Scenario(
    name="paper-12h-flaky",
    description="the paper's 12 h shape on a flaky cluster: per-node "
                "Poisson failures (MTBF 6 h, MTTR ~30 min) evicting and "
                "restarting the jobs they hit",
    arrival=UniformPeaksArrivals(),
    dynamics="flaky",
))
register_scenario(Scenario(
    name="scaleout-midday",
    description="paper arrivals with two extra nodes commissioned at "
                "mid-span (operator capacity scale-up)",
    arrival=UniformPeaksArrivals(),
    dynamics="scaleout-midday",
))
