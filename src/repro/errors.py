"""Exception hierarchy for the Rubick reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class InfeasiblePlanError(ReproError):
    """An execution plan violates a structural constraint.

    Examples: tensor-parallel degree does not divide the hidden size, pipeline
    stages do not divide the layer count, or the global batch cannot be split
    across the requested data-parallel ranks.
    """


class OutOfMemoryError(ReproError):
    """A plan's estimated memory footprint exceeds device or host capacity.

    Mirrors the OOM failures a real cluster would surface when launching a job
    with a plan that does not fit the allocated GPUs / host memory.
    """


class PlacementError(ReproError):
    """A placement request cannot be satisfied by the cluster topology."""


class FittingError(ReproError):
    """Performance-model fitting failed or was given insufficient samples."""


class SchedulingError(ReproError):
    """A scheduling policy produced an inconsistent or invalid decision."""


class WorkloadError(ReproError):
    """A workload scenario could not be resolved or built."""


class WorkloadConfigError(WorkloadError):
    """A workload configuration is invalid.

    Examples: a ``gpu_mix`` whose weights do not sum to ~1.0 (numpy would
    silently mis-sample after normalization), a mix whose every entry exceeds
    the cluster's total GPUs, or arrival-process knobs outside their domain.
    """


class TraceAdapterError(WorkloadError):
    """An external trace file or row could not be ingested.

    Carries the offending file and row so malformed inputs point at the
    exact line instead of failing deep inside trace construction.
    """


class SimulationError(ReproError):
    """The discrete-time simulator reached an inconsistent state.

    Carries the run's incident stream (when one exists) so a hard failure
    still surfaces every contained fault that preceded it — the sweep
    runner persists them in the quarantine record.
    """

    def __init__(self, message: str, *, incidents: tuple = ()):
        super().__init__(message)
        self.incidents = tuple(incidents)


class ClusterDynamicsError(ReproError):
    """A cluster-dynamics profile or event stream is invalid.

    Examples: an unknown dynamics profile name, a ``fail`` event without a
    node id, a ``recover`` event for a node that was never part of the
    cluster, or a malformed ``file:<path>`` event document.
    """


class FaultPlanError(ReproError):
    """A fault plan is invalid or cannot be resolved.

    Examples: an unknown plan or seam name, a rule with non-positive
    occurrence indices, or a malformed ``file:<path>`` plan document.
    """


class InjectedFault(ReproError):
    """A failure raised on purpose by the fault-injection harness.

    Deterministic by construction: the message is a pure function of
    (plan, seam, occurrence), so quarantine records and incident streams
    built from injected faults are byte-stable across invocations.
    """

    def __init__(self, message: str, *, seam: str = "", occurrence: int = 0):
        super().__init__(message)
        self.seam = seam
        self.occurrence = occurrence


class InjectedCrash(InjectedFault):
    """An injected mid-run worker death (the ``worker-crash`` seam)."""


class InjectedHang(InjectedFault):
    """An injected worker hang (the ``worker-hang`` seam).

    Raised in place of an actual indefinite sleep so chaos tests stay
    fast; the sweep runner classifies it exactly like a run timeout.
    """


class RunTimeoutError(ReproError):
    """A sweep run exceeded its per-run wall-clock budget."""


class CorruptRunRecordError(ReproError):
    """A persisted run record is unreadable (truncated line, bad JSON,
    or format-version drift).

    The message deliberately names only the run key, never the absolute
    path: it ends up in quarantine records, which must be byte-identical
    across output directories.
    """

    def __init__(self, message: str, *, run_key: str = ""):
        super().__init__(message)
        self.run_key = run_key


class ProtocolError(ReproError):
    """A scheduling-service frame violated the wire protocol.

    Examples: a frame longer than the size guard, a payload that is not a
    JSON object, an unknown frame type, or a deterministic-mode submission
    behind the session clock.  The master replies with an ERROR frame and
    keeps serving; the decoder raises it for unrecoverable stream damage.
    """
