"""Plan enumeration: the scheduler's search space of execution plans.

``enumerate_plans`` generates every structurally valid plan for a model on a
given GPU allotment, optionally filtered by device-memory feasibility.  This
is the search space behind the paper's ``GetBestPlan`` and the resource
sensitivity curves (§5.2): "Rubick searches for the best execution plan for a
job by enumerating the feasible plans".

The search space is deliberately the paper's (§3): Megatron 3D parallelism
with adjustable DP/TP/PP sizes, ZeRO-DP, ZeRO-Offload, and GA/GC layered on
the DP-family plans (plus GA/GC on TP/PP-combined plans as evaluated in
Fig. 3b, e.g. ``TP+DP+GA`` and ``TP+DP+GC``).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.models.specs import ModelSpec
from repro.plans.memory import estimate_memory
from repro.plans.plan import ExecutionPlan, ZeroStage


@dataclass(frozen=True)
class PlanSpace:
    """Configuration of the enumeration search space.

    ``dp_family_only`` reproduces the paper's trace policy of disabling TP/PP
    for sub-1B models; ``fixed_zero``/``fixed_gc`` let baselines like Sia
    freeze the memory-optimization choices they cannot reason about.
    """

    dp_family_only: bool = False
    allow_zero: bool = True
    allow_offload: bool = True
    allow_ga: bool = True
    allow_gc: bool = True
    max_ga_steps: int = 64
    #: micro-batch counts for PP plans are chosen from p × these multipliers.
    #: Deep accumulation (large m) is what lets huge models shrink their
    #: per-pass activation footprint, so the range extends well past 4.
    micro_batch_multipliers: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)


DEFAULT_SPACE = PlanSpace()
DP_FAMILY_SPACE = PlanSpace(dp_family_only=True)


def _parallel_triples(
    model: ModelSpec, gpus: int, min_gpus_per_node: int, global_batch: int
) -> list[tuple[int, int, int]]:
    """All (d, t, p) with d·t·p == gpus satisfying structural divisibility."""
    triples = []
    for tp in _divisors(gpus):
        if not model.valid_tp(tp, node_limit=max(min_gpus_per_node, 1)):
            continue
        rest = gpus // tp
        for pp in _divisors(rest):
            if not model.valid_pp(pp):
                continue
            dp = rest // pp
            if global_batch % dp != 0:
                continue
            triples.append((dp, tp, pp))
    return triples


@lru_cache(maxsize=None)
def _divisors(n: int) -> tuple[int, ...]:
    return tuple(d for d in range(1, n + 1) if n % d == 0)


def _ga_options(per_rank_batch: int, space: PlanSpace) -> list[int]:
    """GA step counts: powers of two dividing the per-rank batch."""
    options = [1]
    if not space.allow_ga:
        return options
    a = 2
    while a <= min(per_rank_batch, space.max_ga_steps):
        if per_rank_batch % a == 0:
            options.append(a)
        a *= 2
    return options


def _micro_batch_options(
    per_rank_batch: int, pp: int, space: PlanSpace
) -> list[int]:
    """Micro-batch counts m for 1F1B: multiples of p dividing the rank batch."""
    options = []
    for mult in space.micro_batch_multipliers:
        m = pp * mult
        if m <= per_rank_batch and per_rank_batch % m == 0:
            options.append(m)
    if not options and per_rank_batch >= 1:
        # Fall back to the largest feasible micro-batch count <= p.
        for m in range(min(pp, per_rank_batch), 0, -1):
            if per_rank_batch % m == 0:
                options.append(m)
                break
    return options


def enumerate_plans(
    model: ModelSpec,
    global_batch: int,
    gpus: int,
    *,
    min_gpus_per_node: int = 8,
    gpu_mem_budget: float | None = None,
    space: PlanSpace = DEFAULT_SPACE,
) -> list[ExecutionPlan]:
    """Enumerate valid plans for ``gpus`` GPUs (optionally memory-filtered).

    Args:
        model: Architecture spec.
        global_batch: Job's fixed global batch size ``b``.
        gpus: Total GPUs of the hypothetical allocation.
        min_gpus_per_node: Smallest per-node GPU share of the placement; caps
            the TP degree (TP stays intra-node).
        gpu_mem_budget: If given, drop plans whose per-GPU footprint exceeds
            it (the OOM filter).
        space: Search-space restrictions.

    Returns:
        Deduplicated plans; empty if nothing fits.
    """
    if gpus <= 0:
        return []
    plans: list[ExecutionPlan] = []
    gc_options = (False, True) if space.allow_gc else (False,)
    for dp, tp, pp in _parallel_triples(model, gpus, min_gpus_per_node, global_batch):
        if space.dp_family_only and (tp > 1 or pp > 1):
            continue
        per_rank = global_batch // dp
        if pp > 1:
            for m in _micro_batch_options(per_rank, pp, space):
                for gc in gc_options:
                    plans.append(
                        ExecutionPlan(
                            dp=dp, tp=tp, pp=pp, micro_batches=m, gc=gc
                        )
                    )
        else:
            zero_stages: list[ZeroStage] = [ZeroStage.NONE]
            if tp == 1:
                if space.allow_zero:
                    zero_stages.append(ZeroStage.ZERO_DP)
                if space.allow_offload:
                    zero_stages.append(ZeroStage.OFFLOAD)
            for zero in zero_stages:
                for ga in _ga_options(per_rank, space):
                    for gc in gc_options:
                        plans.append(
                            ExecutionPlan(
                                dp=dp, tp=tp, pp=pp, zero=zero,
                                ga_steps=ga, gc=gc,
                            )
                        )
    if gpu_mem_budget is not None:
        plans = [
            plan
            for plan in plans
            if estimate_memory(model, plan, global_batch).gpu_total
            <= gpu_mem_budget
        ]
    return plans


def feasible_gpu_counts(
    model: ModelSpec,
    global_batch: int,
    max_gpus: int,
    *,
    gpus_per_node: int = 8,
    gpu_mem_budget: float | None = None,
    space: PlanSpace = DEFAULT_SPACE,
) -> list[int]:
    """GPU counts for which at least one plan is feasible.

    These are the "valid GPU numbers" of the paper's Fig. 6: partitioning
    constraints of DP/TP/PP (and memory) make only certain counts usable.
    """
    counts = []
    for gpus in range(1, max_gpus + 1):
        min_per_node = min(gpus, gpus_per_node)
        if gpus > gpus_per_node and gpus % gpus_per_node != 0:
            # Multi-node allocations are whole-node in the canonical packing;
            # ragged tails lower the TP bound to the remainder.
            min_per_node = gpus % gpus_per_node
        if enumerate_plans(
            model,
            global_batch,
            gpus,
            min_gpus_per_node=min_per_node,
            gpu_mem_budget=gpu_mem_budget,
            space=space,
        ):
            counts.append(gpus)
    return counts
