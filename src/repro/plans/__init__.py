"""Execution plans: representation, memory model and enumeration."""

from repro.plans.enumerate import (
    DEFAULT_SPACE,
    DP_FAMILY_SPACE,
    PlanSpace,
    enumerate_plans,
    feasible_gpu_counts,
)
from repro.plans.memory import (
    MemoryEstimate,
    estimate_memory,
    fits_gpu,
    host_mem_demand_per_node,
    min_cpus_demand,
)
from repro.plans.plan import ExecutionPlan, ZeroStage

__all__ = [
    "DEFAULT_SPACE",
    "DP_FAMILY_SPACE",
    "ExecutionPlan",
    "MemoryEstimate",
    "PlanSpace",
    "ZeroStage",
    "enumerate_plans",
    "estimate_memory",
    "feasible_gpu_counts",
    "fits_gpu",
    "host_mem_demand_per_node",
    "min_cpus_demand",
]
