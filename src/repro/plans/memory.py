"""GPU / host memory model for execution plans.

This module plays the role of DeepSpeed/Megatron's memory estimators in the
real Rubick (paper §6: "Rubick relies on the inherent capability of DeepSpeed
and Megatron to estimate the memory consumption").  It is the ground truth for
OOM feasibility in the synthetic testbed *and* the scheduler's ``AllocMem``
input (paper Alg. 1 line 21), which is faithful to the paper: both sides of
the system use the same framework-provided estimate.

Accounting (mixed-precision Adam, the paper's training setup):

* fp16 weights:           ``2·P`` bytes, partitioned by ``t·p``.
* fp16 gradients:         ``2·P`` bytes, partitioned by ``t·p``; additionally
                          by ``d`` under ZeRO-2; reduced to a one-layer bucket
                          under ZeRO-Offload (gradients stream to host).
* Adam states (fp32 master + 2 moments): ``12·P`` bytes, partitioned by
                          ``t·p``; additionally by ``d`` under ZeRO-2; moved
                          entirely to host under ZeRO-Offload.
* activations:            Megatron's per-layer estimate
                          ``s·mbs·h·(34 + 5·heads·s/h)`` bytes, divided by
                          ``t``; with GC only the 2-byte/elem layer-boundary
                          tensors persist plus one layer of recompute
                          workspace; pipeline stages hold up to ``min(m, p)``
                          in-flight micro-batches (1F1B).
* logits buffer:          ``6·mbs·s·vocab/t`` bytes for language models (fp16
                          logits + fp32 loss computation).
* workspace:              fixed cuBLAS/cuDNN + fragmentation slack.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.models.specs import ModelSpec
from repro.plans.plan import ExecutionPlan, ZeroStage
from repro.units import GiB

#: Megatron activation-memory coefficient: bytes per (token × hidden) per
#: layer without recomputation (attention + MLP intermediates, fp16).
ACT_BYTES_COEFF = 34.0
#: Attention-score term coefficient from the same estimate (5·heads·s/h).
ACT_ATTN_COEFF = 5.0
#: Bytes per element of a layer-boundary activation kept under GC (fp16).
GC_BOUNDARY_BYTES = 2.0
#: Fixed per-GPU workspace (cuBLAS/cuDNN handles, comm buffers, fragmentation).
WORKSPACE_BYTES = 1.5 * GiB
#: Host-memory base footprint per job (dataset cache, checkpoint staging).
HOST_BASE_BYTES = 4.0 * GiB
#: Host bytes per parameter held by ZeRO-Offload (fp32 master + 2 moments +
#: fp16 gradient copy = 14 bytes/param, partitioned across DP ranks — the sum
#: over ranks is the whole model).
OFFLOAD_HOST_BYTES_PER_PARAM = 14.0


@dataclass(frozen=True)
class MemoryEstimate:
    """Estimated footprint of (model, plan, batch) on one GPU and on hosts."""

    weights: float
    gradients: float
    optimizer: float
    activations: float
    logits: float
    workspace: float
    host_total: float  # summed over all nodes (job-wide host demand)

    @property
    def gpu_total(self) -> float:
        """Per-GPU device memory demand in bytes."""
        return (
            self.weights
            + self.gradients
            + self.optimizer
            + self.activations
            + self.logits
            + self.workspace
        )

    def breakdown(self) -> dict[str, float]:
        return {
            "weights": self.weights,
            "gradients": self.gradients,
            "optimizer": self.optimizer,
            "activations": self.activations,
            "logits": self.logits,
            "workspace": self.workspace,
        }


def _activation_bytes_per_layer(model: ModelSpec, mbs: int, tp: int) -> float:
    """Full (no-GC) activation bytes for one transformer layer, one micro-batch."""
    s, h = model.seq_len, model.hidden_size
    attn_term = ACT_ATTN_COEFF * model.num_heads * s / h
    return s * mbs * h * (ACT_BYTES_COEFF + attn_term) / tp


@lru_cache(maxsize=200_000)
def estimate_memory(
    model: ModelSpec,
    plan: ExecutionPlan,
    global_batch: int,
) -> MemoryEstimate:
    """Estimate the per-GPU and host memory footprint of a plan.

    Raises :class:`repro.errors.InfeasiblePlanError` if the plan is
    structurally invalid for the model/batch (via ``micro_batch_size``).
    All inputs are immutable value objects, so results are memoized.
    """
    p_count = model.param_count
    shard = plan.tp * plan.pp  # model-state partition factor of 3D parallelism
    mbs = plan.micro_batch_size(global_batch)

    weights = 2.0 * p_count / shard

    if plan.zero == ZeroStage.OFFLOAD:
        # Gradients stream to host in one-layer buckets.
        gradients = 2.0 * p_count / model.num_layers
    elif plan.zero == ZeroStage.ZERO_DP:
        gradients = 2.0 * p_count / (shard * plan.dp) + 2.0 * p_count / model.num_layers
    else:
        gradients = 2.0 * p_count / shard

    if plan.zero == ZeroStage.OFFLOAD:
        optimizer = 0.0
    elif plan.zero == ZeroStage.ZERO_DP:
        optimizer = 12.0 * p_count / (shard * plan.dp)
    else:
        optimizer = 12.0 * p_count / shard

    layers_per_stage = model.num_layers // plan.pp
    inflight = min(plan.micro_batches, plan.pp) if plan.pp > 1 else 1
    full_layer = _activation_bytes_per_layer(model, mbs, plan.tp)
    if plan.gc:
        boundary = GC_BOUNDARY_BYTES * model.seq_len * mbs * model.hidden_size / plan.tp
        activations = boundary * layers_per_stage * inflight + full_layer
    else:
        activations = full_layer * layers_per_stage * inflight

    if model.is_language_model:
        # Only the stage holding the LM head materializes logits; we size
        # per-GPU demand conservatively and charge every GPU as if it could
        # host the head (the last pipeline stage does).
        logits = 6.0 * mbs * model.seq_len * model.vocab_size / plan.tp
    else:
        logits = 0.0

    host_total = HOST_BASE_BYTES
    if plan.zero == ZeroStage.OFFLOAD:
        host_total += OFFLOAD_HOST_BYTES_PER_PARAM * p_count

    return MemoryEstimate(
        weights=weights,
        gradients=gradients,
        optimizer=optimizer,
        activations=activations,
        logits=logits,
        workspace=WORKSPACE_BYTES,
        host_total=host_total,
    )


def fits_gpu(
    model: ModelSpec,
    plan: ExecutionPlan,
    global_batch: int,
    gpu_mem_budget: float,
) -> bool:
    """Whether the plan's per-GPU footprint fits a device memory budget."""
    return estimate_memory(model, plan, global_batch).gpu_total <= gpu_mem_budget


@lru_cache(maxsize=200_000)
def host_mem_demand_per_node(
    model: ModelSpec,
    plan: ExecutionPlan,
    global_batch: int,
    gpus_on_node: int,
) -> float:
    """Host memory the job needs on a node holding ``gpus_on_node`` of its GPUs.

    ZeRO-Offload's host state is partitioned across DP ranks, so a node's
    share is proportional to the fraction of the job's GPUs it hosts.  This
    is the per-node quantity ``AllocMem`` (paper Alg. 1) reserves.
    """
    est = estimate_memory(model, plan, global_batch)
    frac = gpus_on_node / max(plan.num_gpus, 1)
    return est.host_total * frac


def min_cpus_demand(plan: ExecutionPlan, gpus: int) -> int:
    """Minimum CPUs a plan needs to run: one data-loading core per GPU."""
    del plan  # every plan shares the same floor; offload merely *benefits* from more
    return max(int(gpus), 1)
