"""Execution plans: the reconfigurable training strategies of paper §2.1/§3.

A plan combines Megatron-style 3D parallelism (DP × TP × PP), the ZeRO family
(ZeRO-DP a.k.a. ZeRO-2, and ZeRO-Offload), gradient accumulation (GA) and
gradient checkpointing (GC).  Rubick reconfigures jobs by switching between
plans while holding the global batch size fixed.

Structural rules implemented here (paper §3 "Rubick supports ..."):

* ZeRO variants extend *data parallelism*: they require ``tp == pp == 1``.
* GA applies to DP/ZeRO plans (``pp == 1``); pipeline plans micro-batch via
  ``micro_batches`` instead.
* GC composes with everything.
* TP groups stay inside a node (enforced at validation time against the
  placement's smallest per-node GPU share).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.errors import InfeasiblePlanError
from repro.models.specs import ModelSpec


class ZeroStage(IntEnum):
    """Which ZeRO memory optimization the plan uses.

    ``ZERO_DP`` follows the paper's default of ZeRO-2 (optimizer states and
    gradients partitioned across DP ranks); ``OFFLOAD`` is ZeRO-Offload
    (states and the optimizer step moved to host CPU/memory).
    """

    NONE = 0
    ZERO_DP = 2
    OFFLOAD = 3


@dataclass(frozen=True)
class ExecutionPlan:
    """One concrete execution plan.

    Attributes:
        dp: Data-parallel size ``d`` (model replicas).
        tp: Tensor-parallel size ``t`` (intra-layer partitions).
        pp: Pipeline-parallel size ``p`` (layer stages).
        zero: ZeRO stage (requires ``tp == pp == 1`` when not ``NONE``).
        ga_steps: Gradient-accumulation steps ``a`` (``pp == 1`` plans only).
        micro_batches: 1F1B micro-batch count ``m`` (``pp > 1`` plans only).
        gc: Whether gradient checkpointing (activation recomputation) is on.
    """

    dp: int = 1
    tp: int = 1
    pp: int = 1
    zero: ZeroStage = ZeroStage.NONE
    ga_steps: int = 1
    micro_batches: int = 1
    gc: bool = False

    def __post_init__(self) -> None:
        if min(self.dp, self.tp, self.pp) < 1:
            raise InfeasiblePlanError(f"parallel sizes must be >= 1: {self}")
        if self.ga_steps < 1 or self.micro_batches < 1:
            raise InfeasiblePlanError(f"GA steps / micro-batches must be >= 1: {self}")
        if self.zero != ZeroStage.NONE and (self.tp > 1 or self.pp > 1):
            raise InfeasiblePlanError(
                f"ZeRO plans are DP-based and cannot combine with TP/PP: {self}"
            )
        if self.pp > 1 and self.ga_steps > 1:
            raise InfeasiblePlanError(
                f"pipeline plans micro-batch via micro_batches, not GA: {self}"
            )
        if self.pp == 1 and self.micro_batches > 1:
            raise InfeasiblePlanError(
                f"micro_batches only applies to pipeline plans: {self}"
            )

    # ------------------------------------------------------------------
    # Derived sizes
    # ------------------------------------------------------------------
    @property
    def num_gpus(self) -> int:
        """Total GPUs the plan occupies (``d · t · p``, paper Table 1)."""
        return self.dp * self.tp * self.pp

    @property
    def uses_offload(self) -> bool:
        return self.zero == ZeroStage.OFFLOAD

    @property
    def uses_zero(self) -> bool:
        return self.zero != ZeroStage.NONE

    @property
    def is_pure_dp_family(self) -> bool:
        """DP/ZeRO family (no model partitioning)."""
        return self.tp == 1 and self.pp == 1

    def passes_per_iteration(self) -> int:
        """Forward/backward passes per mini-batch (GA steps or PP micro-batches)."""
        return self.micro_batches if self.pp > 1 else self.ga_steps

    def micro_batch_size(self, global_batch: int) -> int:
        """Per-DP-rank per-pass batch size (must divide evenly; see validate)."""
        denom = self.dp * self.passes_per_iteration()
        if global_batch % denom != 0:
            raise InfeasiblePlanError(
                f"global batch {global_batch} not divisible by dp×passes={denom} "
                f"for {self}"
            )
        return global_batch // denom

    # ------------------------------------------------------------------
    # Validation against a model and placement shape
    # ------------------------------------------------------------------
    def validate(
        self,
        model: ModelSpec,
        global_batch: int,
        *,
        min_gpus_per_node: int | None = None,
    ) -> None:
        """Raise :class:`InfeasiblePlanError` on any structural violation.

        ``min_gpus_per_node`` enforces the Megatron convention that TP groups
        stay within a node (paper §4.1: "TP is typically restricted inside
        each node").
        """
        if not model.valid_tp(self.tp, node_limit=self.tp):
            raise InfeasiblePlanError(
                f"{model.name}: tp={self.tp} does not divide heads/hidden"
            )
        if not model.valid_pp(self.pp):
            raise InfeasiblePlanError(
                f"{model.name}: pp={self.pp} does not divide {model.num_layers} layers"
            )
        if min_gpus_per_node is not None and self.tp > max(min_gpus_per_node, 1):
            raise InfeasiblePlanError(
                f"tp={self.tp} exceeds smallest per-node GPU share "
                f"{min_gpus_per_node} (TP must stay intra-node)"
            )
        # Batch divisibility (also checks dp | b).
        self.micro_batch_size(global_batch)

    def is_valid(
        self,
        model: ModelSpec,
        global_batch: int,
        *,
        min_gpus_per_node: int | None = None,
    ) -> bool:
        try:
            self.validate(
                model, global_batch, min_gpus_per_node=min_gpus_per_node
            )
            return True
        except InfeasiblePlanError:
            return False

    # ------------------------------------------------------------------
    # Naming (paper-style plan families for reports)
    # ------------------------------------------------------------------
    @property
    def family(self) -> str:
        """Coarse plan-family name as used in the paper's figures.

        Examples: ``DP``, ``DP+GA``, ``ZeRO-DP+GA``, ``ZeRO-Offload+GC``,
        ``TP+DP``, ``TP+PP``, ``3D``.
        """
        if self.uses_zero:
            base = "ZeRO-Offload" if self.uses_offload else "ZeRO-DP"
        elif self.is_pure_dp_family:
            base = "DP"
        else:
            dims = []
            if self.tp > 1:
                dims.append("TP")
            if self.pp > 1:
                dims.append("PP")
            if self.dp > 1:
                dims.append("DP")
            base = "3D" if len(dims) == 3 else "+".join(dims)
        suffixes = []
        if self.ga_steps > 1:
            suffixes.append("GA")
        if self.gc:
            suffixes.append("GC")
        return "+".join([base, *suffixes])

    def describe(self) -> str:
        """Full plan description with parallel sizes, e.g. ``TP(4)+PP(2)+DP(4)+GA(2)``."""
        parts = []
        if self.tp > 1:
            parts.append(f"TP({self.tp})")
        if self.pp > 1:
            parts.append(f"PP({self.pp})")
        if self.uses_offload:
            parts.append(f"ZeRO-Offload({self.dp})")
        elif self.uses_zero:
            parts.append(f"ZeRO-DP({self.dp})")
        elif self.dp > 1 or not parts:
            parts.append(f"DP({self.dp})")
        if self.pp > 1 and self.micro_batches > 1:
            parts.append(f"m={self.micro_batches}")
        if self.ga_steps > 1:
            parts.append(f"GA({self.ga_steps})")
        if self.gc:
            parts.append("GC")
        return "+".join(parts)

    def __repr__(self) -> str:
        return f"Plan[{self.describe()}]"
