"""Deterministic random-stream derivation.

Every stochastic component of the reproduction (testbed noise, trace
generation, the synthetic loss process) derives its randomness from an
explicit integer seed plus a string *scope*, so that independent subsystems
never share or perturb each other's streams and every experiment is
reproducible bit-for-bit.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(base_seed: int, *scope: object) -> int:
    """Derive a child seed from ``base_seed`` and a hashable scope path.

    The derivation is stable across processes and Python versions (it uses
    SHA-256 rather than ``hash()``, which is salted per process).
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(base_seed)).encode())
    for part in scope:
        hasher.update(b"\x00")
        hasher.update(repr(part).encode())
    return int.from_bytes(hasher.digest()[:8], "little")


def rng_for(base_seed: int, *scope: object) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for an isolated scope."""
    return np.random.default_rng(derive_seed(base_seed, *scope))
