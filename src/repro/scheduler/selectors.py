"""Plan selectors: how a policy maps a resource shape to an execution plan.

The full Rubick treats the entire plan space as reconfigurable; the ablation
variants and baselines restrict it (paper §7.3):

* :class:`BestPlanSelector` — full reconfigurability (Rubick, Rubick-E).
* :class:`ScaledDpSelector` — the plan *type* is frozen at submission; only
  the DP dimension scales with the GPU count (Rubick-R, and Sia's scaling
  approach for 3D-parallel jobs).
* :class:`FixedPlanSelector` — the submitted plan, verbatim, at exactly its
  GPU count (Rubick-N, Synergy, AntMan).

Selectors also expose sensitivity curves consistent with their restriction,
so slope-based ranking reflects what each policy can actually do.  All
scoring and memoization routes through the shared
:class:`~repro.planeval.PlanEvalEngine` (``analyzer.engine``): restricted
selectors hand the engine their candidate lists (``best_of``) and curve
builders (``curve_of``) under a restriction key, and the engine's per-model
refit versioning keeps every cached result consistent with online model
updates — the selectors hold no caches of their own.
"""

from __future__ import annotations

import abc

from repro.perfmodel.shape import ResourceShape
from repro.planeval import BestConfig, GpuCurve, PlanRequest
from repro.plans.plan import ExecutionPlan
from repro.scheduler.job import Job
from repro.scheduler.sensitivity import SensitivityAnalyzer


class PlanSelector(abc.ABC):
    """Maps (job, shape) -> best permitted plan, with matching curves."""

    def __init__(self, analyzer: SensitivityAnalyzer):
        self.analyzer = analyzer
        self.engine = analyzer.engine
        #: job_id -> (model refit version, job spec, curve).  A thin front
        #: for the engine's curve memo: slope ranking hits `curve()` many
        #: times per scheduling round, and the engine's generic lookup
        #: (restriction key build + plan-space hash) costs more than this
        #: one dict probe.  Entries are version-checked on every read, so a
        #: refit falls through to the engine exactly like a direct call —
        #: this is a cache of the *lookup*, never of stale results.  The
        #: stored spec guards identity: a recycled job_id from a different
        #: trace carries a different (kept-alive) spec object and misses.
        self._curve_front: dict[str, tuple[int, object, GpuCurve]] = {}

    @abc.abstractmethod
    def best(self, job: Job, shape: ResourceShape) -> BestConfig | None:
        """Best permitted plan for the job on an exact shape (or None)."""

    def best_many(
        self, pairs: list[tuple[Job, ResourceShape]]
    ) -> list[BestConfig | None]:
        """Batch form of :meth:`best` over many (job, shape) pairs.

        Results align positionally with ``pairs`` and are bit-identical to
        per-pair :meth:`best` calls.  The base implementation simply loops;
        selectors whose ``best`` is a pure engine request override it to
        route the whole batch through
        :meth:`~repro.planeval.PlanEvalEngine.best_of_many` so duplicate
        (model, batch, shape) entries collapse to one evaluation.
        """
        return [self.best(job, shape) for job, shape in pairs]

    @abc.abstractmethod
    def _build_curve(self, job: Job) -> GpuCurve:
        """Engine-backed curve under this selector's plan restriction."""

    def curve(self, job: Job) -> GpuCurve:
        """GPU sensitivity curve under this selector's plan restriction."""
        version = self.engine.scorer.version(job.model)
        cached = self._curve_front.get(job.job_id)
        if (
            cached is not None
            and cached[0] == version
            and cached[1] is job.spec
        ):
            return cached[2]
        curve = self._build_curve(job)
        self._curve_front[job.job_id] = (version, job.spec, curve)
        return curve

    # ------------------------------------------------------------------
    # Slopes shared by all selectors
    # ------------------------------------------------------------------
    def gpu_slope_up(self, job: Job, gpus: int) -> float:
        """Marginal gain of more GPUs, looking past gang-size plateaus."""
        return self.curve(job).lookahead_slope_up(gpus)

    def gpu_slope_down(self, job: Job, gpus: int) -> float:
        return self.curve(job).slope_down(gpus)

    def cpu_slope_up(self, job: Job, shape: ResourceShape) -> float:
        base = self.best(job, shape)
        more = self.best(job, shape.with_cpus(shape.cpus + 1))
        if base is None or more is None:
            return 0.0
        return more.throughput - base.throughput

    def cpu_slope_down(self, job: Job, shape: ResourceShape) -> float:
        if shape.cpus - 1 < max(shape.gpus, 1):
            return float("inf")
        base = self.best(job, shape)
        less = self.best(job, shape.with_cpus(shape.cpus - 1))
        if base is None or less is None:
            return float("inf")
        return base.throughput - less.throughput


class BestPlanSelector(PlanSelector):
    """Full plan reconfigurability: delegate to the shared analyzer."""

    def best(self, job: Job, shape: ResourceShape) -> BestConfig | None:
        return self.analyzer.best_for_shape(
            job.model, job.spec.global_batch, shape
        )

    def _build_curve(self, job: Job) -> GpuCurve:
        return self.analyzer.gpu_curve(job.model, job.spec.global_batch)


class ScaledDpSelector(PlanSelector):
    """Frozen plan type; only the DP size adapts to the GPU count.

    For a DP-family plan the DP size becomes the GPU count (GA re-chosen to
    keep the batch divisible).  For a 3D plan the TP/PP sizes are frozen and
    DP = gpus / (tp·pp) — the paper's description of Sia's claimed scaling.
    """

    def _candidates(
        self, job: Job, gpus: int, min_gpus_per_node: int
    ) -> list[ExecutionPlan]:
        base = job.spec.initial_plan
        batch = job.spec.global_batch
        shard = base.tp * base.pp
        if gpus % shard != 0:
            return []
        dp = gpus // shard
        if batch % dp != 0:
            return []
        if base.tp > max(min_gpus_per_node, 1):
            return []
        per_rank = batch // dp
        candidates = []
        if gpus == base.num_gpus:
            # Fallback semantics: the submitted plan itself is always a
            # candidate at its own GPU count (Sia "fallbacks to a feasible
            # 3D-parallel plan with the resource scaling disabled").
            candidates.append(base)
        if base.pp > 1:
            for mult in (1, 2, 4, 8, 16, 32, 64):
                m = base.pp * mult
                if m <= per_rank and per_rank % m == 0:
                    candidates.append(
                        ExecutionPlan(
                            dp=dp, tp=base.tp, pp=base.pp,
                            micro_batches=m, gc=base.gc,
                        )
                    )
            if not candidates:
                # Shallow pipelines (m < p) still run, just with bubbles.
                for m in range(min(base.pp, per_rank), 0, -1):
                    if per_rank % m == 0:
                        candidates.append(
                            ExecutionPlan(
                                dp=dp, tp=base.tp, pp=base.pp,
                                micro_batches=m, gc=base.gc,
                            )
                        )
                        break
        else:
            ga = 1
            while ga <= per_rank:
                if per_rank % ga == 0:
                    candidates.append(
                        ExecutionPlan(
                            dp=dp, tp=base.tp, pp=1, zero=base.zero,
                            ga_steps=ga, gc=base.gc,
                        )
                    )
                ga *= 2
        return list(dict.fromkeys(candidates))

    def best(self, job: Job, shape: ResourceShape) -> BestConfig | None:
        if shape.gpus <= 0:
            return None
        return self.engine.best_of(
            job.model,
            job.spec.global_batch,
            shape,
            lambda: self._candidates(job, shape.gpus, shape.min_gpus_per_node),
            key=("scaled_dp", job.spec.initial_plan),
            check_gpu_mem=True,
            check_host_mem=True,
        )

    def _build_curve(self, job: Job) -> GpuCurve:
        return self.engine.curve_of(
            job.model,
            job.spec.global_batch,
            ("scaled_dp", job.spec.initial_plan),
            lambda shape: self.best(job, shape),
            cpus_per_gpu=self.analyzer.cpus_per_gpu,
        )


class FixedPlanSelector(PlanSelector):
    """The submitted plan only, at exactly its GPU count."""

    def best(self, job: Job, shape: ResourceShape) -> BestConfig | None:
        plan = job.spec.initial_plan
        if shape.gpus != plan.num_gpus:
            return None
        if plan.tp > max(shape.min_gpus_per_node, 1):
            return None
        return self.engine.best_of(
            job.model,
            job.spec.global_batch,
            shape,
            (plan,),
            key=("fixed", plan),
        )

    def best_many(
        self, pairs: list[tuple[Job, ResourceShape]]
    ) -> list[BestConfig | None]:
        """One batched engine call for the whole pending queue.

        Pairs whose shape cannot host the submitted plan short-circuit to
        ``None`` exactly as :meth:`best` does; the rest become
        :class:`~repro.planeval.PlanRequest` entries resolved in one
        :meth:`~repro.planeval.PlanEvalEngine.best_of_many` pass.
        """
        out: list[BestConfig | None] = [None] * len(pairs)
        requests: list[PlanRequest] = []
        slots: list[int] = []
        for i, (job, shape) in enumerate(pairs):
            plan = job.spec.initial_plan
            if shape.gpus != plan.num_gpus:
                continue
            if plan.tp > max(shape.min_gpus_per_node, 1):
                continue
            requests.append(
                PlanRequest(
                    model=job.model,
                    global_batch=job.spec.global_batch,
                    shape=shape,
                    candidates=(plan,),
                    key=("fixed", plan),
                    check_host_mem=False,
                )
            )
            slots.append(i)
        for i, best in zip(slots, self.engine.best_of_many(requests)):
            out[i] = best
        return out

    def _build_curve(self, job: Job) -> GpuCurve:
        return self.engine.curve_of(
            job.model,
            job.spec.global_batch,
            ("fixed", job.spec.initial_plan),
            lambda shape: self.best(job, shape),
            cpus_per_gpu=self.analyzer.cpus_per_gpu,
        )
