"""Resource sensitivity curves (paper §5.2, Fig. 6).

A sensitivity curve gives, for each amount of one resource type (others held
fixed), the best achievable predicted throughput over *all* feasible execution
plans — the upper envelope of the per-plan curves.  The curves serve the
scheduling policy twice:

* their **slopes** rank jobs by marginal benefit, steering allocation toward
  the most sensitive jobs; and
* they factor execution planning out of the allocation search: the policy
  reasons over resource amounts and asks the curve for the matching best plan
  (``GetBestPlan``).

Curves depend only on (model type, batch, plan space), so they are cached
and shared across jobs of the same model type, mirroring the paper's reuse.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.resources import ResourceVector
from repro.cluster.topology import ClusterSpec
from repro.models.catalog import is_small_model
from repro.models.specs import ModelSpec
from repro.perfmodel.shape import ResourceShape
from repro.plans.enumerate import DEFAULT_SPACE, DP_FAMILY_SPACE, PlanSpace, enumerate_plans
from repro.plans.memory import host_mem_demand_per_node
from repro.plans.plan import ExecutionPlan
from repro.scheduler.interfaces import PerfModelStore
from repro.scheduler.job import Job

#: Default CPU:GPU ratio used when building curves ("other resources fixed").
DEFAULT_CPUS_PER_GPU = 4


def default_plan_space(model: ModelSpec) -> PlanSpace:
    """The paper's trace policy: sub-1B models use the DP plan family only."""
    return DP_FAMILY_SPACE if is_small_model(model) else DEFAULT_SPACE


@dataclass(frozen=True)
class BestConfig:
    """Best predicted configuration at one resource amount."""

    plan: ExecutionPlan
    throughput: float


@dataclass(frozen=True)
class GpuCurve:
    """Best-plan throughput vs. GPU count (upper envelope, Fig. 6).

    ``envelope[g]`` is the best throughput achievable with *up to* ``g`` GPUs
    — flat across GPU counts where no plan uses exactly ``g`` (the paper:
    "the curve remains flat for invalid GPU numbers").
    """

    max_gpus: int
    raw: tuple[BestConfig | None, ...]  # index g: best plan using exactly g GPUs
    envelope: tuple[float, ...]  # index g: best throughput with <= g GPUs
    envelope_config: tuple[BestConfig | None, ...]

    def throughput_at(self, gpus: int) -> float:
        gpus = max(0, min(gpus, self.max_gpus))
        return self.envelope[gpus]

    def config_at(self, gpus: int) -> BestConfig | None:
        gpus = max(0, min(gpus, self.max_gpus))
        return self.envelope_config[gpus]

    def slope_up(self, gpus: int, delta: int = 1) -> float:
        """Throughput gained by the next ``delta`` GPUs."""
        return (
            self.throughput_at(gpus + delta) - self.throughput_at(gpus)
        ) / delta

    def slope_down(self, gpus: int, delta: int = 1) -> float:
        """Throughput lost by giving up ``delta`` GPUs."""
        if gpus <= 0:
            return 0.0
        delta = min(delta, gpus)
        return (
            self.throughput_at(gpus) - self.throughput_at(gpus - delta)
        ) / delta

    def next_better_count(self, gpus: int) -> int | None:
        """Smallest GPU count above ``gpus`` where the envelope rises.

        Gang constraints make the envelope a step function; unit-slope
        signals read zero inside a flat run even when a large jump lies
        ahead (e.g. 8 -> 16 GPUs for a 3D-parallel job).
        """
        here = self.throughput_at(gpus)
        for g in range(max(gpus, 0) + 1, self.max_gpus + 1):
            if self.envelope[g] > here + 1e-12:
                return g
        return None

    def lookahead_slope_up(self, gpus: int) -> float:
        """Per-GPU gain to the next envelope rise (0 if the curve is done)."""
        nxt = self.next_better_count(gpus)
        if nxt is None:
            return 0.0
        return (self.throughput_at(nxt) - self.throughput_at(gpus)) / (
            nxt - gpus
        )


class SensitivityAnalyzer:
    """Builds and caches sensitivity curves and best-plan lookups."""

    def __init__(
        self,
        perf_store: PerfModelStore,
        cluster_spec: ClusterSpec,
        *,
        cpus_per_gpu: int = DEFAULT_CPUS_PER_GPU,
        plan_space_fn=default_plan_space,
    ):
        self.perf_store = perf_store
        self.cluster_spec = cluster_spec
        self.cpus_per_gpu = cpus_per_gpu
        self.plan_space_fn = plan_space_fn
        self._best_cache: dict[tuple, BestConfig | None] = {}
        self._curve_cache: dict[tuple, GpuCurve] = {}
        self._store_version = perf_store.version

    def _check_version(self) -> None:
        """Drop caches when the store was refitted (online model updates)."""
        if self.perf_store.version != self._store_version:
            self._best_cache.clear()
            self._curve_cache.clear()
            self._store_version = self.perf_store.version

    # ------------------------------------------------------------------
    # Best plan for a shape (GetBestPlan)
    # ------------------------------------------------------------------
    def best_for_shape(
        self,
        model: ModelSpec,
        global_batch: int,
        shape: ResourceShape,
        *,
        space: PlanSpace | None = None,
    ) -> BestConfig | None:
        """Highest-predicted-throughput feasible plan for an exact shape."""
        self._check_version()
        space = space if space is not None else self.plan_space_fn(model)
        key = (model.name, global_batch, shape, space)
        if key in self._best_cache:
            return self._best_cache[key]
        best = self._compute_best(model, global_batch, shape, space)
        self._best_cache[key] = best
        return best

    def _compute_best(
        self,
        model: ModelSpec,
        global_batch: int,
        shape: ResourceShape,
        space: PlanSpace,
    ) -> BestConfig | None:
        if shape.gpus <= 0:
            return None
        perf = self.perf_store.get(model)
        node = self.cluster_spec.node
        plans = enumerate_plans(
            model,
            global_batch,
            shape.gpus,
            min_gpus_per_node=shape.min_gpus_per_node,
            gpu_mem_budget=node.usable_gpu_mem,
            space=space,
        )
        best: BestConfig | None = None
        for plan in plans:
            # Host-memory capacity check: the densest node of the placement
            # must be able to hold its share of the plan's host state.
            densest = max(
                shape.min_gpus_per_node,
                -(-shape.gpus // max(shape.num_nodes, 1)),
            )
            if (
                host_mem_demand_per_node(model, plan, global_batch, densest)
                > node.host_mem
            ):
                continue
            thr = perf.throughput(plan, shape, global_batch)
            if best is None or thr > best.throughput:
                best = BestConfig(plan=plan, throughput=thr)
        return best

    # ------------------------------------------------------------------
    # GPU sensitivity curve
    # ------------------------------------------------------------------
    def gpu_curve(
        self,
        model: ModelSpec,
        global_batch: int,
        *,
        max_gpus: int | None = None,
        cpus_per_gpu: int | None = None,
        space: PlanSpace | None = None,
    ) -> GpuCurve:
        self._check_version()
        space = space if space is not None else self.plan_space_fn(model)
        cpg = cpus_per_gpu if cpus_per_gpu is not None else self.cpus_per_gpu
        limit = max_gpus if max_gpus is not None else self.cluster_spec.total_gpus
        key = (model.name, global_batch, limit, cpg, space)
        if key in self._curve_cache:
            return self._curve_cache[key]
        node_size = self.cluster_spec.node.num_gpus
        raw: list[BestConfig | None] = [None]
        for g in range(1, limit + 1):
            shape = ResourceShape.packed(
                g, node_size=node_size, cpus=min(g * cpg, self._cpu_cap(g))
            )
            raw.append(
                self.best_for_shape(model, global_batch, shape, space=space)
            )
        envelope = [0.0]
        env_cfg: list[BestConfig | None] = [None]
        for g in range(1, limit + 1):
            cand = raw[g]
            if cand is not None and cand.throughput > envelope[-1]:
                envelope.append(cand.throughput)
                env_cfg.append(cand)
            else:
                envelope.append(envelope[-1])
                env_cfg.append(env_cfg[-1])
        curve = GpuCurve(
            max_gpus=limit,
            raw=tuple(raw),
            envelope=tuple(envelope),
            envelope_config=tuple(env_cfg),
        )
        self._curve_cache[key] = curve
        return curve

    def _cpu_cap(self, gpus: int) -> int:
        """CPUs available to a job holding ``gpus`` packed GPUs."""
        node = self.cluster_spec.node
        nodes = -(-gpus // node.num_gpus)
        return nodes * node.num_cpus

    # ------------------------------------------------------------------
    # Slopes (per job, per resource type)
    # ------------------------------------------------------------------
    def gpu_slope_up(self, job: Job, gpus: int) -> float:
        curve = self.gpu_curve(job.model, job.spec.global_batch)
        return curve.slope_up(gpus)

    def gpu_slope_down(self, job: Job, gpus: int) -> float:
        curve = self.gpu_curve(job.model, job.spec.global_batch)
        return curve.slope_down(gpus)

    def cpu_slope(
        self,
        model: ModelSpec,
        global_batch: int,
        shape: ResourceShape,
        *,
        delta: int = 1,
        space: PlanSpace | None = None,
    ) -> float:
        """Marginal throughput per extra CPU at a fixed GPU shape."""
        base = self.best_for_shape(model, global_batch, shape, space=space)
        more = self.best_for_shape(
            model, global_batch, shape.with_cpus(shape.cpus + delta), space=space
        )
        if base is None or more is None:
            return 0.0
        return (more.throughput - base.throughput) / delta

    def cpu_slope_down(
        self,
        model: ModelSpec,
        global_batch: int,
        shape: ResourceShape,
        *,
        delta: int = 1,
        space: PlanSpace | None = None,
    ) -> float:
        if shape.cpus - delta < max(shape.gpus, 1):
            return float("inf")  # cannot drop below the 1-CPU/GPU floor
        base = self.best_for_shape(model, global_batch, shape, space=space)
        less = self.best_for_shape(
            model, global_batch, shape.with_cpus(shape.cpus - delta), space=space
        )
        if base is None or less is None:
            return float("inf")
        return (base.throughput - less.throughput) / delta

    # ------------------------------------------------------------------
    # Minimum resource demand (Alg. 1 preamble)
    # ------------------------------------------------------------------
    def find_min_res(
        self, job: Job
    ) -> tuple[ResourceVector, ExecutionPlan] | None:
        """Fewest resources (with best plan) matching the requested-config performance.

        Searches GPU counts ascending (then CPUs) for the first configuration
        whose best-plan predicted throughput reaches the predicted throughput
        of (requested resources, initial plan).  Never exceeds the request in
        any dimension (paper §5.2).  Returns ``None`` if nothing qualifies —
        the caller then falls back to the original request and plan.
        """
        spec = job.spec
        requested = spec.requested
        node_size = self.cluster_spec.node.num_gpus
        baseline_shape = ResourceShape.packed(
            requested.gpus, node_size=node_size, cpus=requested.cpus
        )
        perf = self.perf_store.get(job.model)
        try:
            baseline_thr = perf.throughput(
                spec.initial_plan, baseline_shape, spec.global_batch
            )
        except Exception:
            return None
        space = self.plan_space_fn(job.model)
        for gpus in range(1, requested.gpus + 1):
            cpu_options = sorted(
                {
                    min(gpus * mult, requested.cpus)
                    for mult in (1, 2, 4, 8)
                    if gpus * mult <= max(requested.cpus, gpus)
                }
            )
            if not cpu_options:
                cpu_options = [min(gpus, requested.cpus)]
            for cpus in cpu_options:
                shape = ResourceShape.packed(gpus, node_size=node_size, cpus=cpus)
                best = self.best_for_shape(
                    job.model, spec.global_batch, shape, space=space
                )
                if best is None or best.throughput < baseline_thr:
                    continue
                host = host_mem_demand_per_node(
                    job.model, best.plan, spec.global_batch, min(gpus, node_size)
                )
                min_res = ResourceVector(
                    gpus=gpus,
                    cpus=cpus,
                    host_mem=min(host, requested.host_mem)
                    if requested.host_mem
                    else host,
                )
                return min_res, best.plan
        return None
