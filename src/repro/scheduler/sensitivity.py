"""Resource sensitivity analysis (paper §5.2, Fig. 6) over the plan engine.

:class:`SensitivityAnalyzer` is the scheduler-facing frontend of the unified
plan-evaluation engine (`repro.planeval`): best-plan lookups and GPU
sensitivity curves delegate to the engine's memoized, refit-versioned
``best``/``curve`` service, while the slope helpers and the minimum-resource
search (Alg. 1 preamble) live here because they are policy concerns, not
scoring concerns.

The curve/best value types (:class:`BestConfig`, :class:`GpuCurve`) and
:func:`default_plan_space` are re-exported from `repro.planeval` for
backward compatibility — they are defined there so the engine, the
selectors, and the simulator can share them without import cycles.
"""

from __future__ import annotations

from repro.cluster.resources import ResourceVector
from repro.cluster.topology import ClusterSpec
from repro.models.specs import ModelSpec
from repro.perfmodel.shape import ResourceShape
from repro.planeval import (
    DEFAULT_CPUS_PER_GPU,
    BestConfig,
    GpuCurve,
    PlanEvalEngine,
    default_plan_space,
)
from repro.plans.enumerate import PlanSpace
from repro.plans.memory import host_mem_demand_per_node
from repro.plans.plan import ExecutionPlan
from repro.scheduler.interfaces import PerfModelStore
from repro.scheduler.job import Job

__all__ = [
    "BestConfig",
    "DEFAULT_CPUS_PER_GPU",
    "GpuCurve",
    "SensitivityAnalyzer",
    "bootstrap_analyzer",
    "default_plan_space",
]


def bootstrap_analyzer(policy, ctx) -> "SensitivityAnalyzer":
    """Lazy engine + analyzer construction shared by every policy.

    On first use, installs a :class:`PlanEvalEngine` on ``policy.engine``
    (unless one was injected) built from the scheduling context's perf store
    and the policy's CPU ratio, then wraps it in an analyzer.  Policies call
    this once from their ``schedule`` bootstrap so Rubick, its variants, and
    the baselines all share one memo space per policy instance.
    """
    if policy.engine is None:
        policy.engine = PlanEvalEngine(
            ctx.cluster_spec,
            perf_store=ctx.perf_store,
            cpus_per_gpu=policy.cpus_per_gpu,
        )
    return SensitivityAnalyzer(
        ctx.perf_store,
        ctx.cluster_spec,
        cpus_per_gpu=policy.cpus_per_gpu,
        engine=policy.engine,
    )


class SensitivityAnalyzer:
    """Sensitivity curves and best-plan lookups over a shared plan engine.

    Construction either wraps an existing :class:`PlanEvalEngine` (so a
    policy, its selectors, and its analyzer share one memo space) or builds
    a private engine over ``perf_store``.
    """

    def __init__(
        self,
        perf_store: PerfModelStore,
        cluster_spec: ClusterSpec,
        *,
        cpus_per_gpu: int = DEFAULT_CPUS_PER_GPU,
        plan_space_fn=default_plan_space,
        engine: PlanEvalEngine | None = None,
    ):
        if engine is not None:
            # best_for_shape/gpu_curve score through the engine while
            # find_min_res baselines against our store and cluster — with
            # mismatched backings the minimum-resource search would silently
            # compare predictions from different model generations or pack
            # shapes for a different node size.
            if engine.perf_store is not None and engine.perf_store is not perf_store:
                raise ValueError(
                    "injected engine is backed by a different PerfModelStore "
                    "than the analyzer"
                )
            if engine.cluster_spec is not cluster_spec:
                raise ValueError(
                    "injected engine is backed by a different ClusterSpec "
                    "than the analyzer"
                )
        self.perf_store = perf_store
        self.cluster_spec = cluster_spec
        self.cpus_per_gpu = cpus_per_gpu
        self.plan_space_fn = plan_space_fn
        self.engine = (
            engine
            if engine is not None
            else PlanEvalEngine(
                cluster_spec,
                perf_store=perf_store,
                cpus_per_gpu=cpus_per_gpu,
                plan_space_fn=plan_space_fn,
            )
        )

    # ------------------------------------------------------------------
    # Best plan for a shape (GetBestPlan)
    # ------------------------------------------------------------------
    def best_for_shape(
        self,
        model: ModelSpec,
        global_batch: int,
        shape: ResourceShape,
        *,
        space: PlanSpace | None = None,
    ) -> BestConfig | None:
        """Highest-predicted-throughput feasible plan for an exact shape."""
        space = space if space is not None else self.plan_space_fn(model)
        return self.engine.best(model, global_batch, shape, space=space)

    # ------------------------------------------------------------------
    # GPU sensitivity curve
    # ------------------------------------------------------------------
    def gpu_curve(
        self,
        model: ModelSpec,
        global_batch: int,
        *,
        max_gpus: int | None = None,
        cpus_per_gpu: int | None = None,
        space: PlanSpace | None = None,
    ) -> GpuCurve:
        space = space if space is not None else self.plan_space_fn(model)
        cpg = cpus_per_gpu if cpus_per_gpu is not None else self.cpus_per_gpu
        return self.engine.curve(
            model, global_batch, max_gpus=max_gpus, cpus_per_gpu=cpg,
            space=space,
        )

    def _cpu_cap(self, gpus: int) -> int:
        """CPUs available to a job holding ``gpus`` packed GPUs."""
        return self.engine.cpu_cap(gpus)

    # ------------------------------------------------------------------
    # Slopes (per job, per resource type)
    # ------------------------------------------------------------------
    def gpu_slope_up(self, job: Job, gpus: int) -> float:
        curve = self.gpu_curve(job.model, job.spec.global_batch)
        return curve.slope_up(gpus)

    def gpu_slope_down(self, job: Job, gpus: int) -> float:
        curve = self.gpu_curve(job.model, job.spec.global_batch)
        return curve.slope_down(gpus)

    def cpu_slope(
        self,
        model: ModelSpec,
        global_batch: int,
        shape: ResourceShape,
        *,
        delta: int = 1,
        space: PlanSpace | None = None,
    ) -> float:
        """Marginal throughput per extra CPU at a fixed GPU shape."""
        base = self.best_for_shape(model, global_batch, shape, space=space)
        more = self.best_for_shape(
            model, global_batch, shape.with_cpus(shape.cpus + delta), space=space
        )
        if base is None or more is None:
            return 0.0
        return (more.throughput - base.throughput) / delta

    def cpu_slope_down(
        self,
        model: ModelSpec,
        global_batch: int,
        shape: ResourceShape,
        *,
        delta: int = 1,
        space: PlanSpace | None = None,
    ) -> float:
        if shape.cpus - delta < max(shape.gpus, 1):
            return float("inf")  # cannot drop below the 1-CPU/GPU floor
        base = self.best_for_shape(model, global_batch, shape, space=space)
        less = self.best_for_shape(
            model, global_batch, shape.with_cpus(shape.cpus - delta), space=space
        )
        if base is None or less is None:
            return float("inf")
        return (base.throughput - less.throughput) / delta

    # ------------------------------------------------------------------
    # Minimum resource demand (Alg. 1 preamble)
    # ------------------------------------------------------------------
    def find_min_res(
        self, job: Job
    ) -> tuple[ResourceVector, ExecutionPlan] | None:
        """Fewest resources (with best plan) matching the requested-config performance.

        Searches GPU counts ascending (then CPUs) for the first configuration
        whose best-plan predicted throughput reaches the predicted throughput
        of (requested resources, initial plan).  Never exceeds the request in
        any dimension (paper §5.2).  Returns ``None`` if nothing qualifies —
        the caller then falls back to the original request and plan.
        """
        spec = job.spec
        requested = spec.requested
        node_size = self.cluster_spec.node.num_gpus
        baseline_shape = ResourceShape.packed(
            requested.gpus, node_size=node_size, cpus=requested.cpus
        )
        perf = self.perf_store.get(job.model)
        try:
            baseline_thr = perf.throughput(
                spec.initial_plan, baseline_shape, spec.global_batch
            )
        except (ValueError, ZeroDivisionError):
            # Unpredictable baseline (degenerate shape/iter time): callers
            # fall back to the original request and plan.
            return None
        space = self.plan_space_fn(job.model)
        for gpus in range(1, requested.gpus + 1):
            cpu_options = sorted(
                {
                    min(gpus * mult, requested.cpus)
                    for mult in (1, 2, 4, 8)
                    if gpus * mult <= max(requested.cpus, gpus)
                }
            )
            if not cpu_options:
                cpu_options = [min(gpus, requested.cpus)]
            for cpus in cpu_options:
                shape = ResourceShape.packed(gpus, node_size=node_size, cpus=cpus)
                best = self.best_for_shape(
                    job.model, spec.global_batch, shape, space=space
                )
                if best is None or best.throughput < baseline_thr:
                    continue
                host = host_mem_demand_per_node(
                    job.model, best.plan, spec.global_batch, min(gpus, node_size)
                )
                min_res = ResourceVector(
                    gpus=gpus,
                    cpus=cpus,
                    host_mem=min(host, requested.host_mem)
                    if requested.host_mem
                    else host,
                )
                return min_res, best.plan
        return None
