"""Job model: specs, lifecycle state, and SLA categories (paper §5.1).

Rubick classifies jobs as **guaranteed** (consume tenant quota; the system
must deliver at least the performance of their requested resources + original
plan) or **best-effort** (run opportunistically on free resources and may be
preempted).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.cluster.placement import Placement
from repro.cluster.resources import ResourceVector
from repro.models.specs import ModelSpec
from repro.plans.plan import ExecutionPlan


class JobPriority(enum.Enum):
    GUARANTEED = "guaranteed"
    BEST_EFFORT = "best_effort"


class JobStatus(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    PAUSED = "paused"  # reconfiguration (checkpoint-resume) in progress
    FINISHED = "finished"


@dataclass(frozen=True)
class JobSpec:
    """Immutable submission-time description of a job.

    ``total_samples`` is the job's work in training samples; the trace
    builder derives it from the trace duration and the measured throughput of
    (requested resources, initial plan), exactly as the paper translates
    durations into mini-batch targets (§7.3).
    """

    job_id: str
    model: ModelSpec
    global_batch: int
    requested: ResourceVector
    initial_plan: ExecutionPlan
    total_samples: float
    submit_time: float
    priority: JobPriority = JobPriority.GUARANTEED
    tenant: str = "default"

    def __post_init__(self) -> None:
        if self.total_samples <= 0:
            raise ValueError(f"{self.job_id}: total_samples must be positive")
        if self.requested.gpus < self.initial_plan.num_gpus:
            raise ValueError(
                f"{self.job_id}: initial plan needs {self.initial_plan.num_gpus} "
                f"GPUs but request is {self.requested.gpus}"
            )

    @property
    def is_guaranteed(self) -> bool:
        return self.priority == JobPriority.GUARANTEED


@dataclass
class Job:
    """Mutable runtime state of one job (owned by the simulator)."""

    spec: JobSpec
    status: JobStatus = JobStatus.QUEUED
    #: Arrival sequence number assigned by the simulator (0, 1, 2, … in
    #: admission order).  Completion records are emitted in arrival order
    #: within a round; the scale-mode loop detects completions from a heap
    #: (arbitrary tie order) and re-sorts by this.
    seq: int = 0
    #: Scale-mode lazy-advancement anchor: the last simulation time this
    #: job's progress/accounting was materialized to.  Unused (always 0.0)
    #: on the default per-round advancement path.
    anchor_time: float = 0.0
    samples_done: float = 0.0
    #: Current allocation (empty when queued/preempted).
    placement: Placement = field(default_factory=Placement.empty)
    plan: ExecutionPlan | None = None
    #: Ground-truth throughput of the current configuration (samples/s).
    throughput: float = 0.0
    start_time: float | None = None  # first time the job ran
    finish_time: float | None = None
    #: End of the in-flight reconfiguration pause, if status == PAUSED.
    pause_until: float = 0.0
    #: Aggregated statistics for the reconfiguration-penalty gate (§5.2) and
    #: the overhead accounting (§7.3).
    reconfig_count: int = 0
    reconfig_seconds: float = 0.0
    #: Held GPU-seconds spent inside reconfiguration pauses (held ≠ requested
    #: under Rubick, so overhead fractions must use this, not a product of
    #: ``reconfig_seconds`` and the request).
    reconfig_gpu_seconds: float = 0.0
    run_seconds: float = 0.0
    queue_seconds: float = 0.0
    last_queue_enter: float = 0.0
    #: Cluster-dynamics accounting (node failures / decommissions).  An
    #: eviction rolls ``samples_done`` back to the last checkpoint; the
    #: GPU-seconds that produced the destroyed progress accrue here, plus
    #: the held GPU-seconds of restart-penalty pause tails.
    restart_count: int = 0
    lost_gpu_seconds: float = 0.0
    #: Extra pause charged (once, on top of the reconfiguration delta) the
    #: next time this evicted job restarts — checkpoint refetch and
    #: re-scheduling cost a failure pays that a planned reconfig does not.
    pending_restart_penalty: float = 0.0
    #: Instant the current pause switches from checkpoint-resume (charged
    #: to the reconfiguration metrics) to restart penalty (charged to
    #: ``lost_gpu_seconds``).  +inf for ordinary pauses, so planned
    #: reconfigurations account exactly as before dynamics existed.
    penalty_pause_from: float = float("inf")
    #: Progress as of the last checkpoint.  Checkpoints are written at
    #: every configuration change (checkpoint-resume) and periodically
    #: while running (the simulator's ``checkpoint_interval``); an evicted
    #: job resumes from here.
    samples_at_checkpoint: float = 0.0
    run_seconds_at_checkpoint: float = 0.0
    #: The SLA baseline: ground-truth throughput of (requested resources,
    #: initial plan); filled in at submission by the simulator.
    baseline_throughput: float = 0.0
    #: Minimum resource demand found by the scheduler (Alg. 1); cached here.
    min_res: ResourceVector | None = None
    min_res_plan: ExecutionPlan | None = None
    #: ``(model_version, value)`` memo of the scheduler's baseline
    #: throughput prediction (requested resources + initial plan).  The
    #: prediction is a pure function of the immutable spec and the fitted
    #: model, so it is recomputed only when the model refits.
    baseline_pred_cache: tuple[int, float] | None = None

    # ------------------------------------------------------------------
    @property
    def job_id(self) -> str:
        return self.spec.job_id

    @property
    def model(self) -> ModelSpec:
        return self.spec.model

    @property
    def remaining_samples(self) -> float:
        return max(self.spec.total_samples - self.samples_done, 0.0)

    @property
    def is_active(self) -> bool:
        return self.status in (JobStatus.QUEUED, JobStatus.RUNNING, JobStatus.PAUSED)

    @property
    def is_running(self) -> bool:
        return self.status in (JobStatus.RUNNING, JobStatus.PAUSED)

    @property
    def jct(self) -> float | None:
        """Job completion time: finish - submit (None while active)."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.spec.submit_time

    def reconfig_gate_open(self, delta: float, threshold: float = 0.97) -> bool:
        """The paper's reconfiguration-frequency guard (DESIGN.md item 10).

        A job may be reconfigured only if ``(T - (N+1)·δ)/T`` exceeds the
        threshold, where ``T`` is its aggregated training time and ``N`` its
        reconfiguration count so far — i.e. the guard prices in the
        *prospective* reconfiguration it is being asked to approve, so the
        threshold still holds after the pause is paid.
        """
        total = self.run_seconds + self.reconfig_seconds
        if total <= 0.0:
            return True  # fresh jobs always may (re)configure
        return (total - (self.reconfig_count + 1) * delta) / total > threshold
