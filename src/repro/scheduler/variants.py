"""Factory functions for Rubick and its ablation variants (paper §7.3).

* **Rubick**   — full system: tuned resources + best plans.
* **Rubick-E** — only reconfigures execution plans, resources fixed.
* **Rubick-R** — only reallocates resources, plan type fixed (DP-scaled).
* **Rubick-N** — neither; just Rubick's admission/packing policy.

Every factory accepts ``engine=`` (a :class:`repro.planeval.PlanEvalEngine`)
so callers running several variants against the *same* fitted-model store
and cluster spec — e.g. a benchmark sweeping variants over one profiled
store — can hand them one memo space instead of each policy warming a
private one.  The engine must be backed by the store/cluster of the
scheduling context the policies will see; ``bootstrap_analyzer`` rejects a
mismatch.
"""

from __future__ import annotations

from repro.planeval import PlanEvalEngine
from repro.scheduler.rubick import RubickPolicy


def rubick(*, engine: PlanEvalEngine | None = None, **kwargs) -> RubickPolicy:
    policy = RubickPolicy(
        tune_resources=True, plan_mode="best", engine=engine, **kwargs
    )
    policy.name = "rubick"
    return policy


def rubick_e(*, engine: PlanEvalEngine | None = None, **kwargs) -> RubickPolicy:
    policy = RubickPolicy(
        tune_resources=False, plan_mode="best", engine=engine, **kwargs
    )
    policy.name = "rubick-e"
    return policy


def rubick_r(*, engine: PlanEvalEngine | None = None, **kwargs) -> RubickPolicy:
    # Growth is conservative for this variant: with the plan type frozen,
    # DP-scaling a job across nodes is exactly the regime where the fitted
    # model is least reliable (Sia's weakness the paper calls out), so the
    # variant only reallocates on (re)placement, not by growing running jobs.
    kwargs.setdefault("growth_mode", "never")
    policy = RubickPolicy(
        tune_resources=True, plan_mode="scaled_dp", engine=engine, **kwargs
    )
    policy.name = "rubick-r"
    return policy


def rubick_n(*, engine: PlanEvalEngine | None = None, **kwargs) -> RubickPolicy:
    policy = RubickPolicy(
        tune_resources=False, plan_mode="fixed", engine=engine, **kwargs
    )
    policy.name = "rubick-n"
    return policy
