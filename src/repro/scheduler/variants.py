"""Factory functions for Rubick and its ablation variants (paper §7.3).

* **Rubick**   — full system: tuned resources + best plans.
* **Rubick-E** — only reconfigures execution plans, resources fixed.
* **Rubick-R** — only reallocates resources, plan type fixed (DP-scaled).
* **Rubick-N** — neither; just Rubick's admission/packing policy.
"""

from __future__ import annotations

from repro.scheduler.rubick import RubickPolicy


def rubick(**kwargs) -> RubickPolicy:
    policy = RubickPolicy(tune_resources=True, plan_mode="best", **kwargs)
    policy.name = "rubick"
    return policy


def rubick_e(**kwargs) -> RubickPolicy:
    policy = RubickPolicy(tune_resources=False, plan_mode="best", **kwargs)
    policy.name = "rubick-e"
    return policy


def rubick_r(**kwargs) -> RubickPolicy:
    # Growth is conservative for this variant: with the plan type frozen,
    # DP-scaling a job across nodes is exactly the regime where the fitted
    # model is least reliable (Sia's weakness the paper calls out), so the
    # variant only reallocates on (re)placement, not by growing running jobs.
    kwargs.setdefault("growth_mode", "never")
    policy = RubickPolicy(tune_resources=True, plan_mode="scaled_dp", **kwargs)
    policy.name = "rubick-r"
    return policy


def rubick_n(**kwargs) -> RubickPolicy:
    policy = RubickPolicy(tune_resources=False, plan_mode="fixed", **kwargs)
    policy.name = "rubick-n"
    return policy
