"""Named registry of every scheduling policy the toolkit ships.

One table maps CLI/sweep policy names to zero-argument factories.  It lives
here — below the CLI and the experiment runner — so that spawn-based sweep
workers can rebuild policies from a bare name without importing ``repro.cli``
(which would be a circular import: the CLI itself consumes the experiments
subsystem).
"""

from __future__ import annotations

from repro.scheduler.baselines import (
    AntManPolicy,
    SiaPolicy,
    SimpleEqualPolicy,
    SynergyPolicy,
)
from repro.scheduler.interfaces import SchedulerPolicy
from repro.scheduler.variants import rubick, rubick_e, rubick_n, rubick_r

POLICIES = {
    "rubick": rubick,
    "rubick-e": rubick_e,
    "rubick-r": rubick_r,
    "rubick-n": rubick_n,
    "sia": SiaPolicy,
    "synergy": SynergyPolicy,
    "antman": AntManPolicy,
    "simple": SimpleEqualPolicy,
}


def make_policy(name: str) -> SchedulerPolicy:
    """Instantiate a fresh policy by registry name."""
    try:
        factory = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; known: {sorted(POLICIES)}"
        ) from None
    return factory()
