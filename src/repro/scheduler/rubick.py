"""The Rubick scheduling policy (paper §5, Algorithm 1).

Each round the policy:

1. computes every guaranteed job's **minimum resource demand** — the fewest
   resources (with a possibly better plan) matching the predicted performance
   of its requested resources + original plan;
2. schedules **privileged** queued guaranteed jobs (those whose minimum
   demand fits the tenant's remaining quota), FIFO;
3. walks best-effort + running jobs in **descending slope order**, growing
   each by free resources and by **shrinking the least-sensitive over-minimum
   job** on each node (Alg. 1 lines 8–16), one Δr = 1 GPU / 1 CPU at a time;
4. picks the best execution plan for each resulting placement
   (``GetBestPlan``) and reserves host memory per the framework's estimate
   (``AllocMem``).

Deviation from the paper recorded in DESIGN.md: slopes are normalized by each
job's predicted baseline throughput (its requested-resources performance), so
cross-model comparisons are in *speedup* units rather than raw samples/s —
otherwise high-throughput small models would always dominate large ones.
This matches the speedup framing the paper itself uses in Fig. 8.

Resource/plan modes make this class the engine for all four Rubick variants:

=============  ==================  ======================
Variant        resources           plans
=============  ==================  ======================
Rubick         tuned (Alg. 1)      best over full space
Rubick-E       fixed at request    best over full space
Rubick-R       tuned (Alg. 1)      DP-scaled initial plan
Rubick-N       fixed at request    initial plan only
=============  ==================  ======================
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.placement import Placement
from repro.cluster.soa import FreeGpuIndex
from repro.cluster.resources import ResourceVector
from repro.cluster.state import Cluster
from repro.perfmodel.shape import ResourceShape
from repro.planeval import BestConfig, PlanEvalEngine
from repro.plans.memory import host_mem_demand_per_node
from repro.scheduler.interfaces import (
    Allocation,
    SchedulerPolicy,
    SchedulingContext,
)
from repro.scheduler.job import Job, JobStatus
from repro.scheduler.selectors import (
    BestPlanSelector,
    FixedPlanSelector,
    PlanSelector,
    ScaledDpSelector,
)
from repro.scheduler.sensitivity import SensitivityAnalyzer, bootstrap_analyzer

#: Slope below which an extra GPU is considered useless to a job.
_EPS_SLOPE = 1e-9

#: Shared zero vector: `share_of` misses are on the acquisition hot path.
_ZERO_SHARE = ResourceVector.zero()


@dataclass
class _NodeState:
    """Speculative per-node bookkeeping for one scheduling round."""

    node_id: int
    free: ResourceVector
    host_free: float
    shares: dict[str, ResourceVector] = field(default_factory=dict)

    def share_of(self, job_id: str) -> ResourceVector:
        share = self.shares.get(job_id)
        return share if share is not None else _ZERO_SHARE


class _RoundState:
    """All speculative allocations of one scheduling round, with undo.

    Per-job GPU/CPU totals are carried incrementally across the journal —
    every ``move``/``take``/``rollback`` adjusts integer counters — so the
    O(jobs × nodes) re-aggregation the acquisition loop used to pay on every
    slope probe is now a dict lookup.  Host memory is deliberately *not*
    totalled: no Alg.-1 decision reads it (it is reserved per node at commit
    time), and float counters would drift under undo where integers cannot.
    """

    def __init__(self, cluster: Cluster, jobs: list[Job]):
        running_ids = {j.job_id for j in jobs if j.is_running}
        self.nodes: list[_NodeState] = []
        self._totals: dict[str, list[int]] = {}  # job_id -> [gpus, cpus]
        #: job_id -> node ids where the job holds a (speculative) share.
        #: Lets the per-job scans (shape/placement/CPU tuning/trim/mem)
        #: walk the job's footprint instead of every node in the cluster.
        self._job_nodes: dict[str, set[int]] = {}
        frees: list[int] = []
        for node in cluster.nodes:
            # Carry over GPU/CPU shares of running jobs; host memory is
            # re-reserved from scratch at commit time (AllocMem), so it is
            # stripped here to avoid double counting.
            shares = {}
            used_gpus = used_cpus = 0
            for job_id, share in node.allocations.items():
                if job_id not in running_ids:
                    continue
                shares[job_id] = ResourceVector(share.gpus, share.cpus, 0.0)
                used_gpus += share.gpus
                used_cpus += share.cpus
                self._job_nodes.setdefault(job_id, set()).add(node.node_id)
                total = self._totals.get(job_id)
                if total is None:
                    self._totals[job_id] = [share.gpus, share.cpus]
                else:
                    total[0] += share.gpus
                    total[1] += share.cpus
            free = (node.capacity - ResourceVector(
                used_gpus, used_cpus, 0.0
            )).clamp_floor()
            frees.append(free.gpus)
            self.nodes.append(
                _NodeState(
                    node_id=node.node_id,
                    free=free,
                    host_free=node.capacity.host_mem,
                    shares=shares,
                )
            )
        #: Nodes bucketed by speculative free-GPU count: iterating it
        #: most-free-first reproduces the stable sort `_node_order` used to
        #: pay per call.
        self._free_index = FreeGpuIndex.from_array(
            np.asarray(frees, dtype=np.int64), cluster.spec.node.num_gpus
        )
        self._undo: list[tuple] = []

    # ------------------------------------------------------------------
    # Index maintenance (every shares/free mutation routes through these)
    # ------------------------------------------------------------------
    def _set_share(
        self, node: _NodeState, job_id: str, share: ResourceVector | None
    ) -> None:
        """Write one share and keep the job→nodes membership in lockstep."""
        if share is None:
            if node.shares.pop(job_id, None) is not None:
                on_nodes = self._job_nodes.get(job_id)
                if on_nodes is not None:
                    on_nodes.discard(node.node_id)
                    if not on_nodes:
                        del self._job_nodes[job_id]
        else:
            node.shares[job_id] = share
            self._job_nodes.setdefault(job_id, set()).add(node.node_id)

    def _set_free(self, node: _NodeState, free: ResourceVector) -> None:
        if free.gpus != node.free.gpus:
            self._free_index.update(node.node_id, free.gpus)
        node.free = free

    def job_node_ids(self, job_id: str) -> list[int]:
        """The job's footprint, ascending node id (matches full-scan order)."""
        on_nodes = self._job_nodes.get(job_id)
        return sorted(on_nodes) if on_nodes else []

    # ------------------------------------------------------------------
    def gpus_of(self, job_id: str) -> int:
        total = self._totals.get(job_id)
        return total[0] if total is not None else 0

    def cpus_of(self, job_id: str) -> int:
        total = self._totals.get(job_id)
        return total[1] if total is not None else 0

    def totals(self, job_id: str) -> ResourceVector:
        """GPU/CPU totals as a vector (host memory is not tracked, see above)."""
        total = self._totals.get(job_id)
        if total is None:
            return ResourceVector.zero()
        return ResourceVector(total[0], total[1], 0.0)

    def _adjust_total(self, job_id: str, dgpus: int, dcpus: int) -> None:
        total = self._totals.get(job_id)
        if total is None:
            self._totals[job_id] = [dgpus, dcpus]
        else:
            total[0] += dgpus
            total[1] += dcpus

    def shape_of(self, job_id: str, cpus_override: int | None = None) -> ResourceShape:
        gpu_shares = [
            gpus
            for node_id in self.job_node_ids(job_id)
            if (gpus := self.nodes[node_id].share_of(job_id).gpus) > 0
        ]
        return ResourceShape(
            gpus=self.gpus_of(job_id),
            num_nodes=len(gpu_shares),
            min_gpus_per_node=min(gpu_shares) if gpu_shares else 0,
            cpus=cpus_override if cpus_override is not None else self.cpus_of(job_id),
        )

    def placement_of(self, job_id: str) -> Placement:
        return Placement(
            {
                node_id: share
                for node_id in self.job_node_ids(job_id)
                if not (share := self.nodes[node_id].share_of(job_id)).is_zero
            }
        )

    # ------------------------------------------------------------------
    # Mutations (all journaled for rollback)
    # ------------------------------------------------------------------
    def mark(self) -> int:
        return len(self._undo)

    def rollback(self, mark: int) -> None:
        while len(self._undo) > mark:
            node, job_id, prev_share, prev_free, prev_host = self._undo.pop()
            current = node.share_of(job_id)
            self._adjust_total(
                job_id,
                prev_share.gpus - current.gpus,
                prev_share.cpus - current.cpus,
            )
            self._set_share(node, job_id, None if prev_share.is_zero else prev_share)
            self._set_free(node, prev_free)
            node.host_free = prev_host

    def _journal(self, node: _NodeState, job_id: str) -> None:
        self._undo.append(
            (node, job_id, node.share_of(job_id), node.free, node.host_free)
        )

    def move(self, node: _NodeState, job_id: str, delta: ResourceVector) -> None:
        """Give ``delta`` from the node's free pool to ``job_id`` (journaled)."""
        self._journal(node, job_id)
        self._set_share(node, job_id, node.share_of(job_id) + delta)
        self._set_free(node, (node.free - delta).clamp_floor())
        self._adjust_total(job_id, delta.gpus, delta.cpus)

    def take(self, node: _NodeState, job_id: str, delta: ResourceVector) -> None:
        """Return ``delta`` from ``job_id`` to the node's free pool (journaled)."""
        self._journal(node, job_id)
        share = node.share_of(job_id)
        new_share = (share - delta).clamp_floor()
        self._set_share(node, job_id, None if new_share.is_zero else new_share)
        self._set_free(node, node.free + delta)
        # The clamp may remove less than ``delta``; totals track what the
        # share actually lost.
        self._adjust_total(
            job_id, new_share.gpus - share.gpus, new_share.cpus - share.cpus
        )

    def reserve_host(self, node: _NodeState, job_id: str, amount: float) -> bool:
        if amount > node.host_free + 1e-6:
            return False
        self._journal(node, job_id)
        share = node.share_of(job_id)
        self._set_share(node, job_id, ResourceVector(
            share.gpus, share.cpus, share.host_mem + amount
        ))
        node.host_free -= amount
        return True


class RubickPolicy(SchedulerPolicy):
    """Rubick and its ablation variants (see module docstring)."""

    name = "rubick"
    reactive = True

    def steady_state(self, jobs: list[Job], ctx: SchedulingContext) -> bool:
        """Tick-only rounds may be skipped once no clock trigger is pending.

        Rubick reads the clock in exactly two places.  The best-effort
        starvation guard: a *queued best-effort* job crossing
        ``ctx.starvation_threshold`` jumps the slope ranking, so while one
        is waiting the policy must keep running (queued *guaranteed* jobs
        are FIFO by submit time — pure state — and block nothing).  And
        :meth:`Job.reconfig_gate_open`, whose ratio only *grows* while a job
        trains without reconfiguring: a gate that is open at decision time
        stays open until the next allocation change — which ends the steady
        state anyway — whereas a closed gate may open later and unlock
        growth the last decision rejected, so the policy must keep being
        invoked until every gate is open.
        """
        for job in jobs:
            if job.status == JobStatus.QUEUED:
                if not job.spec.is_guaranteed:
                    return False  # the starvation guard is clock-driven
            elif not job.reconfig_gate_open(ctx.reconfig_delta):
                return False
        return True

    def __init__(
        self,
        *,
        tune_resources: bool = True,
        plan_mode: str = "best",  # "best" | "scaled_dp" | "fixed"
        cpus_per_gpu: int = 4,
        replan_improvement_threshold: float = 0.15,
        growth_mode: str = "always",  # "never" | "slack" | "always"
        engine: PlanEvalEngine | None = None,
    ):
        if growth_mode not in ("never", "slack", "always"):
            raise ValueError(f"unknown growth mode {growth_mode!r}")
        self.tune_resources = tune_resources
        self.plan_mode = plan_mode
        self.cpus_per_gpu = cpus_per_gpu
        self.replan_improvement_threshold = replan_improvement_threshold
        self.growth_mode = growth_mode
        #: The shared plan-evaluation engine; built lazily from the first
        #: scheduling context unless injected (e.g. by the CLI for stats).
        self.engine = engine
        self._analyzer: SensitivityAnalyzer | None = None
        self._selector: PlanSelector | None = None

    # ------------------------------------------------------------------
    # Lazy per-context construction (the engine memoizes across rounds)
    # ------------------------------------------------------------------
    def _ensure_helpers(self, ctx: SchedulingContext) -> PlanSelector:
        if self._analyzer is None:
            self._analyzer = bootstrap_analyzer(self, ctx)
        if self._selector is None:
            if self.plan_mode == "best":
                self._selector = BestPlanSelector(self._analyzer)
            elif self.plan_mode == "scaled_dp":
                self._selector = ScaledDpSelector(self._analyzer)
            elif self.plan_mode == "fixed":
                self._selector = FixedPlanSelector(self._analyzer)
            else:
                raise ValueError(f"unknown plan mode {self.plan_mode!r}")
        return self._selector

    # ------------------------------------------------------------------
    # Per-job derived quantities
    # ------------------------------------------------------------------
    def _baseline_pred(self, job: Job, ctx: SchedulingContext) -> float:
        """Predicted throughput of (requested resources, initial plan).

        Memoized on the job against the model's refit generation — the
        inputs are the immutable spec and the fitted model, so the per-round
        rebuild of the baseline table costs one dict lookup per job until a
        refit lands.
        """
        version = ctx.perf_store.model_version(job.model.name)
        cached = job.baseline_pred_cache
        if cached is not None and cached[0] == version:
            return cached[1]
        perf = ctx.perf_store.get(job.model)
        shape = ResourceShape.packed(
            job.spec.requested.gpus,
            node_size=ctx.cluster_spec.node.num_gpus,
            cpus=job.spec.requested.cpus,
        )
        try:
            value = perf.throughput(
                job.spec.initial_plan, shape, job.spec.global_batch
            )
        except (ValueError, ZeroDivisionError):
            # Degenerate shape or zero predicted iter time: score the job
            # with a neutral baseline rather than blocking the round.
            value = 1.0
        job.baseline_pred_cache = (version, value)
        return value

    def _ensure_min_res(self, job: Job, ctx: SchedulingContext) -> None:
        """Compute and cache the job's minimum resource demand (Alg. 1 text).

        The search runs through the policy's plan selector, so each variant
        computes the minimum demand it can actually honor: full Rubick may
        shrink a job to very few GPUs with a better plan; Rubick-R only along
        the DP dimension; fixed-plan variants keep the request.
        """
        if job.min_res is not None:
            return
        if not job.spec.is_guaranteed:
            job.min_res = ResourceVector.zero()
            job.min_res_plan = None
            return
        found = self._find_min_res(job, ctx)
        if found is not None:
            job.min_res, job.min_res_plan = found
        else:
            # Fall back to the original request and plan.
            job.min_res = job.spec.requested
            job.min_res_plan = job.spec.initial_plan

    def _find_min_res(
        self, job: Job, ctx: SchedulingContext
    ) -> tuple[ResourceVector, object] | None:
        """Fewest resources whose selector-best plan matches the baseline."""
        assert self._selector is not None
        if not self.tune_resources:
            return None  # fixed-resource variants guarantee exact resources
        baseline = self._baseline_pred(job, ctx)
        requested = job.spec.requested
        node_size = ctx.cluster_spec.node.num_gpus
        for gpus in range(1, requested.gpus + 1):
            cpus = min(gpus * self.cpus_per_gpu, max(requested.cpus, gpus))
            shape = ResourceShape.packed(gpus, node_size=node_size, cpus=cpus)
            best = self._selector.best(job, shape)
            if best is None or best.throughput < baseline:
                continue
            host = host_mem_demand_per_node(
                job.model, best.plan, job.spec.global_batch,
                min(gpus, node_size),
            )
            return (
                ResourceVector(gpus=gpus, cpus=cpus, host_mem=host),
                best.plan,
            )
        return None

    # ------------------------------------------------------------------
    # The policy
    # ------------------------------------------------------------------
    def schedule(
        self,
        jobs: list[Job],
        cluster: Cluster,
        ctx: SchedulingContext,
    ) -> dict[str, Allocation]:
        selector = self._ensure_helpers(ctx)
        active = [j for j in jobs if j.is_active]
        if not active:
            return {}
        by_id = {j.job_id: j for j in active}
        for job in active:
            self._ensure_min_res(job, ctx)
        baselines = {j.job_id: max(self._baseline_pred(j, ctx), 1e-9) for j in active}

        state = _RoundState(cluster, active)

        # --- 1. privileged queued guaranteed jobs (within quota), FIFO ----
        quota_used: dict[str, int] = {}
        for job in active:
            if job.spec.is_guaranteed and job.is_running:
                quota_used[job.spec.tenant] = (
                    quota_used.get(job.spec.tenant, 0) + job.min_res.gpus
                )
        queued_guaranteed = sorted(
            (
                j
                for j in active
                if j.status == JobStatus.QUEUED and j.spec.is_guaranteed
            ),
            key=lambda j: j.spec.submit_time,
        )
        scheduled: set[str] = set()
        for job in queued_guaranteed:
            tenant = job.spec.tenant
            if (
                quota_used.get(tenant, 0) + job.min_res.gpus
                > ctx.tenant_quota(tenant)
            ):
                continue
            if self._schedule_job(job, state, by_id, baselines, selector, ctx):
                quota_used[tenant] = quota_used.get(tenant, 0) + job.min_res.gpus
                scheduled.add(job.job_id)

        # --- 2. best-effort + running jobs by slope (with starvation guard)
        rest = [
            j
            for j in active
            if j.job_id not in scheduled
            and (
                j.is_running
                or (j.status == JobStatus.QUEUED and not j.spec.is_guaranteed)
            )
        ]

        def starving(j: Job) -> bool:
            return (
                j.status == JobStatus.QUEUED
                and (ctx.now - j.last_queue_enter) > ctx.starvation_threshold
            )

        def sort_key(j: Job) -> tuple:
            gpus = state.gpus_of(j.job_id)
            slope = selector.gpu_slope_up(j, gpus) / baselines[j.job_id]
            cpu_slope = 0.0
            return (starving(j), slope, cpu_slope, -j.spec.submit_time)

        queue_pressure = any(
            j.status == JobStatus.QUEUED and j.job_id not in scheduled
            for j in active
        )
        for job in sorted(rest, key=sort_key, reverse=True):
            if not self.tune_resources and job.is_running:
                continue  # fixed-resource variants leave running jobs alone
            if job.is_running:
                if self.growth_mode == "never":
                    continue
                if self.growth_mode == "slack" and queue_pressure:
                    # Queue-first work conservation: free resources go to
                    # waiting jobs before running jobs are grown (growing now
                    # would just be reclaimed — with a restart — shortly).
                    continue
                if not job.reconfig_gate_open(ctx.reconfig_delta):
                    continue  # reconfiguration-frequency guard
            self._schedule_job(job, state, by_id, baselines, selector, ctx)

        # --- 3. commit: pick plans, trim, build allocations ----------------
        return self._commit(active, state, selector, ctx)

    # ------------------------------------------------------------------
    # ScheduleJob (Alg. 1 lines 6-24)
    # ------------------------------------------------------------------
    def _schedule_job(
        self,
        job: Job,
        state: _RoundState,
        by_id: dict[str, Job],
        baselines: dict[str, float],
        selector: PlanSelector,
        ctx: SchedulingContext,
    ) -> bool:
        mark = state.mark()
        min_res = job.min_res or ResourceVector.zero()
        target_gpus = max(self._target_gpus(job, selector, ctx), min_res.gpus)

        # Record the incumbent configuration's predicted throughput so a
        # voluntary change never commits a regression (curve slopes are
        # computed on packed shapes; the concrete placement may be ragged).
        incumbent = None
        if job.is_running:
            incumbent = selector.best(job, state.shape_of(job.job_id))

        node_order = self._node_order(job, state)
        for node in node_order:
            if state.gpus_of(job.job_id) >= target_gpus:
                break
            self._acquire_gpus_on_node(
                job, node, state, by_id, baselines, selector, target_gpus, min_res
            )
        self._tune_cpus(job, state, by_id, baselines, selector, min_res)

        total_gpus = state.gpus_of(job.job_id)
        needed_gpus = max(min_res.gpus, 1)
        if total_gpus < needed_gpus or total_gpus == 0:
            state.rollback(mark)
            return False
        best = selector.best(job, state.shape_of(job.job_id))
        if best is None and self.tune_resources:
            best = self._trim_to_feasible(job, state, selector, needed_gpus)
        if best is None:
            state.rollback(mark)
            return False
        if incumbent is not None and best.throughput <= incumbent.throughput * (
            1.0 + self.replan_improvement_threshold
        ):
            # Voluntary change not worth a checkpoint-restart.
            state.rollback(mark)
            return False
        return True

    def _trim_to_feasible(
        self,
        job: Job,
        state: _RoundState,
        selector: PlanSelector,
        needed_gpus: int,
    ) -> BestConfig | None:
        """Salvage an acquisition whose exact total has no feasible plan.

        Acquisition steers by lookahead slopes toward the next envelope
        rise, so it can run out of reclaimable resources mid-plateau at a
        GPU count no plan uses exactly (e.g. 23 GPUs for a DP-family model,
        whose DP degree must divide the global batch).  Without a fallback
        the whole acquisition rolls back and the job retries — and can
        starve for as long as the cluster stays in that state.  Instead,
        trim down to the curve's best feasible count within what was
        acquired and replan there.
        """
        total = state.gpus_of(job.job_id)
        curve = selector.curve(job)
        config = curve.config_at(min(total, curve.max_gpus))
        if config is None:
            return None
        gpus = config.plan.num_gpus
        if gpus < max(needed_gpus, 1) or gpus >= total:
            return None
        self._trim_to_plan(job.job_id, gpus, state)
        return selector.best(job, state.shape_of(job.job_id))

    def _target_gpus(
        self, job: Job, selector: PlanSelector, ctx: SchedulingContext
    ) -> int:
        """How many GPUs the job could usefully hold."""
        if not self.tune_resources:
            return job.spec.requested.gpus
        curve = selector.curve(job)
        best_g = 0
        for g in range(1, curve.max_gpus + 1):
            if curve.envelope[g] > curve.envelope[best_g] + _EPS_SLOPE:
                best_g = g
        if best_g == 0:
            return job.spec.requested.gpus
        if self.plan_mode == "scaled_dp":
            # With the plan type frozen, expansion rides pure DP scaling —
            # exactly where the fitted model extrapolates worst (multi-node
            # gradient sync), so the variant never exceeds the user request.
            return min(best_g, job.spec.requested.gpus)
        return best_g

    def _node_order(self, job: Job, state: _RoundState) -> list[_NodeState]:
        """Visit the job's existing nodes first, then the freest nodes.

        Served by the round state's indices: the job's own nodes come from
        its footprint set, the rest from the free-GPU buckets — which yield
        exactly the stable free-descending order the full sort produced.
        The order is snapshotted here (acquisition mutates the buckets).
        """
        job_id = job.job_id
        mine = [
            n
            for node_id in state.job_node_ids(job_id)
            if (n := state.nodes[node_id]).share_of(job_id).gpus > 0
        ]
        mine.sort(key=lambda n: n.share_of(job_id).gpus, reverse=True)
        mine_ids = {n.node_id for n in mine}
        others = [
            state.nodes[node_id]
            for node_id in state._free_index.iter_ids_by_free_desc()
            if node_id not in mine_ids
        ]
        return mine + others

    def _acquire_gpus_on_node(
        self,
        job: Job,
        node: _NodeState,
        state: _RoundState,
        by_id: dict[str, Job],
        baselines: dict[str, float],
        selector: PlanSelector,
        target_gpus: int,
        min_res: ResourceVector,
    ) -> None:
        """Grab free GPUs, then shrink the least-sensitive job (Alg. 1 8-16)."""
        job_id = job.job_id
        while state.gpus_of(job_id) < target_gpus:
            current = state.gpus_of(job_id)
            below_min = current < min_res.gpus
            my_slope = selector.gpu_slope_up(job, current) / baselines[job_id]
            if not below_min and my_slope <= _EPS_SLOPE:
                break
            if node.free.gpus > 0 and self._ensure_companion_cpu(
                job, node, state, by_id, baselines, selector, below_min,
                my_slope,
            ):
                state.move(node, job_id, ResourceVector(gpus=1, cpus=1))
                continue
            # No free GPU here: try to reclaim one from the least-sensitive
            # over-minimum job on this node.
            victim = self._lowest_slope_victim(
                node, state, by_id, baselines, selector, exclude=job_id
            )
            if victim is None:
                break
            victim_job, victim_slope = victim
            if not (below_min or my_slope > victim_slope):
                break
            self._shrink_gpu(victim_job, node, state)
            if node.free.gpus > 0 and self._ensure_companion_cpu(
                job, node, state, by_id, baselines, selector, below_min,
                my_slope,
            ):
                state.move(node, job_id, ResourceVector(gpus=1, cpus=1))
            else:
                break

    def _ensure_companion_cpu(
        self,
        job: Job,
        node: _NodeState,
        state: _RoundState,
        by_id: dict[str, Job],
        baselines: dict[str, float],
        selector: PlanSelector,
        below_min: bool,
        my_slope: float,
    ) -> bool:
        """Make sure a free GPU on this node has a companion CPU to launch.

        Acquisition pairs every GPU with one CPU, so a node whose CPUs are
        all held by over-minimum jobs can strand its free GPUs indefinitely
        (queued jobs fail to launch round after round while the GPUs idle).
        Apply Alg. 1's least-sensitive-victim reclaim to the CPU dimension:
        take one CPU back from the lowest-CPU-slope over-minimum job.
        """
        if node.free.cpus >= 1:
            return True
        victim = self._lowest_cpu_slope_victim(
            node, state, by_id, baselines, selector, exclude=job.job_id
        )
        if victim is None:
            return False
        victim_job, victim_slope = victim
        if not (below_min or my_slope > victim_slope):
            return False
        state.take(node, victim_job.job_id, ResourceVector(cpus=1))
        return node.free.cpus >= 1

    def _lowest_slope_victim(
        self,
        node: _NodeState,
        state: _RoundState,
        by_id: dict[str, Job],
        baselines: dict[str, float],
        selector: PlanSelector,
        exclude: str,
    ) -> tuple[Job, float] | None:
        """GetLowestSlopeOverMinJob for GPUs on one node."""
        best: tuple[Job, float] | None = None
        for job_id, share in node.shares.items():
            if job_id == exclude or share.gpus <= 0:
                continue
            victim = by_id.get(job_id)
            if victim is None:
                continue
            total_gpus = state.gpus_of(job_id)
            floor = (victim.min_res or ResourceVector.zero()).gpus
            if victim.spec.is_guaranteed and total_gpus - 1 < floor:
                continue  # would violate its performance guarantee
            if not victim.spec.is_guaranteed and total_gpus - 1 < 0:
                continue
            slope = (
                selector.gpu_slope_down(victim, total_gpus)
                / baselines[victim.job_id]
            )
            if best is None or slope < best[1]:
                best = (victim, slope)
        return best

    def _shrink_gpu(self, victim: Job, node: _NodeState, state: _RoundState) -> None:
        share = node.share_of(victim.job_id)
        if share.gpus <= 1:
            # Last GPU on this node leaves: release the whole share, exactly
            # like _trim_to_plan — a 0-GPU share would strand its CPUs for
            # the rest of the round.
            state.take(node, victim.job_id, share)
            return
        cpus_drop = 1 if share.cpus > share.gpus - 1 else 0
        state.take(node, victim.job_id, ResourceVector(gpus=1, cpus=cpus_drop))

    def _tune_cpus(
        self,
        job: Job,
        state: _RoundState,
        by_id: dict[str, Job],
        baselines: dict[str, float],
        selector: PlanSelector,
        min_res: ResourceVector,
    ) -> None:
        """CPU pass of Alg. 1: top up to the default ratio, then by slope."""
        job_id = job.job_id
        if state.gpus_of(job_id) == 0:
            return
        for node_id in state.job_node_ids(job_id):
            node = state.nodes[node_id]
            share = node.share_of(job_id)
            if share.gpus == 0:
                continue
            # Top up to the default CPU:GPU ratio from the free pool.  Never
            # strip a node below one free CPU per free GPU: acquisition pairs
            # every GPU with a companion CPU, so a bare free GPU would be
            # unlaunchable for every later job this round.
            spare = node.free.cpus - node.free.gpus
            want = min(share.gpus * self.cpus_per_gpu - share.cpus, spare)
            if want > 0:
                state.move(node, job_id, ResourceVector(cpus=want))
        # Grow further while the CPU slope says it pays off (offload jobs).
        guard = 0
        while guard < 256:
            guard += 1
            shape = state.shape_of(job_id)
            slope = selector.cpu_slope_up(job, shape) / baselines[job_id]
            below_min = state.cpus_of(job_id) < min_res.cpus
            if not below_min and slope <= _EPS_SLOPE:
                break
            node = next(
                (
                    n
                    for node_id in state.job_node_ids(job_id)
                    # Keep one free CPU per free GPU (see the top-up above).
                    if (n := state.nodes[node_id]).share_of(job_id).gpus > 0
                    and n.free.cpus > n.free.gpus
                ),
                None,
            )
            if node is not None:
                state.move(node, job_id, ResourceVector(cpus=1))
                continue
            moved = False
            for node_id in state.job_node_ids(job_id):
                node = state.nodes[node_id]
                if node.share_of(job_id).gpus == 0:
                    continue
                victim = self._lowest_cpu_slope_victim(
                    node, state, by_id, baselines, selector, exclude=job_id
                )
                if victim is None:
                    continue
                victim_job, victim_slope = victim
                if below_min or slope > victim_slope:
                    state.take(node, victim_job.job_id, ResourceVector(cpus=1))
                    state.move(node, job_id, ResourceVector(cpus=1))
                    moved = True
                    break
            if not moved:
                break

    def _lowest_cpu_slope_victim(
        self,
        node: _NodeState,
        state: _RoundState,
        by_id: dict[str, Job],
        baselines: dict[str, float],
        selector: PlanSelector,
        exclude: str,
    ) -> tuple[Job, float] | None:
        best: tuple[Job, float] | None = None
        for job_id, share in node.shares.items():
            if job_id == exclude or share.gpus <= 0:
                continue
            victim = by_id.get(job_id)
            if victim is None:
                continue
            floor = max(
                (victim.min_res or ResourceVector.zero()).cpus,
                state.gpus_of(job_id),
            )
            if state.cpus_of(job_id) - 1 < floor or share.cpus <= share.gpus:
                continue
            slope = (
                selector.cpu_slope_down(victim, state.shape_of(job_id))
                / baselines[victim.job_id]
            )
            if best is None or slope < best[1]:
                best = (victim, slope)
        return best

    # ------------------------------------------------------------------
    # Commit: GetBestPlan + AllocMem + trim (Alg. 1 lines 19-23)
    # ------------------------------------------------------------------
    def _commit(
        self,
        active: list[Job],
        state: _RoundState,
        selector: PlanSelector,
        ctx: SchedulingContext,
    ) -> dict[str, Allocation]:
        allocations: dict[str, Allocation] = {}
        for job in active:
            if state.gpus_of(job.job_id) <= 0:
                continue
            best = selector.best(job, state.shape_of(job.job_id))
            if best is None:
                continue
            plan = best.plan
            # Trim GPUs the chosen plan does not use (envelope flats); the
            # shape (and thus the best plan) only changes if a trim landed.
            if self._trim_to_plan(job.job_id, plan.num_gpus, state):
                best = selector.best(job, state.shape_of(job.job_id))
                if best is None:
                    continue
                plan = best.plan
            if not self._alloc_mem(job, plan, state):
                continue
            placement = state.placement_of(job.job_id)
            allocations[job.job_id] = Allocation(placement=placement, plan=plan)
        return allocations

    def _trim_to_plan(
        self, job_id: str, plan_gpus: int, state: _RoundState
    ) -> bool:
        """Drop excess GPUs; returns True if anything was trimmed."""
        excess = state.gpus_of(job_id) - plan_gpus
        if excess <= 0:
            return False
        nodes = sorted(
            (
                n
                for node_id in state.job_node_ids(job_id)
                if (n := state.nodes[node_id]).share_of(job_id).gpus > 0
            ),
            key=lambda n: n.share_of(job_id).gpus,
        )
        for node in nodes:
            while excess > 0 and node.share_of(job_id).gpus > 0:
                share = node.share_of(job_id)
                if share.gpus == 1:
                    drop_cpu = share.cpus  # last GPU leaves: release all CPUs
                else:
                    # Keep at least 1 CPU per remaining GPU.
                    drop_cpu = min(
                        self.cpus_per_gpu,
                        max(share.cpus - (share.gpus - 1), 0),
                    )
                state.take(node, job_id, ResourceVector(gpus=1, cpus=drop_cpu))
                excess -= 1
            if excess <= 0:
                break
        return True

    def _alloc_mem(self, job: Job, plan, state: _RoundState) -> bool:
        """Reserve per-node host memory per the framework estimate."""
        mark = state.mark()
        for node_id in state.job_node_ids(job.job_id):
            node = state.nodes[node_id]
            share = node.share_of(job.job_id)
            if share.gpus <= 0:
                continue
            demand = host_mem_demand_per_node(
                job.model, plan, job.spec.global_batch, share.gpus
            )
            if not state.reserve_host(node, job.job_id, demand):
                state.rollback(mark)
                return False
        return True
