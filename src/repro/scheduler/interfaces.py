"""Policy interface shared by Rubick, its variants, and the baselines.

A scheduling policy is a pure-ish function from (jobs, cluster state, fitted
performance models) to a full allocation map.  The simulator owns all side
effects: it diffs the returned allocations against the current state, applies
reconfiguration penalties, and advances training progress using the testbed's
ground truth.  Policies must *never* query the testbed directly — they only
see what the real Rubick sees: fitted performance models and framework memory
estimates.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.cluster.placement import Placement
from repro.cluster.state import Cluster
from repro.cluster.topology import ClusterSpec
from repro.models.specs import ModelSpec
from repro.perfmodel.model import PerfModel
from repro.plans.plan import ExecutionPlan
from repro.scheduler.job import Job


@dataclass(frozen=True)
class Allocation:
    """One job's scheduling decision: where it runs and with which plan."""

    placement: Placement
    plan: ExecutionPlan

    @property
    def gpus(self) -> int:
        return self.placement.total.gpus


class PerfModelStore:
    """Fitted performance models keyed by model type (paper §3 reuse).

    Two version counters let downstream caches detect online refits:

    * ``version`` increments on *every* update (coarse, store-wide);
    * ``model_version(name)`` increments only when that model type is
      (re)fitted — the refit generation `repro.planeval.PlanEvalEngine`
      keys its per-model invalidation to, so refitting one model leaves
      every other model's memoized curves warm.
    """

    def __init__(self) -> None:
        self._models: dict[str, PerfModel] = {}
        self._versions: dict[str, int] = {}
        self.version = 0

    def add(self, perf: PerfModel) -> None:
        name = perf.model.name
        self._models[name] = perf
        self._versions[name] = self._versions.get(name, 0) + 1
        self.version += 1

    def model_version(self, name: str) -> int:
        """Refit generation of one model type (0 if never fitted)."""
        return self._versions.get(name, 0)

    def get(self, model: ModelSpec) -> PerfModel:
        try:
            return self._models[model.name]
        except KeyError:
            raise KeyError(
                f"no fitted performance model for {model.name!r}; "
                f"profile it first"
            ) from None

    def has(self, model: ModelSpec) -> bool:
        return model.name in self._models

    def __len__(self) -> int:
        return len(self._models)


@dataclass
class Tenant:
    """A resource tenant with a GPU quota (paper §5.1 multi-tenancy)."""

    name: str
    gpu_quota: int = 0


@dataclass
class SchedulingContext:
    """Everything a policy may consult besides the jobs and cluster state."""

    cluster_spec: ClusterSpec
    perf_store: PerfModelStore
    now: float = 0.0
    tenants: dict[str, Tenant] = field(default_factory=dict)
    #: Checkpoint-resume cost charged per reconfiguration (paper: ~78 s).
    reconfig_delta: float = 78.0
    #: Queueing-delay threshold after which a best-effort job is scheduled
    #: regardless of its slope rank, to prevent starvation (§5.2).
    starvation_threshold: float = 1800.0

    def tenant_quota(self, name: str) -> int:
        tenant = self.tenants.get(name)
        if tenant is None:
            # Unregistered tenants are unconstrained (single-tenant traces).
            return self.cluster_spec.total_gpus
        return tenant.gpu_quota


class SchedulerPolicy(abc.ABC):
    """Base class of all scheduling policies."""

    #: Human-readable policy name used in result tables.
    name: str = "base"

    #: Declares the policy *reactive*: its decision is a pure function of
    #: the observable job/cluster/model state — independent of the clock
    #: (``ctx.now``) and of quantities that accrue with simulated time.  The
    #: simulator's steady-state short-circuit may then skip invoking it on
    #: tick-only rounds where that state is provably unchanged (no arrival,
    #: completion, pause resumption, model refit, or allocation delta since
    #: the last decision), because re-invoking would reproduce the same
    #: allocation map verbatim.  Policies with time-driven behavior beyond
    #: what :meth:`steady_state` accounts for must leave this False.
    reactive: bool = False

    def steady_state(self, jobs: list[Job], ctx: SchedulingContext) -> bool:
        """May tick-only rounds skip this policy while nothing else changes?

        Called by the simulator right after a decision that turned out to be
        a no-op fixed point, with no job mid-pause (queued and running jobs
        may both be present).  Return True only if the *next* invocation
        under unchanged state is guaranteed to repeat that decision.
        Policies whose time dependence is monotone — e.g. a reconfiguration
        gate that can only open as training time accrues, or a starvation
        guard armed only while a best-effort job queues — override this to
        return True exactly when no such latent trigger is still pending
        (see :class:`~repro.scheduler.rubick.RubickPolicy`).  The default is
        the static ``reactive`` flag.
        """
        return self.reactive

    @abc.abstractmethod
    def schedule(
        self,
        jobs: list[Job],
        cluster: Cluster,
        ctx: SchedulingContext,
    ) -> dict[str, Allocation]:
        """Produce the desired allocation for every job that should run.

        Jobs absent from the returned mapping are left queued (or preempted,
        if currently running).  Implementations must return placements that
        fit within cluster capacity given that *only* the jobs in the
        returned map (plus nothing else) hold resources — the simulator
        releases every active job's resources before applying the new map.
        """
        raise NotImplementedError
