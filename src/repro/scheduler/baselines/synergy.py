"""Synergy baseline (Mohan et al., OSDI'22) as characterized in Rubick §7.3.

Synergy "tunes CPU-memory allocation for GPU jobs with fixed GPU numbers":
GPU counts and execution plans are whatever the user submitted; the scheduler
gang-places jobs FIFO and then distributes each node's CPUs
*disproportionately* — jobs whose throughput is CPU-sensitive (ZeRO-Offload)
receive more than the proportional share, others less (with a 1-CPU/GPU
floor).  It never reconfigures plans and never resizes GPU allocations, which
is exactly the gap Rubick's evaluation measures against.
"""

from __future__ import annotations

from repro.cluster.resources import ResourceVector
from repro.cluster.state import Cluster
from repro.perfmodel.shape import ResourceShape
from repro.planeval import PlanEvalEngine
from repro.plans.memory import host_mem_demand_per_node
from repro.scheduler.interfaces import (
    Allocation,
    SchedulerPolicy,
    SchedulingContext,
)
from repro.scheduler.job import Job, JobStatus
from repro.scheduler.baselines.common import FreePool
from repro.scheduler.selectors import FixedPlanSelector
from repro.scheduler.sensitivity import bootstrap_analyzer


class SynergyPolicy(SchedulerPolicy):
    name = "synergy"
    # Pure function of job/cluster state (FIFO by submit time + CPU slopes);
    # never reads the clock, so steady-state rounds can skip it.
    reactive = True

    def __init__(
        self, *, cpus_per_gpu: int = 4, engine: PlanEvalEngine | None = None
    ):
        self.cpus_per_gpu = cpus_per_gpu
        self.engine = engine
        self._selector: FixedPlanSelector | None = None

    def _ensure(self, ctx: SchedulingContext) -> FixedPlanSelector:
        if self._selector is None:
            self._selector = FixedPlanSelector(bootstrap_analyzer(self, ctx))
        return self._selector

    def schedule(
        self, jobs: list[Job], cluster: Cluster, ctx: SchedulingContext
    ) -> dict[str, Allocation]:
        selector = self._ensure(ctx)
        active = [j for j in jobs if j.is_active]
        running = [j for j in active if j.is_running]
        queued = sorted(
            (j for j in active if j.status == JobStatus.QUEUED),
            key=lambda j: j.spec.submit_time,
        )

        allocations: dict[str, Allocation] = {}
        for job in running:
            placement = cluster.placement_of(job.job_id)
            if job.plan is not None and not placement.is_empty:
                allocations[job.job_id] = Allocation(placement, job.plan)

        pool = FreePool(cluster, keep_job_ids=set(allocations))
        for job in queued:
            plan = job.spec.initial_plan
            placement = pool.allocate_packed(
                job.spec.requested.gpus,
                cpus_per_gpu=1,  # floor; the CPU tuner tops up below
                host_mem_per_node=lambda g, j=job, p=plan: host_mem_demand_per_node(
                    j.model, p, j.spec.global_batch, g
                ),
            )
            if placement is None:
                continue  # FIFO head-of-line blocking, as in gang scheduling
            allocations[job.job_id] = Allocation(placement, plan)

        self._tune_cpus(allocations, {j.job_id: j for j in active}, pool, selector)
        return allocations

    # ------------------------------------------------------------------
    def _tune_cpus(
        self,
        allocations: dict[str, Allocation],
        jobs: dict[str, Job],
        pool: FreePool,
        selector: FixedPlanSelector,
    ) -> None:
        """Distribute each node's remaining CPUs by CPU-sensitivity."""
        for node in pool.nodes:
            residents = [
                (job_id, alloc)
                for job_id, alloc in allocations.items()
                if node.node_id in alloc.placement.shares
            ]
            if not residents:
                continue
            # Rebuild shares at the 1-CPU/GPU floor, then hand out the rest.
            budget = node.free.cpus
            weights: dict[str, float] = {}
            for job_id, alloc in residents:
                job = jobs[job_id]
                shape = ResourceShape.from_placement(alloc.placement)
                slope = selector.cpu_slope_up(job, shape)
                base = selector.best(job, shape)
                norm = base.throughput if base and base.throughput > 0 else 1.0
                weights[job_id] = max(slope / norm, 0.0)
            total_weight = sum(weights.values())
            for job_id, alloc in residents:
                share = alloc.placement.shares[node.node_id]
                if total_weight > 1e-12:
                    extra = int(budget * weights[job_id] / total_weight)
                else:
                    extra = int(budget / len(residents))
                extra = min(extra, node.free.cpus)
                if extra <= 0:
                    continue
                new_share = ResourceVector(
                    share.gpus, share.cpus + extra, share.host_mem
                )
                node.free = (node.free - ResourceVector(cpus=extra)).clamp_floor()
                allocations[job_id] = Allocation(
                    alloc.placement.with_share(node.node_id, new_share),
                    alloc.plan,
                )
