"""Synergy baseline (Mohan et al., OSDI'22) as characterized in Rubick §7.3.

Synergy "tunes CPU-memory allocation for GPU jobs with fixed GPU numbers":
GPU counts and execution plans are whatever the user submitted; the scheduler
gang-places jobs FIFO and then distributes each node's CPUs
*disproportionately* — jobs whose throughput is CPU-sensitive (ZeRO-Offload)
receive more than the proportional share, others less (with a 1-CPU/GPU
floor).  It never reconfigures plans and never resizes GPU allocations, which
is exactly the gap Rubick's evaluation measures against.
"""

from __future__ import annotations

from repro.cluster.resources import ResourceVector
from repro.cluster.state import Cluster
from repro.perfmodel.shape import ResourceShape
from repro.planeval import PlanEvalEngine
from repro.scheduler.interfaces import (
    Allocation,
    SchedulerPolicy,
    SchedulingContext,
)
from repro.scheduler.job import Job, JobStatus
from repro.scheduler.baselines.common import FreePool, HostDemandMemo
from repro.scheduler.selectors import FixedPlanSelector
from repro.scheduler.sensitivity import bootstrap_analyzer


class SynergyPolicy(SchedulerPolicy):
    name = "synergy"
    # Pure function of job/cluster state (FIFO by submit time + CPU slopes);
    # never reads the clock, so steady-state rounds can skip it.
    reactive = True

    def __init__(
        self, *, cpus_per_gpu: int = 4, engine: PlanEvalEngine | None = None
    ):
        self.cpus_per_gpu = cpus_per_gpu
        self.engine = engine
        self._selector: FixedPlanSelector | None = None
        #: ``(model, batch, plan, shape) -> (model refit version, weight)``
        #: cross-round memo of the CPU-sensitivity weight.  The weight is a
        #: pure function of the key plus the fitted model, so it survives
        #: until the model refits (version-checked on every read); at
        #: datacenter scale most residents keep their shape between rounds
        #: and the per-round probe batch collapses to the few changed jobs.
        self._weight_cache: dict[tuple, tuple[int, float]] = {}
        self._host_demand = HostDemandMemo()

    def _ensure(self, ctx: SchedulingContext) -> FixedPlanSelector:
        if self._selector is None:
            self._selector = FixedPlanSelector(bootstrap_analyzer(self, ctx))
        return self._selector

    def schedule(
        self, jobs: list[Job], cluster: Cluster, ctx: SchedulingContext
    ) -> dict[str, Allocation]:
        selector = self._ensure(ctx)
        active = [j for j in jobs if j.is_active]
        running = [j for j in active if j.is_running]
        queued = sorted(
            (j for j in active if j.status == JobStatus.QUEUED),
            key=lambda j: j.spec.submit_time,
        )

        allocations: dict[str, Allocation] = {}
        for job in running:
            # The job's own placement is in lockstep with the cluster's
            # (``_apply`` sets both or neither), so reuse it instead of
            # reassembling an equal Placement from the node index.
            placement = job.placement
            if job.plan is not None and not placement.is_empty:
                allocations[job.job_id] = Allocation(placement, job.plan)

        pool = FreePool(cluster, keep_job_ids=set(allocations))
        for job in queued:
            plan = job.spec.initial_plan
            placement = pool.allocate_packed(
                job.spec.requested.gpus,
                cpus_per_gpu=1,  # floor; the CPU tuner tops up below
                host_mem_per_node=self._host_demand.fn(
                    job.model, plan, job.spec.global_batch
                ),
            )
            if placement is None:
                continue  # FIFO head-of-line blocking, as in gang scheduling
            allocations[job.job_id] = Allocation(placement, plan)

        self._tune_cpus(allocations, {j.job_id: j for j in active}, pool, selector)
        return allocations

    # ------------------------------------------------------------------
    def _tune_cpus(
        self,
        allocations: dict[str, Allocation],
        jobs: dict[str, Job],
        pool: FreePool,
        selector: FixedPlanSelector,
    ) -> None:
        """Distribute each node's remaining CPUs by CPU-sensitivity.

        The residents of each node come from a single inverted pass over the
        allocations (a job's placement names its nodes) instead of scanning
        every node × every allocation.  A resident's weight is its normalized
        CPU slope at its current whole-placement shape — a pure function of
        (model, batch, plan, shape, fitted-model version) — memoized across
        rounds and nodes in ``_weight_cache``; only misses go through a
        batched ``selector.best_many`` probe.  The shape is still evaluated
        per node visit (a multi-node job retuned on an earlier node brings
        its updated shape to later ones, as the unmemoized loop did), so
        weights and visit order match the former per-node/per-job loops
        exactly.
        """
        engine = selector.engine
        versions: dict[str, int] = {}
        #: id(placement) -> (placement, shape) for this round.  The stored
        #: placement is both the identity witness and a strong reference —
        #: without it, a placement replaced by ``with_share`` below could be
        #: collected and its id recycled by a new one, silently serving a
        #: stale shape.
        shape_of: dict[int, tuple] = {}
        # node_id -> job ids placed there, in allocation-dict order (node
        # membership never changes below: with_share only retunes CPUs).
        residents_of: dict[int, list[str]] = {}
        for job_id, alloc in allocations.items():
            for node_id in alloc.placement.shares:
                residents_of.setdefault(node_id, []).append(job_id)
        for node_id in sorted(residents_of):
            residents = [
                (job_id, allocations[job_id])
                for job_id in residents_of[node_id]
            ]
            budget = pool.free_of(node_id)[1]
            weights: dict[str, float] = {}
            misses: list[tuple[str, ResourceShape, tuple, int]] = []
            for job_id, alloc in residents:
                job = jobs[job_id]
                model_name = job.model.name
                version = versions.get(model_name)
                if version is None:
                    version = engine.scorer.version(job.model)
                    versions[model_name] = version
                cached = shape_of.get(id(alloc.placement))
                if cached is not None and cached[0] is alloc.placement:
                    shape = cached[1]
                else:
                    shape = ResourceShape.from_placement(alloc.placement)
                    shape_of[id(alloc.placement)] = (alloc.placement, shape)
                key = (model_name, job.spec.global_batch, alloc.plan, shape)
                hit = self._weight_cache.get(key)
                if hit is not None and hit[0] == version:
                    weights[job_id] = hit[1]
                else:
                    misses.append((job_id, shape, key, version))
            if misses:
                # cpu_slope_up's two endpoints per miss: current shape and
                # the +1-CPU probe, resolved in one batched engine pass.
                pairs = []
                for job_id, shape, _, _ in misses:
                    job = jobs[job_id]
                    pairs.append((job, shape))
                    pairs.append((job, shape.with_cpus(shape.cpus + 1)))
                configs = selector.best_many(pairs)
                for i, (job_id, _, key, version) in enumerate(misses):
                    base, more = configs[2 * i], configs[2 * i + 1]
                    slope = (
                        more.throughput - base.throughput
                        if base is not None and more is not None
                        else 0.0
                    )
                    norm = (
                        base.throughput
                        if base and base.throughput > 0
                        else 1.0
                    )
                    weight = max(slope / norm, 0.0)
                    self._weight_cache[key] = (version, weight)
                    weights[job_id] = weight
            # Summed in residents order (the insertion order of the weights
            # dict before memoization existed): float addition is order-
            # sensitive and the distribution below must stay byte-identical.
            total_weight = sum(weights[job_id] for job_id, _ in residents)
            for job_id, alloc in residents:
                share = alloc.placement.shares[node_id]
                if total_weight > 1e-12:
                    extra = int(budget * weights[job_id] / total_weight)
                else:
                    extra = int(budget / len(residents))
                extra = min(extra, pool.free_of(node_id)[1])
                if extra <= 0:
                    continue
                new_share = ResourceVector(
                    share.gpus, share.cpus + extra, share.host_mem
                )
                pool.take_cpus(node_id, extra)
                allocations[job_id] = Allocation(
                    alloc.placement.with_share(node_id, new_share),
                    alloc.plan,
                )
