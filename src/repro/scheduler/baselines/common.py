"""Shared helpers for the baseline schedulers.

Baselines allocate whole requested GPU counts with simple packing; this
module provides the free-resource pool and first-fit-decreasing packing they
share.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.placement import Placement
from repro.cluster.resources import ResourceVector
from repro.cluster.state import Cluster


@dataclass
class _NodeFree:
    node_id: int
    free: ResourceVector
    host_free: float


class FreePool:
    """Mutable view of free per-node resources during one scheduling round."""

    def __init__(self, cluster: Cluster, keep_job_ids: set[str]):
        self.nodes: list[_NodeFree] = []
        for node in cluster.nodes:
            used = ResourceVector.zero()
            for job_id, share in node.allocations.items():
                if job_id in keep_job_ids:
                    used = used + share
            self.nodes.append(
                _NodeFree(
                    node_id=node.node_id,
                    free=(node.capacity - used).clamp_floor(),
                    host_free=node.capacity.host_mem - used.host_mem,
                )
            )

    @property
    def free_gpus(self) -> int:
        return sum(n.free.gpus for n in self.nodes)

    def release(self, placement: Placement) -> None:
        """Return a placement's resources to the pool (preemption)."""
        for node_id, share in placement.shares.items():
            node = self.nodes[node_id]
            node.free = node.free + ResourceVector(share.gpus, share.cpus, 0.0)
            node.host_free += share.host_mem

    def claim(self, placement: Placement) -> bool:
        """Reserve an exact placement if every node share fits; else no-op."""
        for node_id, share in placement.shares.items():
            node = self.nodes[node_id]
            want = ResourceVector(share.gpus, share.cpus, 0.0)
            if not want.fits_within(node.free) or share.host_mem > node.host_free:
                return False
        for node_id, share in placement.shares.items():
            node = self.nodes[node_id]
            node.free = (
                node.free - ResourceVector(share.gpus, share.cpus, 0.0)
            ).clamp_floor()
            node.host_free -= share.host_mem
        return True

    def allocate_packed(
        self,
        gpus: int,
        *,
        cpus_per_gpu: int = 4,
        host_mem_per_node=None,
    ) -> Placement | None:
        """First-fit-decreasing gang placement of ``gpus`` GPUs.

        ``host_mem_per_node`` maps a node's GPU share to the host memory to
        reserve there (defaults to none).  Returns ``None`` — with the pool
        untouched — when the request cannot be gang-placed.
        """
        if gpus <= 0:
            return None
        order = sorted(self.nodes, key=lambda n: n.free.gpus, reverse=True)
        shares: dict[int, ResourceVector] = {}
        remaining = gpus
        chosen: list[tuple[_NodeFree, ResourceVector]] = []
        for node in order:
            if remaining <= 0:
                break
            take = min(remaining, node.free.gpus)
            if take <= 0:
                continue
            cpus = min(take * cpus_per_gpu, node.free.cpus)
            if cpus < take:  # cannot even give 1 CPU per GPU here
                take = min(take, node.free.cpus)
                cpus = take
            if take <= 0:
                continue
            host = host_mem_per_node(take) if host_mem_per_node else 0.0
            if host > node.host_free:
                continue
            share = ResourceVector(gpus=take, cpus=cpus, host_mem=host)
            chosen.append((node, share))
            shares[node.node_id] = share
            remaining -= take
        if remaining > 0:
            return None
        for node, share in chosen:
            node.free = (
                node.free - ResourceVector(share.gpus, share.cpus, 0.0)
            ).clamp_floor()
            node.host_free -= share.host_mem
        return Placement(shares)
