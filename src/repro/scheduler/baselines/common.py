"""Shared helpers for the baseline schedulers.

Baselines allocate whole requested GPU counts with simple packing; this
module provides the free-resource pool and first-fit-decreasing packing they
share.

The pool is array-backed: per-node free gpus/cpus/host-mem columns seeded
from the cluster's SoA mirror, plus a :class:`FreeGpuIndex` so the packing
loop visits nodes most-free-first without re-sorting per request.  The
visit order (free GPUs descending, node id ascending on ties) and every
take/CPU/host decision are identical to the previous object-based
implementation — the baseline goldens are byte-identical.  ``pool.nodes``
remains available as a list of live views for callers that still want the
per-node object interface.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.placement import Placement
from repro.cluster.resources import ResourceVector
from repro.cluster.soa import FreeGpuIndex
from repro.cluster.state import Cluster
from repro.plans.memory import host_mem_demand_per_node


class HostDemandMemo:
    """Cross-round memo of :func:`host_mem_demand_per_node`.

    The demand is a pure function of ``(model, batch, plan, gpus-on-node)``,
    but the packing loop re-evaluates it for every candidate node of every
    queued job every round — at datacenter scale that is hundreds of
    thousands of identical analytic evaluations per run.  Policies hold one
    memo instance and hand :meth:`fn` closures to ``allocate_packed``.
    """

    __slots__ = ("_cache",)

    def __init__(self):
        #: ``(model name, batch, plan) -> {gpus_on_node: demand}``
        self._cache: dict[tuple, dict[int, float]] = {}

    def fn(self, model, plan, batch: int):
        """A ``gpus_on_node -> host-mem demand`` callable for one job."""
        key = (model.name, batch, plan)
        per_g = self._cache.get(key)
        if per_g is None:
            per_g = {}
            self._cache[key] = per_g

        def demand(g: int, _per_g=per_g, _model=model, _plan=plan, _batch=batch):
            v = _per_g.get(g)
            if v is None:
                v = host_mem_demand_per_node(_model, _plan, _batch, g)
                _per_g[g] = v
            return v

        return demand


class _NodeFree:
    """Live per-node view over the pool's arrays (back-compat interface)."""

    __slots__ = ("_pool", "node_id")

    def __init__(self, pool: "FreePool", node_id: int):
        self._pool = pool
        self.node_id = node_id

    @property
    def free(self) -> ResourceVector:
        pool = self._pool
        return ResourceVector(
            gpus=int(pool._fg[self.node_id]),
            cpus=int(pool._fc[self.node_id]),
            host_mem=float(pool._fm0[self.node_id]),
        )

    @free.setter
    def free(self, value: ResourceVector) -> None:
        self._pool.set_free(self.node_id, value)

    @property
    def host_free(self) -> float:
        return float(self._pool._fm[self.node_id])

    @host_free.setter
    def host_free(self, value: float) -> None:
        self._pool._fm[self.node_id] = value


class FreePool:
    """Mutable view of free per-node resources during one scheduling round."""

    def __init__(self, cluster: Cluster, keep_job_ids: set[str]):
        spec = cluster.spec.node
        index = cluster.index
        n = len(cluster.nodes)
        up = index.up[:n]
        # Nodes holding a *non-kept* allocation need the reference per-node
        # rebuild below; in the common steady-state round every allocated
        # job is kept, so the integer columns come straight off the SoA
        # mirror (exact — integer sums are order-insensitive) and only the
        # float host-memory sum replays the reference's per-node loop.
        slow_nodes: set[int] = set()
        for job_id, on_nodes in index.jobs.items():
            if job_id not in keep_job_ids:
                slow_nodes.update(on_nodes)
        # Base: every up node's capacity minus kept usage, down nodes zero
        # (cap is zero).  Down nodes are always drained, so their used
        # columns are zero and the where() masks them to zero free.
        self._fg = np.where(up, np.int64(spec.num_gpus) - index.used_gpus[:n], np.int64(0))
        self._fc = np.where(up, np.int64(spec.num_cpus) - index.used_cpus[:n], np.int64(0))
        #: ``free.host_mem`` — frozen after init in the reference semantics
        #: (claims/releases only move gpus/cpus through ``free``).
        self._fm0 = np.where(up, float(spec.host_mem), 0.0)
        #: ``host_free`` — the mutable host-memory budget.
        self._fm = self._fm0.copy()
        cap_mem = float(spec.host_mem)
        nodes = cluster.nodes
        for nid in np.flatnonzero(index.num_allocs[:n] > 0):
            node = nodes[nid]
            if nid in slow_nodes:
                # Reference rebuild: sum the kept shares in the node's
                # allocation-dict order (float addition is order-sensitive
                # and the goldens pin this byte-for-byte).
                used = ResourceVector.zero()
                for job_id, share in node.allocations.items():
                    if job_id in keep_job_ids:
                        used = used + share
                cap = node.capacity
                free = (cap - used).clamp_floor()
                self._fg[nid] = free.gpus
                self._fc[nid] = free.cpus
                self._fm0[nid] = free.host_mem
                self._fm[nid] = cap.host_mem - used.host_mem
            else:
                # All residents kept: the int columns are already right;
                # accumulate host_mem alone, in the same allocation-dict
                # order (identical float-add sequence to the reference).
                used_mem = 0.0
                for share in node.allocations.values():
                    used_mem += share.host_mem
                cm = cap_mem if up[nid] else 0.0
                self._fm0[nid] = max(cm - used_mem, 0.0)
                self._fm[nid] = cm - used_mem
        self._free_gpus = int(self._fg.sum())
        self._order = FreeGpuIndex.from_array(self._fg, spec.num_gpus)
        self._views: list[_NodeFree] | None = None

    @property
    def nodes(self) -> list[_NodeFree]:
        if self._views is None:
            self._views = [_NodeFree(self, nid) for nid in range(len(self._fg))]
        return self._views

    @property
    def free_gpus(self) -> int:
        return self._free_gpus

    def free_of(self, node_id: int) -> tuple[int, int]:
        """(free gpus, free cpus) of one node — O(1)."""
        return int(self._fg[node_id]), int(self._fc[node_id])

    def host_free_of(self, node_id: int) -> float:
        return float(self._fm[node_id])

    def largest_free(self) -> int:
        """Largest per-node free-GPU count (O(node_size) feasibility probe)."""
        return self._order.largest_free()

    def set_free(self, node_id: int, value: ResourceVector) -> None:
        """Overwrite one node's free vector (the view-setter entry point)."""
        delta = value.gpus - int(self._fg[node_id])
        if delta:
            self._free_gpus += delta
            self._fg[node_id] = value.gpus
            self._order.update(node_id, value.gpus)
        self._fc[node_id] = value.cpus
        self._fm0[node_id] = value.host_mem

    def take_cpus(self, node_id: int, cpus: int) -> None:
        """Consume CPUs on one node without touching its GPU column."""
        self._fc[node_id] -= cpus

    def _move(self, node_id: int, gpus: int, cpus: int, host_mem: float) -> None:
        """Add (positive) or subtract (negative) free resources on a node."""
        if gpus:
            new = int(self._fg[node_id]) + gpus
            self._fg[node_id] = new
            self._free_gpus += gpus
            self._order.update(node_id, new)
        if cpus:
            self._fc[node_id] += cpus
        if host_mem:
            self._fm[node_id] += host_mem

    def release(self, placement: Placement) -> None:
        """Return a placement's resources to the pool (preemption)."""
        for node_id, share in placement.shares.items():
            self._move(node_id, share.gpus, share.cpus, share.host_mem)

    def claim(self, placement: Placement) -> bool:
        """Reserve an exact placement if every node share fits; else no-op."""
        for node_id, share in placement.shares.items():
            if (
                share.gpus > self._fg[node_id]
                or share.cpus > self._fc[node_id]
                or share.host_mem > self._fm[node_id]
            ):
                return False
        for node_id, share in placement.shares.items():
            self._move(node_id, -share.gpus, -share.cpus, -share.host_mem)
        return True

    def allocate_packed(
        self,
        gpus: int,
        *,
        cpus_per_gpu: int = 4,
        host_mem_per_node=None,
    ) -> Placement | None:
        """First-fit-decreasing gang placement of ``gpus`` GPUs.

        ``host_mem_per_node`` maps a node's GPU share to the host memory to
        reserve there (defaults to none).  Returns ``None`` — with the pool
        untouched — when the request cannot be gang-placed.
        """
        if gpus <= 0:
            return None
        if gpus > self._free_gpus:
            # Sum of per-node takes can never exceed the total free count,
            # so the request is infeasible without walking any node.
            return None
        shares: dict[int, ResourceVector] = {}
        remaining = gpus
        chosen: list[tuple[int, ResourceVector]] = []
        for node_id in self._order.iter_nonempty_desc():
            if remaining <= 0:
                break
            free_g = int(self._fg[node_id])
            free_c = int(self._fc[node_id])
            take = min(remaining, free_g)
            if take <= 0:
                continue
            cpus = min(take * cpus_per_gpu, free_c)
            if cpus < take:  # cannot even give 1 CPU per GPU here
                take = min(take, free_c)
                cpus = take
            if take <= 0:
                continue
            host = host_mem_per_node(take) if host_mem_per_node else 0.0
            if host > self._fm[node_id]:
                continue
            share = ResourceVector(gpus=take, cpus=cpus, host_mem=host)
            chosen.append((node_id, share))
            shares[node_id] = share
            remaining -= take
        if remaining > 0:
            return None
        for node_id, share in chosen:
            self._move(node_id, -share.gpus, -share.cpus, -share.host_mem)
        return Placement(shares)
