"""The "simple scheduler" of the paper's Fig. 8 micro-benchmark.

Equalizes GPU allocation across jobs and — to isolate the *policy* difference
from the *reconfiguration* capability — is allowed to reconfigure execution
plans: each job gets the best plan for its equal share.  Rubick beats it by
recognizing that jobs differ in resource sensitivity (it gave T5 3 GPUs and
RoBERTa 1 in the paper's experiment, an 85% aggregate improvement).
"""

from __future__ import annotations

from repro.plans.memory import host_mem_demand_per_node
from repro.cluster.state import Cluster
from repro.perfmodel.shape import ResourceShape
from repro.planeval import PlanEvalEngine
from repro.scheduler.baselines.common import FreePool
from repro.scheduler.interfaces import (
    Allocation,
    SchedulerPolicy,
    SchedulingContext,
)
from repro.scheduler.job import Job
from repro.scheduler.selectors import BestPlanSelector
from repro.scheduler.sensitivity import bootstrap_analyzer


class SimpleEqualPolicy(SchedulerPolicy):
    name = "simple"
    # Pure function of the active-job set (equal shares by arrival order);
    # never reads the clock, so steady-state rounds can skip it.
    reactive = True

    def __init__(
        self, *, cpus_per_gpu: int = 4, engine: PlanEvalEngine | None = None
    ):
        self.cpus_per_gpu = cpus_per_gpu
        self.engine = engine
        self._selector: BestPlanSelector | None = None

    def _ensure(self, ctx: SchedulingContext) -> BestPlanSelector:
        if self._selector is None:
            self._selector = BestPlanSelector(bootstrap_analyzer(self, ctx))
        return self._selector

    def schedule(
        self, jobs: list[Job], cluster: Cluster, ctx: SchedulingContext
    ) -> dict[str, Allocation]:
        selector = self._ensure(ctx)
        active = sorted(
            (j for j in jobs if j.is_active), key=lambda j: j.spec.submit_time
        )
        if not active:
            return {}
        total_gpus = ctx.cluster_spec.total_gpus
        share = max(total_gpus // len(active), 1)

        allocations: dict[str, Allocation] = {}
        pool = FreePool(cluster, keep_job_ids=set())
        node_size = ctx.cluster_spec.node.num_gpus
        for job in active:
            gpus = min(share, total_gpus)
            # Round down to a count where some plan is feasible.
            curve = selector.curve(job)
            g = min(gpus, curve.max_gpus)
            while g > 0 and curve.config_at(g) is None:
                g -= 1
            if g <= 0:
                continue
            cfg = curve.config_at(g)
            shape = ResourceShape.packed(
                g, node_size=node_size, cpus=g * self.cpus_per_gpu
            )
            best = selector.best(job, shape) or cfg
            if best is None:
                continue
            plan = best.plan
            placement = pool.allocate_packed(
                plan.num_gpus,
                cpus_per_gpu=self.cpus_per_gpu,
                host_mem_per_node=lambda gg, j=job, p=plan: host_mem_demand_per_node(
                    j.model, p, j.spec.global_batch, gg
                ),
            )
            if placement is None:
                continue
            allocations[job.job_id] = Allocation(placement, plan)
        return allocations
