"""AntMan baseline (Xiao et al., OSDI'20) as characterized in Rubick §7.3.

AntMan provides the same guaranteed / best-effort job taxonomy as Rubick but
guarantees *resources* rather than performance: guaranteed jobs receive
exactly their requested allocation (gang-scheduled FIFO within the tenant
quota, preempting best-effort jobs if needed); best-effort jobs run
opportunistically on leftover GPUs and are preempted whenever a guaranteed
job needs the space.  Plans and GPU counts are never reconfigured — AntMan
performs no plan selection at all, so it accepts the shared
:class:`~repro.planeval.PlanEvalEngine` only for interface uniformity with
the other policies (CLI stats reporting); its decisions never consult it.
"""

from __future__ import annotations

from repro.cluster.state import Cluster
from repro.planeval import PlanEvalEngine
from repro.plans.memory import host_mem_demand_per_node
from repro.scheduler.baselines.common import FreePool
from repro.scheduler.interfaces import (
    Allocation,
    SchedulerPolicy,
    SchedulingContext,
)
from repro.scheduler.job import Job, JobStatus


class AntManPolicy(SchedulerPolicy):
    name = "antman"
    # Pure function of job/cluster state (FIFO within quota, fixed plans);
    # never reads the clock, so steady-state rounds can skip it.
    reactive = True

    def __init__(
        self, *, cpus_per_gpu: int = 4, engine: PlanEvalEngine | None = None
    ):
        self.cpus_per_gpu = cpus_per_gpu
        self.engine = engine

    def schedule(
        self, jobs: list[Job], cluster: Cluster, ctx: SchedulingContext
    ) -> dict[str, Allocation]:
        active = [j for j in jobs if j.is_active]
        allocations: dict[str, Allocation] = {}

        # Running jobs keep their allocation, pending preemption below.
        running = [j for j in active if j.is_running]
        for job in running:
            placement = cluster.placement_of(job.job_id)
            if job.plan is not None and not placement.is_empty:
                allocations[job.job_id] = Allocation(placement, job.plan)

        pool = FreePool(cluster, keep_job_ids=set(allocations))

        def host_fn(job: Job):
            plan = job.spec.initial_plan
            return lambda g: host_mem_demand_per_node(
                job.model, plan, job.spec.global_batch, g
            )

        # Guaranteed queued jobs, FIFO within quota (usage = requested GPUs).
        quota_used: dict[str, int] = {}
        for job in running:
            if job.spec.is_guaranteed:
                quota_used[job.spec.tenant] = quota_used.get(
                    job.spec.tenant, 0
                ) + cluster.placement_of(job.job_id).total.gpus
        queued_guar = sorted(
            (
                j
                for j in active
                if j.status == JobStatus.QUEUED and j.spec.is_guaranteed
            ),
            key=lambda j: j.spec.submit_time,
        )
        # Best-effort victims, most recently started first.
        be_running = sorted(
            (j for j in running if not j.spec.is_guaranteed),
            key=lambda j: j.start_time or 0.0,
            reverse=True,
        )
        for job in queued_guar:
            need = job.spec.requested.gpus
            tenant = job.spec.tenant
            if quota_used.get(tenant, 0) + need > ctx.tenant_quota(tenant):
                continue
            # Preempt best-effort jobs until the guaranteed job fits.
            while pool.free_gpus < need and be_running:
                victim = be_running.pop(0)
                victim_alloc = allocations.pop(victim.job_id, None)
                if victim_alloc is not None:
                    pool.release(victim_alloc.placement)
            placement = pool.allocate_packed(
                need, cpus_per_gpu=self.cpus_per_gpu, host_mem_per_node=host_fn(job)
            )
            if placement is None:
                continue
            allocations[job.job_id] = Allocation(placement, job.spec.initial_plan)
            quota_used[tenant] = quota_used.get(tenant, 0) + need

        # Best-effort queued jobs use whatever is left, FIFO.
        queued_be = sorted(
            (
                j
                for j in active
                if j.status == JobStatus.QUEUED and not j.spec.is_guaranteed
            ),
            key=lambda j: j.spec.submit_time,
        )
        for job in queued_be:
            placement = pool.allocate_packed(
                job.spec.requested.gpus,
                cpus_per_gpu=self.cpus_per_gpu,
                host_mem_per_node=host_fn(job),
            )
            if placement is None:
                continue
            allocations[job.job_id] = Allocation(placement, job.spec.initial_plan)
        return allocations
