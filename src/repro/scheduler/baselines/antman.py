"""AntMan baseline (Xiao et al., OSDI'20) as characterized in Rubick §7.3.

AntMan provides the same guaranteed / best-effort job taxonomy as Rubick but
guarantees *resources* rather than performance: guaranteed jobs receive
exactly their requested allocation (gang-scheduled FIFO within the tenant
quota, preempting best-effort jobs if needed); best-effort jobs run
opportunistically on leftover GPUs and are preempted whenever a guaranteed
job needs the space.  Plans and GPU counts are never reconfigured — AntMan
performs no plan selection at all, so it accepts the shared
:class:`~repro.planeval.PlanEvalEngine` only for interface uniformity with
the other policies (CLI stats reporting); its decisions never consult it.
"""

from __future__ import annotations

from repro.cluster.state import Cluster
from repro.planeval import PlanEvalEngine
from repro.scheduler.baselines.common import FreePool, HostDemandMemo
from repro.scheduler.interfaces import (
    Allocation,
    SchedulerPolicy,
    SchedulingContext,
)
from repro.scheduler.job import Job, JobStatus


class AntManPolicy(SchedulerPolicy):
    name = "antman"
    # Pure function of job/cluster state (FIFO within quota, fixed plans);
    # never reads the clock, so steady-state rounds can skip it.
    reactive = True

    def __init__(
        self, *, cpus_per_gpu: int = 4, engine: PlanEvalEngine | None = None
    ):
        self.cpus_per_gpu = cpus_per_gpu
        self.engine = engine
        self._host_demand = HostDemandMemo()

    def schedule(
        self, jobs: list[Job], cluster: Cluster, ctx: SchedulingContext
    ) -> dict[str, Allocation]:
        # One pass partitions the job list (order-preserving, so the FIFO
        # sorts below tie-break exactly as the old per-filter scans did)
        # while building the keep-allocation map and per-tenant quota usage.
        # Running jobs keep their allocation, pending preemption below; the
        # job's own placement is in lockstep with the cluster's (the
        # simulator sets both or neither), so reuse it instead of
        # reassembling an equal Placement from the node index.
        allocations: dict[str, Allocation] = {}
        quota_used: dict[str, int] = {}
        guar_queued: list[Job] = []
        be_queued: list[Job] = []
        be_run: list[Job] = []
        for job in jobs:
            st = job.status
            if st is JobStatus.QUEUED:
                if job.spec.is_guaranteed:
                    guar_queued.append(job)
                else:
                    be_queued.append(job)
            elif st is JobStatus.RUNNING or st is JobStatus.PAUSED:
                spec = job.spec
                placement = job.placement
                if job.plan is not None and not placement.is_empty:
                    allocations[spec.job_id] = Allocation(placement, job.plan)
                if spec.is_guaranteed:
                    quota_used[spec.tenant] = quota_used.get(
                        spec.tenant, 0
                    ) + placement.total.gpus
                else:
                    be_run.append(job)

        pool = FreePool(cluster, keep_job_ids=set(allocations))

        def host_fn(job: Job):
            return self._host_demand.fn(
                job.model, job.spec.initial_plan, job.spec.global_batch
            )

        # Guaranteed queued jobs, FIFO within quota (usage = requested GPUs).
        queued_guar = sorted(guar_queued, key=lambda j: j.spec.submit_time)
        # Best-effort victims, most recently started first.
        be_running = sorted(
            be_run, key=lambda j: j.start_time or 0.0, reverse=True
        )
        for job in queued_guar:
            need = job.spec.requested.gpus
            tenant = job.spec.tenant
            if quota_used.get(tenant, 0) + need > ctx.tenant_quota(tenant):
                continue
            # Preempt best-effort jobs until the guaranteed job fits.
            while pool.free_gpus < need and be_running:
                victim = be_running.pop(0)
                victim_alloc = allocations.pop(victim.job_id, None)
                if victim_alloc is not None:
                    pool.release(victim_alloc.placement)
            placement = pool.allocate_packed(
                need, cpus_per_gpu=self.cpus_per_gpu, host_mem_per_node=host_fn(job)
            )
            if placement is None:
                continue
            allocations[job.job_id] = Allocation(placement, job.spec.initial_plan)
            quota_used[tenant] = quota_used.get(tenant, 0) + need

        # Best-effort queued jobs use whatever is left, FIFO.
        queued_be = sorted(be_queued, key=lambda j: j.spec.submit_time)
        for job in queued_be:
            placement = pool.allocate_packed(
                job.spec.requested.gpus,
                cpus_per_gpu=self.cpus_per_gpu,
                host_mem_per_node=host_fn(job),
            )
            if placement is None:
                continue
            allocations[job.job_id] = Allocation(placement, job.spec.initial_plan)
        return allocations
