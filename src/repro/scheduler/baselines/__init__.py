"""Baseline schedulers Rubick is evaluated against (paper §7.3)."""

from repro.scheduler.baselines.antman import AntManPolicy
from repro.scheduler.baselines.common import FreePool
from repro.scheduler.baselines.sia import SiaPolicy
from repro.scheduler.baselines.simple import SimpleEqualPolicy
from repro.scheduler.baselines.synergy import SynergyPolicy

__all__ = [
    "AntManPolicy",
    "FreePool",
    "SiaPolicy",
    "SimpleEqualPolicy",
    "SynergyPolicy",
]
