"""Sia baseline (Jayaram Subramanya et al., SOSP'23) as characterized in §7.3.

Sia is a goodput-optimized scheduler that adapts the *number of GPUs* of each
job by scaling its data-parallel degree.  Per the paper's discussion:

* it scales only along the DP dimension (the open-source artifact supports
  pure-DP jobs; for 3D-parallel jobs the TP/PP sizes stay frozen and only the
  replica count changes — jobs that cannot scale fall back to their fixed
  submitted configuration);
* it does not reason about ZeRO/GC trade-offs or plan switching;
* it allocates GPUs only — CPUs follow a fixed proportional ratio, host
  memory is whatever the plan needs.

Our implementation solves the per-round allocation with the standard greedy
marginal-goodput ascent over each job's DP-scaling speedup curve (Sia's ILP
reduces to this under a single resource type and concave curves).
"""

from __future__ import annotations

from repro.plans.memory import host_mem_demand_per_node
from repro.cluster.state import Cluster
from repro.planeval import PlanEvalEngine
from repro.scheduler.baselines.common import FreePool
from repro.scheduler.interfaces import (
    Allocation,
    SchedulerPolicy,
    SchedulingContext,
)
from repro.scheduler.job import Job
from repro.scheduler.selectors import ScaledDpSelector
from repro.scheduler.sensitivity import bootstrap_analyzer


class SiaPolicy(SchedulerPolicy):
    name = "sia"
    reactive = True

    def steady_state(self, jobs, ctx) -> bool:
        # Sia's only clock-driven input is the reconfiguration gate, which
        # can only open over time (same argument as RubickPolicy): keep
        # invoking the policy while any running job's gate is still closed.
        # Queued jobs don't block: the greedy ascent is pure state.
        return all(
            job.reconfig_gate_open(ctx.reconfig_delta)
            for job in jobs
            if job.is_running
        )

    def __init__(
        self, *, cpus_per_gpu: int = 4, engine: PlanEvalEngine | None = None
    ):
        self.cpus_per_gpu = cpus_per_gpu
        self.engine = engine
        self._selector: ScaledDpSelector | None = None

    def _ensure(self, ctx: SchedulingContext) -> ScaledDpSelector:
        if self._selector is None:
            self._selector = ScaledDpSelector(bootstrap_analyzer(self, ctx))
        return self._selector

    def schedule(
        self, jobs: list[Job], cluster: Cluster, ctx: SchedulingContext
    ) -> dict[str, Allocation]:
        selector = self._ensure(ctx)
        active = [j for j in jobs if j.is_active]
        if not active:
            return {}
        total_gpus = ctx.cluster_spec.total_gpus

        # Normalizer: goodput relative to the job's requested configuration.
        baselines: dict[str, float] = {}
        for job in active:
            curve = selector.curve(job)
            base = curve.throughput_at(job.spec.requested.gpus)
            baselines[job.job_id] = base if base > 0 else 1.0

        # Greedy marginal ascent: hand out GPUs one at a time to the job
        # gaining the most normalized goodput, honoring the reconfiguration
        # gate for running jobs (changing them costs a restart).
        counts: dict[str, int] = {j.job_id: 0 for j in active}
        frozen: dict[str, int] = {}
        for job in active:
            if job.is_running and not job.reconfig_gate_open(ctx.reconfig_delta):
                frozen[job.job_id] = cluster.placement_of(job.job_id).total.gpus
        budget = total_gpus - sum(frozen[j] for j in sorted(frozen))
        for job_id, gpus in frozen.items():
            counts[job_id] = gpus

        # Goodput curves are step functions over the *feasible* GPU counts
        # (gang constraints), so the ascent jumps whole blocks: each step
        # moves one job from its current count to its next feasible count,
        # picking the best normalized gain per GPU.
        flexible = [j for j in active if j.job_id not in frozen]
        while budget > 0:
            best_job = None
            best_gain = 0.0
            best_block = 0
            for job in flexible:
                curve = selector.curve(job)
                cur = counts[job.job_id]
                nxt = self._next_feasible(curve, cur, cur + budget)
                if nxt is None:
                    continue
                block = nxt - cur
                gain = (
                    curve.throughput_at(nxt) - curve.throughput_at(cur)
                ) / (block * baselines[job.job_id])
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_job = job
                    best_block = block
            if best_job is None:
                break
            counts[best_job.job_id] += best_block
            budget -= best_block

        # Hysteresis: moving a running job to a nearby count costs a restart;
        # keep its current count unless the goodput change is substantial.
        for job in flexible:
            if not job.is_running:
                continue
            current = cluster.placement_of(job.job_id).total.gpus
            new = counts[job.job_id]
            if new == current or current <= 0:
                continue
            curve = selector.curve(job)
            thr_cur = curve.throughput_at(current)
            thr_new = curve.throughput_at(new)
            if thr_cur <= 0:
                continue
            if abs(thr_new - thr_cur) / thr_cur < 0.15:
                counts[job.job_id] = current

        # Place jobs (largest first) and attach their scaled plans.
        # Counts land on feasible points by construction of the block ascent.
        allocations: dict[str, Allocation] = {}
        pool = FreePool(cluster, keep_job_ids=set())
        order = sorted(active, key=lambda j: counts[j.job_id], reverse=True)
        for job in order:
            gpus = counts[job.job_id]
            if gpus <= 0:
                continue
            curve = selector.curve(job)
            cfg = curve.raw[gpus] or curve.config_at(gpus)
            if cfg is None:
                continue
            plan = cfg.plan
            # Placement stickiness: an unchanged GPU count keeps its exact
            # placement — re-packing would be a restart for no gain.
            if job.is_running and job.plan == plan:
                current = cluster.placement_of(job.job_id)
                if current.total.gpus == gpus and pool.claim(current):
                    allocations[job.job_id] = Allocation(current, plan)
                    continue
            placement = pool.allocate_packed(
                plan.num_gpus,
                cpus_per_gpu=self.cpus_per_gpu,
                host_mem_per_node=lambda g, j=job, p=plan: host_mem_demand_per_node(
                    j.model, p, j.spec.global_batch, g
                ),
            )
            if placement is not None:
                allocations[job.job_id] = Allocation(placement, plan)
                continue
            # Fragmentation: fall back to the job's current allocation rather
            # than preempting it (a restart would cost more than it saves).
            if job.is_running and job.plan is not None:
                current = cluster.placement_of(job.job_id)
                if not current.is_empty and pool.claim(current):
                    allocations[job.job_id] = Allocation(current, job.plan)
        return allocations

    @staticmethod
    def _next_feasible(curve, current: int, limit: int) -> int | None:
        """Smallest feasible GPU count above ``current`` within ``limit``."""
        for g in range(current + 1, min(limit, curve.max_gpus) + 1):
            if curve.raw[g] is not None:
                return g
        return None
