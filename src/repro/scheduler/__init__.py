"""Scheduling: jobs, sensitivity curves, the Rubick policy, and baselines.

All plan selection routes through the unified plan-evaluation engine
(`repro.planeval`); :class:`PlanEvalEngine` and :class:`EngineStats` are
re-exported here for convenience.
"""

from repro.planeval import EngineStats, PlanEvalEngine
from repro.scheduler.interfaces import (
    Allocation,
    PerfModelStore,
    SchedulerPolicy,
    SchedulingContext,
    Tenant,
)
from repro.scheduler.job import Job, JobPriority, JobSpec, JobStatus
from repro.scheduler.rubick import RubickPolicy
from repro.scheduler.selectors import (
    BestPlanSelector,
    FixedPlanSelector,
    PlanSelector,
    ScaledDpSelector,
)
from repro.scheduler.sensitivity import (
    BestConfig,
    GpuCurve,
    SensitivityAnalyzer,
    default_plan_space,
)
from repro.scheduler.variants import rubick, rubick_e, rubick_n, rubick_r

__all__ = [
    "Allocation",
    "BestConfig",
    "BestPlanSelector",
    "EngineStats",
    "FixedPlanSelector",
    "GpuCurve",
    "PlanEvalEngine",
    "Job",
    "JobPriority",
    "JobSpec",
    "JobStatus",
    "PerfModelStore",
    "PlanSelector",
    "RubickPolicy",
    "ScaledDpSelector",
    "SchedulerPolicy",
    "SchedulingContext",
    "SensitivityAnalyzer",
    "Tenant",
    "default_plan_space",
    "rubick",
    "rubick_e",
    "rubick_n",
    "rubick_r",
]
