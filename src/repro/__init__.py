"""repro — a reproduction of Rubick (MLSYS 2025).

Rubick: Exploiting Job Reconfigurability for Deep Learning Cluster
Scheduling.  This package implements the paper's performance model for
reconfigurable DL training, the Rubick scheduling policy and its ablation
variants, the baseline schedulers it is evaluated against (Sia, Synergy,
AntMan), and the substrates everything runs on: a model/plan/memory system,
a cluster model, a synthetic A800 testbed (the hardware substitution — see
DESIGN.md), and a discrete-time cluster simulator with a Philly-like
workload generator.

Quickstart::

    from repro import (
        PAPER_CLUSTER, SyntheticTestbed, build_perf_model, GPT2,
    )

    testbed = SyntheticTestbed(PAPER_CLUSTER, seed=0)
    perf, report = build_perf_model(testbed, GPT2, GPT2.global_batch_size)
    print(report.rmsle)

See ``examples/`` for end-to-end scenarios and ``benchmarks/`` for the
paper's tables and figures.
"""

from repro.cluster import (
    PAPER_CLUSTER,
    Cluster,
    ClusterSpec,
    NodeSpec,
    Placement,
    ResourceVector,
    single_node_cluster,
)
from repro.models import CATALOG, GPT2, LLAMA2_7B, ModelSpec, all_models, get_model
from repro.oracle import SyntheticTestbed, build_perf_model
from repro.perfmodel import (
    Interconnect,
    PerfModel,
    PerfParams,
    ResourceShape,
    ThroughputSample,
    fit_perf_model,
)
from repro.plans import (
    ExecutionPlan,
    ZeroStage,
    enumerate_plans,
    estimate_memory,
    feasible_gpu_counts,
)
from repro.planeval import EngineStats, PlanEvalEngine
from repro.scheduler import (
    Allocation,
    Job,
    JobPriority,
    JobSpec,
    PerfModelStore,
    RubickPolicy,
    SchedulingContext,
    SensitivityAnalyzer,
    Tenant,
    rubick,
    rubick_e,
    rubick_n,
    rubick_r,
)
from repro.scheduler.registry import POLICIES, make_policy
from repro.service import ServiceClient, ServiceMaster, serve
from repro.sim import (
    EngineConfig,
    SimulationResult,
    Simulator,
    StepReport,
    Trace,
    TraceJob,
    WorkloadConfig,
    generate_trace,
    to_best_plan_trace,
    to_multi_tenant_trace,
)
from repro.workloads import list_scenarios, resolve_scenario

__version__ = "1.0.0"

__all__ = [
    "Allocation",
    "CATALOG",
    "Cluster",
    "ClusterSpec",
    "EngineConfig",
    "EngineStats",
    "ExecutionPlan",
    "GPT2",
    "Interconnect",
    "Job",
    "JobPriority",
    "JobSpec",
    "LLAMA2_7B",
    "ModelSpec",
    "NodeSpec",
    "PAPER_CLUSTER",
    "POLICIES",
    "PerfModel",
    "PerfModelStore",
    "PerfParams",
    "Placement",
    "PlanEvalEngine",
    "ResourceShape",
    "ResourceVector",
    "RubickPolicy",
    "SchedulingContext",
    "SensitivityAnalyzer",
    "ServiceClient",
    "ServiceMaster",
    "SimulationResult",
    "Simulator",
    "StepReport",
    "SyntheticTestbed",
    "Tenant",
    "ThroughputSample",
    "Trace",
    "TraceJob",
    "WorkloadConfig",
    "ZeroStage",
    "all_models",
    "build_perf_model",
    "enumerate_plans",
    "estimate_memory",
    "feasible_gpu_counts",
    "fit_perf_model",
    "generate_trace",
    "get_model",
    "list_scenarios",
    "make_policy",
    "resolve_scenario",
    "rubick",
    "rubick_e",
    "rubick_n",
    "rubick_r",
    "serve",
    "single_node_cluster",
    "to_best_plan_trace",
    "to_multi_tenant_trace",
]
