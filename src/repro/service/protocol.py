"""Wire protocol for the live scheduling service.

Every frame is a length-delimited JSON object: a 4-byte big-endian unsigned
length header followed by that many bytes of UTF-8 JSON.  Length-delimited
framing (rather than newline-delimited) keeps payloads free to contain any
JSON — including pretty-printed result documents — and makes torn reads
trivially resumable: :class:`FrameDecoder` buffers partial frames across
``feed()`` calls until the header's byte count has arrived.

Request frames (client → master):

==================  ====================================================
``SUBMIT``          ``{"type": "SUBMIT", "job": <trace-job dict>}`` —
                    one job submission (the same per-job document trace
                    files use, see ``repro.sim.serialization``).
``CLUSTER_EVENT``   ``{"type": "CLUSTER_EVENT", "event": <event dict>}``
                    — one cluster-dynamics event (failure/recovery/
                    scaling, see ``repro.cluster.dynamics``).
``STATUS``          session snapshot (cheap, any time).
``METRICS``         current metrics payload (wall-clock fields excluded,
                    like persisted result documents).
``DRAIN``           ``{"type": "DRAIN", "trace_name": <optional str>}``
                    — close the submission stream, run the simulation to
                    completion, reply ``DRAINED`` with the final result
                    document, and shut the master down.
==================  ====================================================

Reply frames (master → client): ``OK`` (per accepted SUBMIT /
CLUSTER_EVENT), ``STATUS``, ``METRICS``, ``DRAINED`` (carrying the final
result document) and ``ERROR`` (per rejected frame; the connection stays
up — a rejected frame is the *client's* problem, not stream damage).
"""

from __future__ import annotations

import json
import struct

from repro.errors import ProtocolError

_HEADER = struct.Struct(">I")
HEADER_BYTES = _HEADER.size

#: Upper bound on a single frame body.  Generous — a 100k-record DRAINED
#: result document fits — while still catching a corrupted/garbage header
#: before it turns into a multi-gigabyte allocation.
MAX_FRAME_BYTES = 64 * 1024 * 1024

# Request frame types.
SUBMIT = "SUBMIT"
CLUSTER_EVENT = "CLUSTER_EVENT"
STATUS = "STATUS"
METRICS = "METRICS"
DRAIN = "DRAIN"
# Reply frame types.
OK = "OK"
ERROR = "ERROR"
DRAINED = "DRAINED"

REQUEST_TYPES = frozenset({SUBMIT, CLUSTER_EVENT, STATUS, METRICS, DRAIN})


def encode_frame(payload: dict) -> bytes:
    """Serialize one frame (header + compact JSON body).

    ``allow_nan=False`` — NaN/Infinity have no JSON encoding and must not
    leak onto the wire (the metrics layer already maps NaN to null before
    building payloads, matching persisted result documents).
    """
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame payload must be a dict, got {type(payload).__name__}"
        )
    body = json.dumps(
        payload, separators=(",", ":"), sort_keys=True, allow_nan=False
    ).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES="
            f"{MAX_FRAME_BYTES}"
        )
    return _HEADER.pack(len(body)) + body


class FrameDecoder:
    """Incremental frame decoder with torn-frame buffering.

    Feed it whatever ``recv()`` returned; it yields every frame that is now
    complete and keeps the tail buffered for the next feed.  One decoder
    per connection — frames from different sockets must never share a
    buffer.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buf)

    def feed(self, data: bytes) -> list[dict]:
        self._buf += data
        frames: list[dict] = []
        while True:
            if len(self._buf) < HEADER_BYTES:
                return frames
            (length,) = _HEADER.unpack_from(self._buf)
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"frame header announces {length} bytes "
                    f"(> MAX_FRAME_BYTES={MAX_FRAME_BYTES}); stream corrupt"
                )
            if len(self._buf) < HEADER_BYTES + length:
                return frames
            body = bytes(self._buf[HEADER_BYTES:HEADER_BYTES + length])
            del self._buf[:HEADER_BYTES + length]
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ProtocolError(f"undecodable frame body: {exc}") from exc
            if not isinstance(payload, dict):
                raise ProtocolError(
                    "frame payload must be a JSON object, got "
                    f"{type(payload).__name__}"
                )
            frames.append(payload)


def error_frame(message: str) -> dict:
    return {"type": ERROR, "error": message}


#: Key contract per frame type: ``(required, optional)``.  ``required``
#: keys must all be present; any key outside ``required | optional`` is a
#: contract violation.  This registry is the single source of truth the
#: RPL009 lint rule checks every literal frame dict against, so a frame
#: shape change must land here *and* in the docstring table above — the
#: linter fails on any construction site left behind.
FRAME_SCHEMAS: dict[str, tuple[frozenset, frozenset]] = {
    SUBMIT: (frozenset({"type", "job"}), frozenset()),
    CLUSTER_EVENT: (frozenset({"type", "event"}), frozenset()),
    STATUS: (frozenset({"type"}), frozenset({"status"})),
    METRICS: (frozenset({"type"}), frozenset({"metrics"})),
    DRAIN: (frozenset({"type"}), frozenset({"trace_name"})),
    OK: (
        frozenset({"type"}),
        frozenset({"completed", "event", "job_id", "now"}),
    ),
    ERROR: (frozenset({"type", "error"}), frozenset()),
    DRAINED: (
        frozenset({"type", "result"}),
        frozenset({"metrics", "note"}),
    ),
}


def validate_frame(payload: dict) -> list[str]:
    """Schema problems of one frame payload ([] when conformant).

    Runtime companion of the static RPL009 check: the linter proves
    literal construction sites conform; this helper covers frames built
    dynamically (tests, external clients).
    """
    frame_type = payload.get("type")
    if frame_type not in FRAME_SCHEMAS:
        return [f"unknown frame type {frame_type!r}"]
    required, optional = FRAME_SCHEMAS[frame_type]
    problems = [
        f"missing required key {key!r}"
        for key in sorted(required - set(payload))
    ]
    problems.extend(
        f"unexpected key {key!r}"
        for key in sorted(set(payload) - required - optional)
    )
    return problems
