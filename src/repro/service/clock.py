"""Session clocks: deterministic virtual time vs scaled real time.

The master's event loop is generic over a clock with three members:

* ``virtual`` — True when simulated time is driven *only* by frame
  timestamps.  The master then blocks indefinitely waiting for frames and
  advances the engine with push-then-``step(until=t)`` per frame, which is
  what makes a streamed replay byte-identical to a batch run (CI mode).
* ``poll_interval`` — selector timeout in seconds (None = block forever).
* ``start()`` / ``now()`` — real-time clocks anchor a wall-clock origin on
  first use and map elapsed wall time to simulated seconds via ``speed``
  (e.g. ``speed=3600`` replays a 12-hour trace in ~12 wall seconds).
  ``now()`` is None on virtual clocks: there is no autonomous time.
"""

from __future__ import annotations

import time as _time


class VirtualClock:
    """Deterministic clock: simulated time advances only on frames."""

    virtual = True
    poll_interval: float | None = None

    def start(self) -> None:
        pass

    def now(self) -> float | None:
        return None

    def describe(self) -> str:
        return "virtual"


class RealTimeClock:
    """Wall-clock-driven simulated time, scaled by ``speed``.

    Nothing a real-time session produces is persisted as a deterministic
    artifact — byte-stable replay is exactly what :class:`VirtualClock`
    exists for — so reading the wall clock here is the point, not a leak.
    """

    virtual = False

    def __init__(self, speed: float = 1.0, poll_interval: float = 0.2):
        if speed <= 0:
            raise ValueError(f"speed must be positive, got {speed}")
        self.speed = speed
        self.poll_interval = poll_interval
        self._origin: float | None = None

    def start(self) -> None:
        if self._origin is None:
            self._origin = _time.monotonic()  # repro-lint: disable=RPL001 -- real-time service clock; results of real-time sessions are never persisted as deterministic artifacts

    def now(self) -> float | None:
        if self._origin is None:
            return 0.0
        elapsed = _time.monotonic() - self._origin  # repro-lint: disable=RPL001 -- real-time service clock; results of real-time sessions are never persisted as deterministic artifacts
        return elapsed * self.speed

    def describe(self) -> str:
        return f"real-time x{self.speed:g}"
