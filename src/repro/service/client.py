"""Scheduling-service client: blocking request/reply + trace replay.

:class:`ServiceClient` is the thin daemon side of the master/daemon
protocol — one blocking TCP connection, one frame out, one frame back.
``replay()`` is the load generator built on top of it: it merges a trace
and an optional cluster-event schedule into a single time-ordered frame
stream and plays it against a master, either as fast as the master acks
(virtual-clock mode — the deterministic CI path) or paced against wall
time scaled by ``speed``.
"""

from __future__ import annotations

import socket
import time as _time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.cluster.dynamics import ClusterEvent, event_to_dict
from repro.errors import ProtocolError
from repro.service import protocol
from repro.sim.serialization import trace_job_to_dict
from repro.sim.trace import Trace, TraceJob

_RECV_BYTES = 65536


class ServiceClient:
    """Blocking request/reply client for a scheduling-service master.

    Usable as a context manager::

        with ServiceClient(port=port) as client:
            client.submit_job(tj)
            doc = client.drain()["result"]
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int,
        timeout: float | None = 60.0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._decoder = protocol.FrameDecoder()

    # -- lifecycle -----------------------------------------------------
    def connect(self) -> "ServiceClient":
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- core request/reply --------------------------------------------
    def request(self, payload: dict) -> dict:
        """Send one frame and block for the master's reply frame.

        An ``ERROR`` reply raises :class:`ProtocolError` with the master's
        message; any other reply is returned as a dict.
        """
        sock = self.connect()._sock
        assert sock is not None
        sock.sendall(protocol.encode_frame(payload))
        while True:
            data = sock.recv(_RECV_BYTES)
            if data == b"":
                raise ProtocolError(
                    "master closed the connection before replying "
                    f"(request type {payload.get('type')!r})"
                )
            frames = self._decoder.feed(data)
            if frames:
                if len(frames) > 1:
                    raise ProtocolError(
                        f"expected one reply frame, got {len(frames)}"
                    )
                reply = frames[0]
                if reply.get("type") == protocol.ERROR:
                    raise ProtocolError(
                        reply.get("error", "unspecified service error")
                    )
                return reply

    # -- frame helpers -------------------------------------------------
    def submit_job(self, tj: TraceJob) -> dict:
        return self.request(
            {"type": protocol.SUBMIT, "job": trace_job_to_dict(tj)}
        )

    def post_event(self, event: ClusterEvent) -> dict:
        return self.request(
            {"type": protocol.CLUSTER_EVENT, "event": event_to_dict(event)}
        )

    def status(self) -> dict:
        return self.request({"type": protocol.STATUS})["status"]

    def metrics(self) -> dict:
        return self.request({"type": protocol.METRICS})["metrics"]

    def drain(self, trace_name: str | None = None) -> dict:
        """Close the stream and run to completion; returns the DRAINED
        frame (``result`` key holds the final result document)."""
        payload: dict = {"type": protocol.DRAIN}
        if trace_name is not None:
            payload["trace_name"] = trace_name
        return self.request(payload)


# ----------------------------------------------------------------------
# Load generation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReplayReport:
    """What a replay pushed through the master."""

    jobs: int
    events: int
    result: dict | None


def merged_frames(
    trace: Trace, events: Sequence[ClusterEvent] = ()
) -> Iterable[tuple[float, TraceJob | ClusterEvent]]:
    """Trace jobs and cluster events in submission order.

    Jobs sort before events at equal timestamps — the same tie the batch
    engine breaks by admitting arrivals before applying dynamics within a
    round, so a streamed replay reproduces the batch order.
    """
    items: list[tuple[float, int, TraceJob | ClusterEvent]] = [
        (tj.submit_time, 0, tj) for tj in trace
    ]
    items.extend((ev.time, 1, ev) for ev in events)
    items.sort(key=lambda entry: (entry[0], entry[1]))
    return [(t, item) for t, _, item in items]


def replay(
    trace: Trace,
    client: ServiceClient,
    *,
    events: Sequence[ClusterEvent] = (),
    speed: float | None = None,
    drain: bool = True,
    log: Callable[[str], None] | None = None,
) -> ReplayReport:
    """Stream a trace (and optional cluster events) into a master.

    ``speed=None`` replays in virtual time: frames go out as fast as the
    master acknowledges them, and the master's virtual clock makes the
    session byte-identical to a batch run of the same trace.  A positive
    ``speed`` paces frames against wall time (simulated seconds per wall
    second) for real-time-mode masters.

    With ``drain=True`` (default) the stream is closed afterwards and the
    final result document is returned in the report.
    """
    emit = log if log is not None else (lambda message: None)
    frames = list(merged_frames(trace, events))
    origin = None
    if speed is not None:
        if speed <= 0:
            raise ValueError(f"speed must be positive, got {speed}")
        origin = _time.monotonic()  # repro-lint: disable=RPL001 -- load-generator pacing against a real-time master; never on a persisted-artifact path
    jobs = events_sent = 0
    for t, item in frames:
        if origin is not None:
            lead = t / speed - (_time.monotonic() - origin)  # repro-lint: disable=RPL001 -- load-generator pacing against a real-time master; never on a persisted-artifact path
            if lead > 0:
                _time.sleep(lead)
        if isinstance(item, TraceJob):
            client.submit_job(item)
            jobs += 1
        else:
            client.post_event(item)
            events_sent += 1
    emit(f"streamed {jobs} jobs, {events_sent} cluster events")
    result_doc = None
    if drain:
        reply = client.drain(trace.name)
        result_doc = reply.get("result")
        emit("drained: session complete")
    return ReplayReport(jobs=jobs, events=events_sent, result=result_doc)
