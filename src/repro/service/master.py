"""Scheduling-service master: selector-based non-blocking frame loop.

One master owns one live :class:`~repro.sim.engine.Simulator` session
(``start(stream=True)``) and speaks the length-delimited JSON protocol in
``repro.service.protocol`` over TCP.  The shape follows Uberun's SSmaster:
a single-threaded ``selectors`` loop, per-client receive buffers, explicit
daemon-lost handling (an EOF or send failure drops the client and its
half-received frame without disturbing the session), and object-per-frame
dispatch.

Two clock modes (see ``repro.service.clock``):

* **Virtual** — simulated time advances only via push-then-
  ``step(until=t)`` on each SUBMIT / CLUSTER_EVENT frame.  A client that
  streams a trace in submit order reproduces the batch ``run()`` byte for
  byte; this is the deterministic CI mode.
* **Real time** — the selector wakes on ``poll_interval`` and steps the
  engine to ``clock.now()`` (wall seconds × speed); frame timestamps
  behind the clock are clamped to "now" (arrival order is the semantics).

A DRAIN frame closes the stream, runs the session to completion, replies
``DRAINED`` with the final result document (wall-clock fields excluded,
like every persisted result), and shuts the master down — the clean-exit
path the CI soak job asserts.
"""

from __future__ import annotations

import math
import selectors
import socket
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.cluster.dynamics import event_from_dict
from repro.errors import ProtocolError, ReproError, SimulationError
from repro.service import protocol
from repro.service.clock import RealTimeClock, VirtualClock
from repro.sim.engine import Simulator
from repro.sim.metrics import SimulationResult
from repro.sim.serialization import result_to_dict, trace_job_from_dict

_RECV_BYTES = 65536


def metrics_payload(result: SimulationResult) -> dict:
    """The METRICS frame body: the persisted-document subset of a result.

    Deliberately excludes the wall-clock perf fields
    (``sim_wall_seconds``, ``policy_wall_seconds``,
    ``events_per_second``) — service metrics follow the same contract as
    persisted result documents: a deterministic function of the submitted
    work, never of host speed (DESIGN.md item 28).
    """
    return {
        "policy_name": result.policy_name,
        "trace_name": result.trace_name,
        "completed": len(result.records) + result.dropped_records,
        "sim_rounds": result.sim_rounds,
        "policy_invocations": result.policy_invocations,
        "policy_skips": result.policy_skips,
        "cluster_events": result.cluster_events,
        "evictions": result.evictions,
        "incidents": len(result.incidents),
        "summary": {
            k: None if isinstance(v, float) and math.isnan(v) else v
            for k, v in result.summary().items()
        },
    }


@dataclass
class _Client:
    sock: socket.socket
    addr: str
    decoder: protocol.FrameDecoder = field(
        default_factory=protocol.FrameDecoder
    )
    outbuf: bytearray = field(default_factory=bytearray)


class ServiceMaster:
    """One listening socket + one live simulation session."""

    def __init__(
        self,
        simulator: Simulator,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        clock: VirtualClock | RealTimeClock | None = None,
        tenants: dict | None = None,
        log: Callable[[str], None] | None = None,
    ):
        self.simulator = simulator
        self.host = host
        self.port = port
        self.tenants = tenants
        self.clock = clock if clock is not None else VirtualClock()
        self._log = log if log is not None else (lambda message: None)
        self._sel: selectors.BaseSelector | None = None
        self._server: socket.socket | None = None
        self._clients: dict[socket.socket, _Client] = {}
        self._result: SimulationResult | None = None
        self._frames_handled = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, port_file: str | Path | None = None) -> tuple[str, int]:
        """Open the listening socket and the simulation session.

        Returns the bound ``(host, port)`` (``port=0`` requests an
        ephemeral port; the real one is returned and, when ``port_file``
        is given, written there for clients to discover).
        """
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen()
        listener.setblocking(False)
        self.port = listener.getsockname()[1]
        self._server = listener
        self._sel = selectors.DefaultSelector()
        self._sel.register(listener, selectors.EVENT_READ, data=None)
        self.simulator.start(stream=True, tenants=self.tenants)
        if port_file is not None:
            Path(port_file).write_text(f"{self.port}\n")
        self._log(
            f"serving policy {self.simulator.policy.name!r} on "
            f"{self.host}:{self.port} ({self.clock.describe()} clock)"
        )
        return self.host, self.port

    def close(self) -> None:
        for client in list(self._clients.values()):
            self._drop(client.sock, "shutdown")
        if self._server is not None:
            if self._sel is not None:
                self._sel.unregister(self._server)
            self._server.close()
            self._server = None
        if self._sel is not None:
            self._sel.close()
            self._sel = None

    def serve_forever(self) -> SimulationResult | None:
        """Run until a DRAIN frame completes; returns the final result.

        A SimulationError raised by the engine mid-stream (deadlock, policy
        escalation, max_sim_time) propagates after a best-effort ERROR
        frame to every client — ``repro serve`` then exits non-zero.
        """
        if self._sel is None:
            self.bind()
        assert self._sel is not None
        self.clock.start()
        try:
            while self._result is None or self._pending_output():
                events = self._sel.select(self.clock.poll_interval)
                if not self.clock.virtual and self._result is None:
                    sim_now = self.clock.now()
                    if sim_now is not None:
                        self._step_to(sim_now)
                for key, _mask in events:
                    if key.data is None:
                        self._accept()
                    else:
                        self._service(key.data)
                if self._result is not None and not self._clients:
                    break
        except SimulationError as exc:
            self._broadcast_error(f"simulation failed: {exc}")
            raise
        finally:
            self.close()
        return self._result

    # ------------------------------------------------------------------
    # Socket plumbing
    # ------------------------------------------------------------------
    def _accept(self) -> None:
        assert self._server is not None and self._sel is not None
        conn, addr = self._server.accept()
        conn.setblocking(False)
        client = _Client(sock=conn, addr=f"{addr[0]}:{addr[1]}")
        self._clients[conn] = client
        self._sel.register(conn, selectors.EVENT_READ, data=client)
        self._log(f"client connected: {client.addr}")

    def _drop(self, sock: socket.socket, reason: str) -> None:
        client = self._clients.pop(sock, None)
        if client is None:
            return
        if self._sel is not None:
            try:
                self._sel.unregister(sock)
            except KeyError:
                pass
        try:
            sock.close()
        except OSError:
            pass
        torn = client.decoder.pending_bytes
        suffix = f" ({torn} bytes of a torn frame discarded)" if torn else ""
        self._log(f"client lost: {client.addr} — {reason}{suffix}")

    def _service(self, client: _Client) -> None:
        """One readable/writable event on an established connection."""
        try:
            data = client.sock.recv(_RECV_BYTES)
        except BlockingIOError:
            data = None
        except OSError as exc:
            self._drop(client.sock, f"recv failed: {exc}")
            return
        if data == b"":
            # Daemon-lost: EOF mid-session.  The session itself survives —
            # a replacement client can reconnect and continue streaming.
            self._drop(client.sock, "connection closed by peer")
            return
        if data:
            try:
                frames = client.decoder.feed(data)
            except ProtocolError as exc:
                # Stream damage is unrecoverable per-connection: tell the
                # client why (best effort) and drop it.
                self._send(client, protocol.error_frame(str(exc)))
                self._drop(client.sock, f"protocol error: {exc}")
                return
            for frame in frames:
                self._handle(client, frame)
                self._frames_handled += 1
        self._flush(client)

    def _send(self, client: _Client, payload: dict) -> None:
        client.outbuf += protocol.encode_frame(payload)
        self._flush(client)

    def _flush(self, client: _Client) -> None:
        if client.sock not in self._clients:
            return
        while client.outbuf:
            try:
                sent = client.sock.send(client.outbuf)
            except (BlockingIOError, InterruptedError):
                break
            except OSError as exc:
                self._drop(client.sock, f"send failed: {exc}")
                return
            if sent == 0:
                break
            del client.outbuf[:sent]
        if self._sel is not None:
            mask = selectors.EVENT_READ
            if client.outbuf:
                mask |= selectors.EVENT_WRITE
            self._sel.modify(client.sock, mask, data=client)

    def _pending_output(self) -> bool:
        return any(c.outbuf for c in self._clients.values())

    def _broadcast_error(self, message: str) -> None:
        for client in list(self._clients.values()):
            try:
                self._send(client, protocol.error_frame(message))
            except (ProtocolError, OSError):
                pass

    # ------------------------------------------------------------------
    # Frame dispatch
    # ------------------------------------------------------------------
    def _handle(self, client: _Client, frame: dict) -> None:
        kind = frame.get("type")
        if kind == protocol.SUBMIT:
            self._handle_submit(client, frame)
        elif kind == protocol.CLUSTER_EVENT:
            self._handle_cluster_event(client, frame)
        elif kind == protocol.STATUS:
            self._send(
                client,
                {"type": protocol.STATUS, "status": self.simulator.status()},
            )
        elif kind == protocol.METRICS:
            self._send(
                client,
                {
                    "type": protocol.METRICS,
                    "metrics": metrics_payload(self.simulator.result()),
                },
            )
        elif kind == protocol.DRAIN:
            self._handle_drain(client, frame)
        else:
            self._send(
                client,
                protocol.error_frame(
                    f"unknown frame type {kind!r}; expected one of "
                    + ", ".join(sorted(protocol.REQUEST_TYPES))
                ),
            )

    def _handle_submit(self, client: _Client, frame: dict) -> None:
        sim = self.simulator
        try:
            job_doc = frame["job"]
            tj = trace_job_from_dict(job_doc)
            tj = sim.submit(tj, clamp=not self.clock.virtual)
        except SimulationError:
            raise
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            self._send(
                client, protocol.error_frame(f"SUBMIT rejected: {exc}")
            )
            return
        if self.clock.virtual:
            # Insert-before-step: the clock lands exactly on the arrival
            # and stops; the admission round runs on the next frame's step
            # — the order of rounds is byte-identical to a batch replay.
            report = sim.step(until=tj.submit_time)
        else:
            report = sim.step(until=self.clock.now())
        self._send(
            client,
            {
                "type": protocol.OK,
                "job_id": tj.job_id,
                "now": report.now,
                "completed": self._completed(),
            },
        )

    def _handle_cluster_event(self, client: _Client, frame: dict) -> None:
        sim = self.simulator
        try:
            event = event_from_dict(frame["event"])
            event = sim.post_cluster_event(
                event, clamp=not self.clock.virtual
            )
        except SimulationError:
            raise
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            self._send(
                client, protocol.error_frame(f"CLUSTER_EVENT rejected: {exc}")
            )
            return
        if self.clock.virtual:
            report = sim.step(until=event.time)
        else:
            report = sim.step(until=self.clock.now())
        self._send(
            client,
            {"type": protocol.OK, "now": report.now, "event": event.kind},
        )

    def _handle_drain(self, client: _Client, frame: dict) -> None:
        sim = self.simulator
        trace_name = frame.get("trace_name")
        sim.drain(trace_name if isinstance(trace_name, str) else None)
        wall = 0.0
        rounds = 0
        report = sim.step(until=float("inf"))
        wall += report.wall_seconds
        rounds += report.rounds
        while not report.done:
            report = sim.step(until=float("inf"))
            wall += report.wall_seconds
            rounds += report.rounds
        result = sim.result()
        self._result = result
        rate = rounds / wall if wall > 0 else 0.0
        self._log(
            f"drained: {len(result.records) + result.dropped_records} jobs, "
            f"{result.sim_rounds} rounds ({self._frames_handled + 1} frames; "
            f"drain leg {rounds} rounds at {rate:.0f} events/s)"
        )
        try:
            doc = result_to_dict(result)
        except ValueError as exc:
            # max_records retention dropped records: the full document
            # cannot be built, ship the metrics payload instead.
            self._send(
                client,
                {
                    "type": protocol.DRAINED,
                    "result": None,
                    "metrics": metrics_payload(result),
                    "note": str(exc),
                },
            )
            return
        self._send(client, {"type": protocol.DRAINED, "result": doc})

    # ------------------------------------------------------------------
    # Engine stepping
    # ------------------------------------------------------------------
    def _completed(self) -> int:
        result = self.simulator.result()
        return len(result.records) + result.dropped_records

    def _step_to(self, sim_time: float) -> None:
        """Real-time mode: advance the engine to the clock's reading."""
        self.simulator.step(until=sim_time)


def serve(
    simulator: Simulator,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    clock: VirtualClock | RealTimeClock | None = None,
    tenants: dict | None = None,
    port_file: str | Path | None = None,
    log: Callable[[str], None] | None = None,
) -> SimulationResult | None:
    """Run a scheduling-service master to completion (blocking).

    Binds, serves frames until a DRAIN completes, and returns the final
    :class:`SimulationResult` (None if the loop exits without a drain).
    """
    master = ServiceMaster(
        simulator, host=host, port=port, clock=clock, tenants=tenants, log=log
    )
    master.bind(port_file=port_file)
    return master.serve_forever()
