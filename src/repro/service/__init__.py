"""Live scheduling service: master/daemon protocol over the step() engine.

The package turns the batch simulator into a long-running scheduler
process (the paper's deployment shape: one master accepting streamed job
submissions, many daemons reporting in):

* ``protocol`` — length-delimited JSON frames (SUBMIT / CLUSTER_EVENT /
  STATUS / METRICS / DRAIN) with torn-frame-safe decoding.
* ``clock`` — deterministic virtual time (CI) vs scaled real time.
* ``master`` — the selector-based non-blocking service loop
  (``repro serve``).
* ``client`` — blocking request/reply client + trace replay load
  generator (``repro submit``).
"""

from repro.service.clock import RealTimeClock, VirtualClock
from repro.service.client import ReplayReport, ServiceClient, replay
from repro.service.master import ServiceMaster, metrics_payload, serve
from repro.service.protocol import FrameDecoder, encode_frame

__all__ = [
    "FrameDecoder",
    "RealTimeClock",
    "ReplayReport",
    "ServiceClient",
    "ServiceMaster",
    "VirtualClock",
    "encode_frame",
    "metrics_payload",
    "replay",
    "serve",
]
