"""ResourceShape and Interconnect environment."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import PAPER_CLUSTER, Placement, ResourceVector
from repro.perfmodel import Interconnect, ResourceShape


class TestInterconnect:
    def test_from_cluster_uses_paper_bandwidths(self):
        env = Interconnect.from_cluster(PAPER_CLUSTER)
        assert env.intra_bw == PAPER_CLUSTER.node.intra_bw
        assert env.inter_bw == PAPER_CLUSTER.inter_bw
        assert env.intra_bw > env.inter_bw > env.pcie_bw


class TestPackedShape:
    def test_zero_gpus(self):
        shape = ResourceShape.packed(0)
        assert shape.gpus == 0 and shape.num_nodes == 0
        assert not shape.spans_nodes

    def test_single_node(self):
        shape = ResourceShape.packed(8)
        assert shape.num_nodes == 1
        assert shape.min_gpus_per_node == 8
        assert shape.cpus == 8  # defaults to 1 CPU/GPU

    def test_ragged_tail(self):
        shape = ResourceShape.packed(12, node_size=8)
        assert shape.num_nodes == 2
        assert shape.min_gpus_per_node == 4
        assert shape.spans_nodes

    @given(gpus=st.integers(1, 64))
    def test_node_count_consistent(self, gpus):
        shape = ResourceShape.packed(gpus, node_size=8)
        assert (shape.num_nodes - 1) * 8 < gpus <= shape.num_nodes * 8
        assert 1 <= shape.min_gpus_per_node <= 8

    def test_with_cpus_replaces_only_cpus(self):
        shape = ResourceShape.packed(8).with_cpus(64)
        assert shape.cpus == 64
        assert shape.gpus == 8

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ResourceShape(gpus=-1, num_nodes=1, min_gpus_per_node=1, cpus=1)
        with pytest.raises(ValueError):
            ResourceShape(gpus=4, num_nodes=0, min_gpus_per_node=4, cpus=4)


class TestFromPlacement:
    def test_matches_placement_structure(self):
        placement = Placement(
            {
                0: ResourceVector(gpus=8, cpus=16),
                1: ResourceVector(gpus=2, cpus=4),
            }
        )
        shape = ResourceShape.from_placement(placement)
        assert shape.gpus == 10
        assert shape.num_nodes == 2
        assert shape.min_gpus_per_node == 2
        assert shape.cpus == 20

    def test_cpu_only_nodes_do_not_count(self):
        placement = Placement(
            {0: ResourceVector(gpus=4, cpus=8), 1: ResourceVector(cpus=8)}
        )
        shape = ResourceShape.from_placement(placement)
        assert shape.num_nodes == 1
        assert shape.min_gpus_per_node == 4

    def test_empty_placement(self):
        shape = ResourceShape.from_placement(Placement.empty())
        assert shape.gpus == 0
        assert shape.num_nodes == 0
