"""FreePool packing helper used by the baseline schedulers."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, ClusterSpec, NodeSpec, Placement, ResourceVector
from repro.scheduler.baselines import FreePool

SPEC = ClusterSpec(num_nodes=2, node=NodeSpec(num_gpus=4, num_cpus=16))


@pytest.fixture
def pool() -> FreePool:
    return FreePool(Cluster(SPEC), keep_job_ids=set())


class TestAllocatePacked:
    def test_single_node_fit(self, pool):
        placement = pool.allocate_packed(3, cpus_per_gpu=2)
        assert placement is not None
        assert placement.total.gpus == 3
        assert placement.is_single_node
        assert pool.free_gpus == 5

    def test_spans_nodes_when_needed(self, pool):
        placement = pool.allocate_packed(6, cpus_per_gpu=1)
        assert placement is not None
        assert placement.num_nodes == 2

    def test_oversized_request_fails_without_mutation(self, pool):
        assert pool.allocate_packed(9) is None
        assert pool.free_gpus == 8

    def test_zero_request_rejected(self, pool):
        assert pool.allocate_packed(0) is None

    def test_host_memory_constraint(self, pool):
        huge = SPEC.node.host_mem * 2
        placement = pool.allocate_packed(
            2, host_mem_per_node=lambda g: huge
        )
        assert placement is None

    def test_respects_existing_allocations(self):
        cluster = Cluster(SPEC)
        cluster.apply("held", Placement({0: ResourceVector(gpus=4, cpus=8)}))
        pool = FreePool(cluster, keep_job_ids={"held"})
        assert pool.free_gpus == 4
        placement = pool.allocate_packed(5)
        assert placement is None

    def test_released_jobs_free_their_resources(self):
        cluster = Cluster(SPEC)
        cluster.apply("gone", Placement({0: ResourceVector(gpus=4, cpus=8)}))
        pool = FreePool(cluster, keep_job_ids=set())  # "gone" not kept
        assert pool.free_gpus == 8


class TestClaim:
    def test_claim_reserves_exact_placement(self, pool):
        placement = Placement(
            {0: ResourceVector(gpus=2, cpus=4), 1: ResourceVector(gpus=1, cpus=2)}
        )
        assert pool.claim(placement)
        assert pool.free_gpus == 5

    def test_claim_fails_atomically(self, pool):
        pool.allocate_packed(4)  # fills node with most free GPUs
        too_big = Placement(
            {0: ResourceVector(gpus=4, cpus=4), 1: ResourceVector(gpus=4, cpus=4)}
        )
        before = pool.free_gpus
        assert not pool.claim(too_big)
        assert pool.free_gpus == before  # nothing partially reserved


class TestRelease:
    def test_release_returns_resources(self, pool):
        placement = pool.allocate_packed(4, cpus_per_gpu=1)
        pool.release(placement)
        assert pool.free_gpus == 8
