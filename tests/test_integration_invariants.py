"""Cross-module invariants: every policy, every round, conservation holds."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, ClusterSpec, NodeSpec
from repro.oracle import SyntheticTestbed
from repro.perfmodel import ResourceShape
from repro.scheduler import JobPriority, rubick, rubick_e, rubick_n, rubick_r
from repro.scheduler.baselines import AntManPolicy, SiaPolicy, SynergyPolicy
from repro.sim import Simulator, WorkloadConfig, generate_trace

SPEC = ClusterSpec(num_nodes=2, node=NodeSpec(num_gpus=8, num_cpus=96))
SEED = 23
POLICIES = [rubick, rubick_e, rubick_r, rubick_n, SiaPolicy, SynergyPolicy,
             AntManPolicy]


@pytest.fixture(scope="module")
def trace():
    testbed = SyntheticTestbed(SPEC, seed=SEED)
    return generate_trace(
        WorkloadConfig(
            num_jobs=14, seed=SEED, span=2400.0, cluster=SPEC,
            model_weights={"llama-30b": 0.0},
        ),
        testbed,
    )


@pytest.mark.parametrize("make", POLICIES, ids=lambda m: m().name)
def test_policy_end_to_end_invariants(make, trace):
    policy = make()
    sim = Simulator(
        SPEC, policy, testbed=SyntheticTestbed(SPEC, seed=SEED), seed=SEED
    )
    res = sim.run(trace)

    # 1. Conservation of work: every job completes exactly its sample target.
    assert len(res.records) == len(trace)

    # 2. Time accounting: JCT decomposes into queue + run + reconfig slack.
    for r in res.records:
        assert r.jct >= 0
        assert r.queue_seconds + r.run_seconds + r.reconfig_seconds <= (
            r.jct + 1.0
        )

    # 3. No phantom resource usage: GPU-seconds bounded by cluster capacity
    #    over the makespan.
    total_gpu_seconds = sum(r.gpu_seconds for r in res.records)
    assert total_gpu_seconds <= SPEC.total_gpus * (res.makespan + 1.0)

    # 4. Guaranteed jobs recorded an SLA ratio.
    for r in res.records:
        if r.priority == JobPriority.GUARANTEED:
            assert r.sla_ratio > 0


def test_rubick_allocations_respect_node_capacity(trace):
    """Apply every Rubick round's output on a fresh cluster: must never
    overflow (placement feasibility is a hard invariant)."""
    from repro.scheduler import PerfModelStore, SchedulingContext
    from repro.oracle import build_perf_model
    from repro.scheduler.job import Job, JobSpec
    from repro.cluster import ResourceVector

    testbed = SyntheticTestbed(SPEC, seed=SEED)
    store = PerfModelStore()
    models = {tj.model_name: tj.model for tj in trace}
    for model in models.values():
        perf, _ = build_perf_model(testbed, model, model.global_batch_size, seed=SEED)
        store.add(perf)
    ctx = SchedulingContext(cluster_spec=SPEC, perf_store=store)
    policy = rubick()
    cluster = Cluster(SPEC)
    jobs = []
    for tj in list(trace)[:10]:
        spec = JobSpec(
            job_id=tj.job_id, model=tj.model, global_batch=tj.global_batch,
            requested=ResourceVector(tj.requested_gpus, tj.requested_gpus * 4, 0),
            initial_plan=tj.initial_plan, total_samples=1e5,
            submit_time=tj.submit_time,
        )
        jobs.append(Job(spec=spec))
    allocations = policy.schedule(jobs, cluster, ctx)
    fresh = Cluster(SPEC)
    for job_id, alloc in allocations.items():
        fresh.apply(job_id, alloc.placement)  # PlacementError on violation
        # Plans occupy exactly the placement's GPUs.
        assert alloc.plan.num_gpus == alloc.placement.total.gpus
        # Plans fit memory by the shared estimator.
        shape = ResourceShape.from_placement(alloc.placement)
        job = next(j for j in jobs if j.job_id == job_id)
        assert testbed.is_feasible(
            job.model, alloc.plan, shape, job.spec.global_batch
        )
