"""RPL008 fixture: entropy flows into persisted documents.

The positives are *interprocedural by construction*: the entropy source
and the serialization sink live in different functions, so the per-line
RPL001 rule can at best flag the source expression — only the flow
analysis can connect it to the persisted document and anchor the finding
where the value crosses into the sink.
"""

import hashlib
import json
import os
import random
import time


def entropy_amount():
    """Two-hop laundering, hop 1: the entropy is born here."""
    return time.time() * 1.5


def launder(value):
    """Two-hop laundering, hop 2: wrapped in an innocent-looking doc."""
    return {"amount": value}


def persist(doc):
    """A sink behind a parameter: callers decide what gets persisted."""
    return json.dumps(doc, sort_keys=True, allow_nan=False)


def positive_two_hop_laundering():
    amount = entropy_amount()
    doc = launder(amount)
    return json.dumps(doc, sort_keys=True, allow_nan=False)


def positive_cross_function_sink():
    stamp = os.getpid()
    return persist({"stamp": stamp})


def positive_environ_digest():
    host_tag = os.environ["HOST_TAG"]
    return hashlib.sha256(host_tag.encode("utf-8")).hexdigest()


def negative_seeded_rng_flow():
    rng = random.Random(7)
    return json.dumps({"draw": rng.random()}, allow_nan=False)


def negative_sanitized_flow():
    width = len(str(time.time()))
    return json.dumps({"width": width}, allow_nan=False)


def negative_no_sink():
    return {"t": time.time()}


def suppressed_case():
    t = time.time()
    return json.dumps({"t": t}, allow_nan=False)  # repro-lint: disable=RPL008 -- fixture: sanctioned wall-clock observability channel
