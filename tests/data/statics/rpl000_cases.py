"""RPL000 fixture: the suppression contract policing itself."""

import json


def reasonless_suppression(payload: dict) -> str:
    return json.dumps(payload)  # repro-lint: disable=RPL004


def unused_suppression(x: int) -> int:
    return x + 1  # repro-lint: disable=RPL003 -- nothing on this line triggers RPL003


def malformed_directive(x: int) -> int:
    return x + 1  # repro-lint: disable everything please


def directive_in_string() -> str:
    return "# repro-lint: disable=RPL004 -- not a comment, must be ignored"
