"""RPL005 fixture: version-less memos over refittable store state."""

from functools import lru_cache


class PositiveMemo:
    """Reads the perf store, memoizes, never looks at a version."""

    def __init__(self, perf_store):
        self.perf_store = perf_store
        self._best_cache: dict = {}

    def best(self, name: str):
        hit = self._best_cache.get(name)
        if hit is None:
            hit = self.perf_store.model(name)
            self._best_cache[name] = hit
        return hit


class NegativeVersionedMemo:
    """Same shape, but the memo key carries model_version."""

    def __init__(self, perf_store):
        self.perf_store = perf_store
        self._best_cache: dict = {}

    def best(self, name: str):
        key = (name, self.perf_store.model_version(name))
        hit = self._best_cache.get(key)
        if hit is None:
            hit = self.perf_store.model(name)
            self._best_cache[key] = hit
        return hit


class NegativeStoreFreeMemo:
    """A memo with no store in sight: pure-value cache, out of scope."""

    def __init__(self):
        self._area_cache: dict = {}

    def area(self, w: float, h: float) -> float:
        key = (w, h)
        if key not in self._area_cache:
            self._area_cache[key] = w * h
        return self._area_cache[key]


@lru_cache(maxsize=None)
def positive_lru_over_store(perf_store, name: str):
    return perf_store.model(name)


@lru_cache(maxsize=None)
def negative_pure_lru(x: int) -> int:
    return x * x


class SuppressedMemo:
    def __init__(self, perf_store):
        self.perf_store = perf_store
        self._truth_cache: dict = {}  # repro-lint: disable=RPL005 -- fixture: ground-truth store, never refit
