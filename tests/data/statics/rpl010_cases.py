"""RPL010 fixture: armed fault seams escaping entry points.

The seam sits two calls below the entry points; whether each entry is
flagged depends only on how it arms and contains the chain — exactly the
interprocedural judgment RPL007's per-handler check cannot make.
"""

from repro.faults import incident_payload


def make_injector():
    return None


def seam_site(injector):
    if injector is not None:
        injector.check("fixture-seam")
    return 1


def middle(injector):
    return seam_site(injector)


def positive_entry():
    injector = make_injector()
    return middle(injector)


def negative_guarded_entry():
    injector = make_injector()
    try:
        return middle(injector)
    except Exception as exc:
        return incident_payload(exc)


def negative_disarmed_entry():
    return middle(None)


def suppressed_case():
    injector = make_injector()
    return middle(injector)  # repro-lint: disable=RPL010 -- fixture: the escape is the point of this chaos probe
