"""RPL009 fixture: literal service frames vs ``protocol.FRAME_SCHEMAS``.

Positives cover the three violation shapes — a key outside the schema
(the classic typo'd key), a missing required key, and an unknown frame
type.  Negatives pin the deliberate blind spots: ``**splat`` construction
may supply required keys dynamically, and lowercase ``"type"`` values are
not frame tags at all.
"""

from repro.service import protocol


def positive_wrong_key():
    return {"type": protocol.STATUS, "statu": "idle"}


def positive_missing_required():
    return {"type": protocol.SUBMIT}


def positive_unknown_type():
    return {"type": "SUBMITT", "job": {}}


def negative_conformant_reply(now):
    return {"type": protocol.OK, "job_id": "job-1", "now": now}


def negative_splat_supplies_required(extra):
    return {"type": protocol.SUBMIT, **extra}


def negative_not_a_frame():
    return {"type": "gauge", "value": 3}


def suppressed_case():
    return {"type": protocol.DRAIN, "jobs": 3}  # repro-lint: disable=RPL009 -- fixture: deliberately malformed frame for a rejection-path test
