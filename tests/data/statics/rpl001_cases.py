"""RPL001 fixture: ambient entropy — positives, negatives, suppressions.

Not importable application code: this file exists to be parsed by the
linter in tests/test_statics.py.  Line *content* matters (it anchors
baseline identities); keep edits deliberate.
"""

import random
import time as clock
from datetime import datetime

import numpy as np


def positive_wall_clock() -> float:
    return clock.time()


def positive_datetime_now() -> str:
    return datetime.now().isoformat()


def positive_global_random() -> float:
    return random.random()


def positive_global_numpy() -> float:
    return float(np.random.exponential(2.0))


def positive_perf_timer() -> float:
    return clock.perf_counter()


def negative_seeded_stream(seed: int) -> float:
    rng = np.random.default_rng(seed)
    return float(rng.exponential(2.0))


def negative_local_attribute(job) -> float:
    return job.random.draw()


def suppressed_perf_timer() -> float:
    return clock.perf_counter()  # repro-lint: disable=RPL001 -- fixture: timing stays on the perf channel
