"""RPL003 fixture: SoA-lockstep violations — positives, negatives, suppressions."""


def positive_attribute_write(node) -> None:
    node.up = False


def positive_augmented_write(node) -> None:
    node.used_gpus += 4


def positive_subscript_write(node, share) -> None:
    node.allocations["job-1"] = share


def positive_subscript_delete(node) -> None:
    del node.allocations["job-1"]


def positive_dict_mutator(node) -> None:
    node.allocations.pop("job-1", None)


def positive_protocol_call(node) -> None:
    node._notify("job-1", None, None)


def negative_sanctioned_api(cluster, node, placement, share):
    cluster.apply("job-1", placement)
    node.allocate("job-1", share)
    node.release("job-1")
    return node.allocations.get("job-1")


def negative_unrelated_attrs(job) -> None:
    job.status = "running"
    job.progress += 1.0


def suppressed_write(node) -> None:
    node.up = True  # repro-lint: disable=RPL003 -- fixture: test harness resets a detached node
