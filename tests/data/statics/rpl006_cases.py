"""RPL006 fixture: frozen-dataclass mutation outside construction."""

from dataclasses import dataclass


@dataclass(frozen=True)
class Spec:
    value: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", max(self.value, 0))

    def positive_bump(self) -> None:
        object.__setattr__(self, "value", self.value + 1)

    def suppressed_bump(self) -> None:
        object.__setattr__(self, "value", 0)  # repro-lint: disable=RPL006 -- fixture: idempotent cache write


class Holder:
    def __init__(self, value: int) -> None:
        object.__setattr__(self, "value", value)

    def __setstate__(self, state: dict) -> None:
        object.__setattr__(self, "value", state["value"])
