"""RPL004 fixture: serialization-contract drift — positives, negatives, suppressions."""

import json


def widget_to_dict(widget) -> dict:
    return {"name": widget.name}


def gadget_to_dict(gadget) -> dict:
    return {"name": gadget.name}


def gadget_from_dict(data: dict) -> str:
    return data["name"]


def _helper_to_dict(thing) -> dict:
    return {"name": thing.name}


class WriteOnlyDoc:
    def to_dict(self) -> dict:
        return {}


class RoundTripDoc:
    def to_dict(self) -> dict:
        return {}

    @staticmethod
    def from_dict(data: dict) -> "RoundTripDoc":
        return RoundTripDoc()


def positive_dump(payload: dict, fh) -> None:
    json.dump(payload, fh)


def positive_dumps(payload: dict) -> str:
    return json.dumps(payload, indent=1)


def negative_dump(payload: dict, fh) -> None:
    json.dump(payload, fh, allow_nan=False)


def negative_dumps(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, allow_nan=False)


def suppressed_dumps(payload: dict) -> str:
    return json.dumps(payload)  # repro-lint: disable=RPL004 -- fixture: payload is NaN-free by construction
