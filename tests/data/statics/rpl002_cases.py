"""RPL002 fixture: iteration-order hazards — positives, negatives, suppressions."""

import glob
import os


def positive_sum_values(wall_seconds: dict) -> float:
    return sum(wall_seconds.values())


def positive_sum_set(xs: list) -> float:
    return sum({x * 0.5 for x in xs})


def positive_sum_set_call(xs: list) -> float:
    return sum(set(xs))


def positive_listdir(path: str) -> list:
    return [name for name in os.listdir(path)]


def positive_glob(pattern: str) -> list:
    return [p for p in glob.glob(pattern)]


def positive_pathlib_glob(root) -> list:
    return [p.name for p in root.rglob("*.jsonl")]


def negative_sorted_keys(wall_seconds: dict) -> float:
    return sum(wall_seconds[k] for k in sorted(wall_seconds))


def negative_sorted_listing(path: str) -> list:
    return sorted(os.listdir(path))


def negative_order_free_count(path: str) -> int:
    return len(os.listdir(path))


def negative_min_is_commutative(counts: dict) -> int:
    return min(counts.values())


def suppressed_sum_values(counts: dict) -> int:
    return sum(counts.values())  # repro-lint: disable=RPL002 -- fixture: int values, addition is exact
