"""RPL007 fixture: swallowed broad excepts — positives, negatives, suppressions."""


def positive_swallow_exception(risky) -> float:
    try:
        return risky()
    except Exception:
        return 0.0


def positive_bare_except(risky) -> float:
    try:
        return risky()
    except:  # noqa: E722
        return 0.0


def positive_broad_tuple(risky) -> float:
    try:
        return risky()
    except (ValueError, Exception):
        return 0.0


def negative_reraise(risky, log) -> float:
    try:
        return risky()
    except Exception as exc:
        log.warning("risky failed: %s", exc)
        raise


def negative_records_incident_method(risky, result) -> float:
    try:
        return risky()
    except Exception as exc:
        result.record_incident("fixture-error", exc=exc)
        return 0.0


def negative_records_incident_payload(risky, faults, incidents) -> float:
    try:
        return risky()
    except Exception as exc:
        incidents.append(faults.incident_payload(exc))
        return 0.0


def negative_narrow_handler(risky) -> float:
    try:
        return risky()
    except ValueError:
        return 0.0


def suppressed_swallow(risky) -> float:
    try:
        return risky()
    except Exception:  # repro-lint: disable=RPL007 -- fixture: demo surface tolerates best-effort cleanup
        return 0.0
