"""Live scheduling service: framing, step()/run() equivalence, streaming.

Four contracts pinned here:

* **Wire framing** — length-delimited JSON frames round-trip through
  :class:`FrameDecoder` at every possible tear point, and stream damage
  (oversized header, undecodable body, non-object payload) raises
  :class:`ProtocolError` instead of desyncing silently.
* **step() ≡ run()** — driving the engine with incremental ``step()``
  slices (one round at a time, arbitrary ``until`` cuts, or one
  ``step(inf)``) produces result documents byte-identical to ``run()``.
* **Streamed ≡ batch** — pushing the same jobs/events mid-flight through
  ``submit``/``post_cluster_event`` + ``step(until=t)`` (and through real
  sockets via master/client) reproduces the batch run byte for byte in
  virtual-clock mode.
* **API shim** — legacy ``Simulator(..., seed=...)`` keyword construction
  still works behind a one-release ``DeprecationWarning``; unknown
  keywords stay a ``TypeError``.
"""

from __future__ import annotations

import json
import socket
import struct
import threading

import pytest

from repro.cluster import PAPER_CLUSTER
from repro.cluster.dynamics import resolve_dynamics
from repro.cluster.topology import ClusterSpec
from repro.errors import ProtocolError
from repro.oracle import SyntheticTestbed
from repro.scheduler.registry import make_policy
from repro.service import (
    FrameDecoder,
    ServiceClient,
    ServiceMaster,
    VirtualClock,
    encode_frame,
    metrics_payload,
    replay,
)
from repro.service import protocol
from repro.sim import EngineConfig, Simulator, WorkloadConfig, generate_trace
from repro.sim.serialization import result_to_dict

SMALL = ClusterSpec(num_nodes=2, node=PAPER_CLUSTER.node)
SEED = 7


def make_sim(policy: str = "rubick", seed: int = SEED) -> Simulator:
    return Simulator(
        SMALL,
        make_policy(policy),
        config=EngineConfig(seed=seed),
        testbed=SyntheticTestbed(SMALL, seed=seed),
    )


@pytest.fixture(scope="module")
def workload():
    """(trace, cluster events) shared by the equivalence tests."""
    testbed = SyntheticTestbed(SMALL, seed=SEED)
    trace = generate_trace(
        WorkloadConfig(num_jobs=10, seed=SEED, name="svc"), testbed
    )
    events = resolve_dynamics("flaky").events(
        seed=1, span=12 * 3600.0, cluster=SMALL
    )
    return trace, events


def doc_of(result) -> str:
    return json.dumps(result_to_dict(result), sort_keys=True, allow_nan=False)


# ----------------------------------------------------------------------
# Wire framing
# ----------------------------------------------------------------------
class TestFraming:
    def test_round_trip(self):
        payload = {"type": "STATUS", "n": 3, "x": [1.5, None, "é"]}
        frames = FrameDecoder().feed(encode_frame(payload))
        assert frames == [payload]

    def test_multiple_frames_one_feed(self):
        payloads = [{"i": i} for i in range(5)]
        blob = b"".join(encode_frame(p) for p in payloads)
        assert FrameDecoder().feed(blob) == payloads

    def test_torn_frames_every_split_point(self):
        payloads = [{"type": "SUBMIT", "job": {"id": "a" * 40}}, {"k": 2}]
        blob = b"".join(encode_frame(p) for p in payloads)
        for split in range(1, len(blob)):
            decoder = FrameDecoder()
            got = decoder.feed(blob[:split]) + decoder.feed(blob[split:])
            assert got == payloads, f"split at byte {split}"
            assert decoder.pending_bytes == 0

    def test_byte_at_a_time(self):
        payload = {"type": "DRAIN", "trace_name": "t"}
        decoder = FrameDecoder()
        got = []
        for i, byte in enumerate(encode_frame(payload)):
            got += decoder.feed(bytes([byte]))
        assert got == [payload]

    def test_oversized_header_is_stream_damage(self):
        header = struct.pack(">I", protocol.MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="MAX_FRAME_BYTES"):
            FrameDecoder().feed(header)

    def test_undecodable_body(self):
        body = b"{not json"
        blob = struct.pack(">I", len(body)) + body
        with pytest.raises(ProtocolError, match="undecodable"):
            FrameDecoder().feed(blob)

    def test_non_object_payload(self):
        body = b"[1, 2, 3]"
        blob = struct.pack(">I", len(body)) + body
        with pytest.raises(ProtocolError, match="JSON object"):
            FrameDecoder().feed(blob)

    def test_encode_rejects_non_dict(self):
        with pytest.raises(ProtocolError, match="dict"):
            encode_frame([1, 2])

    def test_encode_rejects_nan(self):
        with pytest.raises(ValueError):
            encode_frame({"x": float("nan")})


# ----------------------------------------------------------------------
# step() ≡ run()
# ----------------------------------------------------------------------
class TestStepRunEquivalence:
    @pytest.mark.parametrize("policy", ["rubick", "sia", "synergy"])
    def test_single_round_steps_match_run(self, workload, policy):
        trace, events = workload
        batch = doc_of(
            make_sim(policy).run(trace, cluster_events=events)
        )
        sim = make_sim(policy)
        sim.start(trace, cluster_events=events)
        rounds = 0
        while True:
            report = sim.step()  # until=None: exactly one round
            rounds += report.rounds
            if report.done:
                break
        assert doc_of(sim.result()) == batch
        assert rounds == sim.result().sim_rounds

    def test_arbitrary_until_cuts_match_run(self, workload):
        trace, events = workload
        batch = doc_of(make_sim().run(trace, cluster_events=events))
        sim = make_sim()
        sim.start(trace, cluster_events=events)
        for cut in (1800.0, 7200.0, 7200.0, 30000.0):  # repeat = no-op
            sim.step(until=cut)
        report = sim.step(until=float("inf"))
        assert report.done
        assert doc_of(sim.result()) == batch

    def test_step_after_done_returns_done_noop(self, workload):
        trace, _ = workload
        sim = make_sim()
        sim.run(trace)
        report = sim.step(until=float("inf"))
        assert report.done and report.rounds == 0

    def test_wall_clock_accrues_per_slice_but_never_persists(self, workload):
        trace, _ = workload
        sim = make_sim()
        sim.start(trace)
        report = sim.step(until=float("inf"))
        assert report.wall_seconds > 0
        result = sim.result()
        assert result.sim_wall_seconds > 0
        doc = result_to_dict(result)
        assert "sim_wall_seconds" not in json.dumps(doc)
        assert "policy_wall_seconds" not in json.dumps(doc)
        metrics = metrics_payload(result)
        assert "sim_wall_seconds" not in json.dumps(metrics)
        assert "events_per_second" not in json.dumps(metrics)


# ----------------------------------------------------------------------
# Streamed submissions ≡ batch trace
# ----------------------------------------------------------------------
class TestStreamedDeterminism:
    def test_mid_flight_stream_matches_batch(self, workload):
        trace, events = workload
        batch = doc_of(make_sim().run(trace, cluster_events=events))

        sim = make_sim()
        sim.start(stream=True)
        frames = sorted(
            [(tj.submit_time, 0, tj) for tj in trace]
            + [(ev.time, 1, ev) for ev in events],
            key=lambda f: (f[0], f[1]),
        )
        for t, kind, item in frames:
            if kind == 0:
                sim.submit(item)
            else:
                sim.post_cluster_event(item)
            sim.step(until=t)
        sim.drain(trace_name=trace.name)
        while not sim.step(until=float("inf")).done:
            pass
        assert doc_of(sim.result()) == batch

    def test_duplicate_submit_rejected(self, workload):
        trace, _ = workload
        sim = make_sim()
        sim.start(stream=True)
        sim.submit(trace.jobs[0])
        with pytest.raises(ValueError, match="duplicate"):
            sim.submit(trace.jobs[0])

    def test_submit_behind_clock_needs_clamp(self, workload):
        trace, _ = workload
        jobs = trace.jobs  # already sorted by submit_time
        sim = make_sim()
        sim.start(stream=True)
        sim.submit(jobs[-1])
        sim.step(until=jobs[-1].submit_time + 1.0)
        with pytest.raises(ValueError, match="behind"):
            sim.submit(jobs[0])
        clamped = sim.submit(jobs[0], clamp=True)
        assert clamped.submit_time >= jobs[-1].submit_time


# ----------------------------------------------------------------------
# Master/daemon loopback over real sockets
# ----------------------------------------------------------------------
def start_master(sim, **kwargs):
    master = ServiceMaster(sim, clock=VirtualClock(), **kwargs)
    master.bind()
    thread = threading.Thread(target=master.serve_forever, daemon=True)
    thread.start()
    return master, thread


class TestLoopback:
    def test_replay_matches_batch_and_drains_clean(self, workload):
        trace, events = workload
        batch = doc_of(make_sim().run(trace, cluster_events=events))
        master, thread = start_master(make_sim())
        with ServiceClient(port=master.port) as client:
            status = client.status()
            assert status["state"] == "streaming"
            metrics = client.metrics()
            assert metrics["completed"] == 0
            report = replay(trace, client, events=events)
        thread.join(timeout=60)
        assert not thread.is_alive(), "master did not exit after DRAIN"
        assert report.jobs == len(trace)
        assert json.dumps(report.result, sort_keys=True) == batch

    def test_rejected_frame_keeps_connection_alive(self, workload):
        trace, _ = workload
        master, thread = start_master(make_sim())
        with ServiceClient(port=master.port) as client:
            client.submit_job(trace.jobs[0])
            with pytest.raises(ProtocolError, match="SUBMIT rejected"):
                client.submit_job(trace.jobs[0])  # duplicate job id
            with pytest.raises(ProtocolError, match="unknown frame type"):
                client.request({"type": "BOGUS"})
            # The connection survived both rejections.
            assert client.status()["admitted"] >= 0
            client.drain(trace.name)
        thread.join(timeout=60)
        assert not thread.is_alive()

    def test_daemon_lost_mid_frame_does_not_kill_session(self, workload):
        trace, _ = workload
        master, thread = start_master(make_sim())
        # A daemon dies mid-frame: half a SUBMIT then EOF.
        torn = socket.create_connection(("127.0.0.1", master.port))
        blob = encode_frame({"type": "SUBMIT", "job": {}})
        torn.sendall(blob[: len(blob) // 2])
        torn.close()
        # The session is unharmed; a replacement client streams and drains.
        with ServiceClient(port=master.port) as client:
            report = replay(trace, client)
        thread.join(timeout=60)
        assert not thread.is_alive()
        assert report.result is not None
        assert report.result["summary"]["jobs"] == len(trace)


# ----------------------------------------------------------------------
# Config / deprecation shim
# ----------------------------------------------------------------------
class TestEngineConfigShim:
    def test_legacy_keywords_warn_and_apply(self):
        with pytest.warns(DeprecationWarning, match="EngineConfig"):
            sim = Simulator(
                SMALL,
                make_policy("rubick"),
                testbed=SyntheticTestbed(SMALL, seed=5),
                seed=5,
                fast_path=False,
            )
        assert sim.config.seed == 5
        assert sim.config.fast_path is False

    def test_unknown_keyword_is_type_error(self):
        with pytest.raises(TypeError, match="bogus_knob"):
            Simulator(
                SMALL,
                make_policy("rubick"),
                testbed=SyntheticTestbed(SMALL, seed=0),
                bogus_knob=1,
            )

    def test_config_is_frozen(self):
        config = EngineConfig(seed=9)
        with pytest.raises(AttributeError):
            config.seed = 10
