"""Scheduling policies: Rubick, variants, and baselines on small scenarios."""

from __future__ import annotations

import pytest

from repro.cluster import (
    Cluster,
    ClusterSpec,
    NodeSpec,
    Placement,
    ResourceVector,
)
from repro.models import GPT2, ROBERTA
from repro.oracle import SyntheticTestbed, build_perf_model
from repro.plans import ExecutionPlan, ZeroStage
from repro.scheduler import (
    Job,
    JobPriority,
    JobSpec,
    JobStatus,
    PerfModelStore,
    SchedulingContext,
    Tenant,
    rubick,
    rubick_e,
    rubick_n,
    rubick_r,
)
from repro.scheduler.baselines import AntManPolicy, SiaPolicy, SynergyPolicy

SPEC = ClusterSpec(num_nodes=2, node=NodeSpec(num_gpus=8, num_cpus=96))
SEED = 21


@pytest.fixture(scope="module")
def env():
    testbed = SyntheticTestbed(SPEC, seed=SEED)
    store = PerfModelStore()
    for model in (GPT2, ROBERTA):
        perf, _ = build_perf_model(testbed, model, model.global_batch_size, seed=SEED)
        store.add(perf)
    return testbed, store


def _ctx(store, tenants=None) -> SchedulingContext:
    return SchedulingContext(
        cluster_spec=SPEC, perf_store=store, tenants=tenants or {}
    )


def _queued_job(job_id="j1", model=GPT2, gpus=8, priority=JobPriority.GUARANTEED,
                tenant="default", plan=None, submit=0.0) -> Job:
    plan = plan or ExecutionPlan(dp=gpus, ga_steps=16 // gpus if gpus < 16 else 1)
    spec = JobSpec(
        job_id=job_id, model=model, global_batch=model.global_batch_size,
        requested=ResourceVector(gpus, gpus * 4, 0.0), initial_plan=plan,
        total_samples=1e5, submit_time=submit, priority=priority, tenant=tenant,
    )
    return Job(spec=spec)


ALL_POLICIES = [rubick, rubick_e, rubick_r, rubick_n, SiaPolicy, SynergyPolicy,
                AntManPolicy]


class TestAllPoliciesBasics:
    @pytest.mark.parametrize("make", ALL_POLICIES)
    def test_single_job_gets_scheduled(self, env, make):
        _, store = env
        cluster = Cluster(SPEC)
        job = _queued_job()
        allocations = make().schedule([job], cluster, _ctx(store))
        assert job.job_id in allocations
        alloc = allocations[job.job_id]
        assert alloc.placement.total.gpus >= 1
        assert alloc.plan.num_gpus == alloc.placement.total.gpus

    @pytest.mark.parametrize("make", ALL_POLICIES)
    def test_allocations_fit_cluster(self, env, make):
        _, store = env
        cluster = Cluster(SPEC)
        jobs = [
            _queued_job(f"j{i}", gpus=8, submit=float(i), model=GPT2)
            for i in range(6)
        ]
        allocations = make().schedule(jobs, cluster, _ctx(store))
        total = sum(a.placement.total.gpus for a in allocations.values())
        assert total <= SPEC.total_gpus
        # Per-node feasibility: apply everything on a fresh cluster.
        fresh = Cluster(SPEC)
        for job_id, alloc in allocations.items():
            fresh.apply(job_id, alloc.placement)  # raises on violation


class TestRubickSpecifics:
    def test_fixed_variants_honor_requested_gpus(self, env):
        _, store = env
        for make in (rubick_e, rubick_n):
            cluster = Cluster(SPEC)
            job = _queued_job(gpus=8)
            allocations = make().schedule([job], cluster, _ctx(store))
            assert allocations[job.job_id].placement.total.gpus == 8

    def test_rubick_e_picks_better_plan_than_initial(self, env):
        testbed, store = env
        cluster = Cluster(SPEC)
        bad = ExecutionPlan(dp=8, zero=ZeroStage.OFFLOAD, ga_steps=2)
        job = _queued_job(plan=bad, gpus=8)
        allocations = rubick_e().schedule([job], cluster, _ctx(store))
        chosen = allocations[job.job_id].plan
        shape_gpus = allocations[job.job_id].placement.total.gpus
        assert shape_gpus == 8
        assert chosen != bad  # offload on 8 GPUs is never GPT-2's best

    def test_rubick_n_keeps_initial_plan(self, env):
        _, store = env
        cluster = Cluster(SPEC)
        plan = ExecutionPlan(dp=8, zero=ZeroStage.ZERO_DP, ga_steps=2)
        job = _queued_job(plan=plan)
        allocations = rubick_n().schedule([job], cluster, _ctx(store))
        assert allocations[job.job_id].plan == plan

    def test_quota_blocks_admission(self, env):
        _, store = env
        cluster = Cluster(SPEC)
        tenants = {"team": Tenant(name="team", gpu_quota=0)}
        job = _queued_job(tenant="team")
        allocations = rubick_n().schedule([job], cluster, _ctx(store, tenants))
        assert job.job_id not in allocations

    def test_min_res_cached_on_job(self, env):
        _, store = env
        cluster = Cluster(SPEC)
        job = _queued_job()
        rubick().schedule([job], cluster, _ctx(store))
        assert job.min_res is not None
        assert job.min_res.gpus <= job.spec.requested.gpus


class TestAntManSpecifics:
    def test_best_effort_preempted_for_guaranteed(self, env):
        _, store = env
        cluster = Cluster(SPEC)
        policy = AntManPolicy()
        ctx = _ctx(store, {"a": Tenant(name="a", gpu_quota=16)})
        # Best-effort job occupies the whole cluster first.
        be = _queued_job("be", gpus=16, priority=JobPriority.BEST_EFFORT,
                         plan=ExecutionPlan(dp=16), tenant="b")
        allocations = policy.schedule([be], cluster, ctx)
        cluster.apply("be", allocations["be"].placement)
        be.status = JobStatus.RUNNING
        be.plan = allocations["be"].plan
        be.placement = allocations["be"].placement
        be.start_time = 0.0
        # A guaranteed job arrives needing the full cluster.
        guar = _queued_job("guar", gpus=16, tenant="a",
                           plan=ExecutionPlan(dp=16), submit=10.0)
        allocations = policy.schedule([be, guar], cluster, ctx)
        assert "guar" in allocations
        assert "be" not in allocations  # preempted


class TestSiaSpecifics:
    def test_scales_dp_only(self, env):
        _, store = env
        cluster = Cluster(SPEC)
        job = _queued_job(gpus=4, plan=ExecutionPlan(dp=4, ga_steps=4))
        allocations = SiaPolicy().schedule([job], cluster, _ctx(store))
        plan = allocations[job.job_id].plan
        assert plan.tp == 1 and plan.pp == 1
        assert plan.zero == job.spec.initial_plan.zero


class TestShrinkGpu:
    """Reclaiming a victim's last GPU on a node must not strand its CPUs."""

    def _running_victim(self, cluster, gpus, cpus, job_id="victim"):
        victim = _queued_job(job_id, gpus=gpus)
        victim.status = JobStatus.RUNNING
        victim.start_time = 0.0
        placement = Placement({0: ResourceVector(gpus=gpus, cpus=cpus)})
        cluster.apply(job_id, placement)
        victim.placement = placement
        return victim

    def test_last_gpu_reclaim_releases_whole_share(self):
        from repro.scheduler.rubick import _RoundState

        cluster = Cluster(SPEC)
        victim = self._running_victim(cluster, gpus=1, cpus=4)
        state = _RoundState(cluster, [victim])
        rubick()._shrink_gpu(victim, state.nodes[0], state)
        # The share is gone entirely: no 0-GPU share holding CPUs survives.
        assert victim.job_id not in state.nodes[0].shares
        assert state.totals(victim.job_id).is_zero
        node = state.nodes[0]
        assert node.free.gpus == SPEC.node.num_gpus
        assert node.free.cpus == SPEC.node.num_cpus

    def test_multi_gpu_share_shrinks_by_one(self):
        from repro.scheduler.rubick import _RoundState

        cluster = Cluster(SPEC)
        victim = self._running_victim(cluster, gpus=2, cpus=8)
        state = _RoundState(cluster, [victim])
        rubick()._shrink_gpu(victim, state.nodes[0], state)
        share = state.nodes[0].share_of(victim.job_id)
        assert share.gpus == 1 and share.cpus == 7

    def test_no_stranded_cpu_shares_after_a_contended_round(self, env):
        """End to end: after scheduling under GPU pressure, no committed
        placement contains a 0-GPU share that still holds CPUs."""
        _, store = env
        cluster = Cluster(SPEC)
        policy = rubick()
        ctx = _ctx(store)
        jobs = [
            _queued_job(f"j{i}", gpus=2, model=ROBERTA,
                        plan=ExecutionPlan(dp=2, ga_steps=8), submit=float(i))
            for i in range(10)
        ]
        for round_no in range(3):
            ctx.now = 300.0 * round_no
            allocations = policy.schedule(jobs, cluster, ctx)
            for job_id, alloc in allocations.items():
                for share in alloc.placement.shares.values():
                    assert not (share.gpus == 0 and share.cpus > 0), job_id
                cluster.apply(job_id, alloc.placement)
                job = next(j for j in jobs if j.job_id == job_id)
                job.status = JobStatus.RUNNING
                if job.start_time is None:
                    job.start_time = ctx.now
                job.placement = alloc.placement
                job.plan = alloc.plan
